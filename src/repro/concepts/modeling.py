"""The modeling relation: which types model which concepts.

The paper contrasts *nominal* conformance (Haskell type classes: "Types must
be explicitly declared to be instances of type classes") with *structural*
conformance (ML signatures, C++ duck-typed templates).  This module supports
both:

- **Structural**: :func:`check_concept` examines a candidate binding against
  every requirement — associated types resolvable, valid expressions
  available — with no prior declaration.
- **Nominal**: a :class:`ConceptMap` (named after the C++0x proposal the
  authors co-wrote) explicitly declares a model and may *adapt* the type,
  binding associated types and supplying operation implementations the type
  itself lacks.

A global :class:`OperationRegistry` plays the role of C++ argument-dependent
lookup for free functions such as ``source(e)`` and ``out_edges(v, g)``.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..runtime import metrics as runtime_metrics
from ..runtime.dispatch import SpecificityMatrix
from .concept import Concept
from .errors import (
    CheckReport,
    ConceptCheckError,
    ConceptDefinitionError,
    RequirementFailure,
    SemanticAxiomViolation,
)
from .requirements import (
    AnyType,
    Assoc,
    AssociatedType,
    CheckContextProtocol,
    ConceptRequirement,
    Exact,
    Param,
    SemanticAxiom,
    TypeExpr,
    ValidExpression,
)


class OperationRegistry:
    """Free functions usable in valid expressions, looked up by
    ``(name, owner type)`` walking the owner's MRO — a Python rendition of
    argument-dependent lookup."""

    def __init__(self) -> None:
        self._ops: dict[tuple[str, type], Callable] = {}

    def register(self, name: str, owner: type, impl: Callable) -> Callable:
        self._ops[(name, owner)] = impl
        return impl

    def register_for(self, name: str, owner: type) -> Callable[[Callable], Callable]:
        """Decorator form: ``@ops.register_for('source', MyEdge)``."""

        def deco(impl: Callable) -> Callable:
            self.register(name, owner, impl)
            return impl

        return deco

    def find(self, name: str, owner: Optional[type]) -> Optional[Callable]:
        if owner is None:
            return None
        for base in owner.__mro__:
            impl = self._ops.get((name, base))
            if impl is not None:
                return impl
        return None

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a registered free function, dispatching on the first
        argument whose type has a registration."""
        for a in args:
            impl = self.find(name, type(a))
            if impl is not None:
                return impl(*args)
        raise LookupError(
            f"no operation '{name}' registered for argument types "
            f"({', '.join(type(a).__name__ for a in args)})"
        )


#: Default process-wide operation registry.
operations = OperationRegistry()


@dataclass
class ConceptMap:
    """A nominal declaration that ``types`` model ``concept``.

    ``type_bindings`` binds associated-type names to concrete types;
    ``operation_impls`` supplies (or overrides) valid-expression operations;
    ``sampler`` optionally generates example values per parameter for
    semantic-axiom testing.
    """

    concept: Concept
    types: tuple[type, ...]
    type_bindings: dict[str, type] = field(default_factory=dict)
    operation_impls: dict[str, Callable] = field(default_factory=dict)
    sampler: Optional[Callable[[], Sequence[Sequence[Any]]]] = None

    def __post_init__(self) -> None:
        if len(self.types) != self.concept.arity:
            raise ConceptDefinitionError(
                f"concept map for {self.concept.name} binds {len(self.types)} "
                f"types, expected {self.concept.arity}"
            )


class RegistrySnapshot:
    """An immutable copy of a registry's declarations, produced by
    :meth:`ModelRegistry.snapshot` and consumed by
    :meth:`ModelRegistry.restore` / :meth:`ModelRegistry.scoped`."""

    __slots__ = ("_maps", "generation")

    def __init__(
        self,
        maps: Mapping[tuple[Concept, tuple[type, ...]], ConceptMap],
        generation: int,
    ) -> None:
        self._maps = dict(maps)
        self.generation = generation

    def __len__(self) -> int:
        return len(self._maps)


class ModelRegistry:
    """Stores concept maps and answers (cached) modeling queries.

    Mutation surface: :meth:`register` / :meth:`unregister` /
    :meth:`snapshot` / :meth:`restore` / :meth:`scoped` / :meth:`invalidate`.
    Every mutation bumps a monotonic **generation counter**; memoized
    verdicts are keyed on ``(generation, concept, types)``, so a bump makes
    every previously cached verdict unreachable — downstream caches
    (``@where`` signature caches, :class:`GenericFunction` dispatch tables)
    compare generations and rebuild instead of serving stale results.
    """

    def __init__(
        self,
        ops: Optional[OperationRegistry] = None,
        label: Optional[str] = None,
    ) -> None:
        self.ops = ops if ops is not None else operations
        self.label = label if label is not None else f"registry@{id(self):#x}"
        # Keyed by the Concept object itself (NOT id(concept)): holding a
        # strong reference prevents id-reuse aliasing after a concept from
        # another scope is garbage collected.
        self._maps: dict[tuple[Concept, tuple[type, ...]], ConceptMap] = {}
        # (generation, concept, types) -> report.  Mutations bump
        # _generation and clear the dict; the generation in the key means a
        # check that was in flight during a mutation can only deposit its
        # (possibly stale) verdict under the OLD generation, where no
        # post-mutation reader will ever look.
        self._cache: dict[
            tuple[int, Concept, tuple[type, ...]], CheckReport
        ] = {}
        self._generation = 0
        self._mutex = threading.Lock()
        # Weakly-held objects whose .invalidate() must run on every bump —
        # the call-site specializations of repro.runtime.specialize.  Weak
        # refs: a dropped trampoline must not be kept alive (or called)
        # by the registry.
        self._invalidation_hooks: list["weakref.ref[Any]"] = []
        # Shared concept-refinement verdicts for the current generation;
        # rebuilt lazily on first use after a bump (see
        # specificity_matrix()).
        self._specificity: Optional[SpecificityMatrix] = None
        self.stats = runtime_metrics.RegistryStats()
        runtime_metrics.track_registry(self)

    # -- generations ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter, bumped by every mutation.  Caches keyed on a
        generation are implicitly invalidated by a bump."""
        return self._generation

    def _bump(self) -> None:
        """Invalidate all memoized verdicts (callers hold no locks)."""
        with self._mutex:
            self._generation += 1
            self._specificity = None
        self._cache.clear()
        self.stats.invalidations += 1
        # Fire AFTER the generation moved: a hook that re-resolves sees the
        # post-mutation world, so no trampoline can re-install a binding
        # from before this mutation.  Dead weakrefs are pruned in passing.
        hooks = self._invalidation_hooks
        if hooks:
            dead = False
            for ref in tuple(hooks):
                target = ref()
                if target is None:
                    dead = True
                else:
                    target.invalidate()
            if dead:
                with self._mutex:
                    self._invalidation_hooks = [
                        r for r in self._invalidation_hooks
                        if r() is not None
                    ]

    def add_invalidation_hook(self, obj: Any) -> None:
        """Register ``obj`` (weakly) to have ``obj.invalidate()`` called on
        every mutation of this registry — the seam the specialization tier
        uses to flip live trampolines back to the dispatching path."""
        with self._mutex:
            self._invalidation_hooks.append(weakref.ref(obj))

    def specificity_matrix(self) -> SpecificityMatrix:
        """The shared per-generation concept-refinement matrix.  All
        dispatch tables compiled against the current generation memoize
        their pairwise specificity walks here instead of re-walking the
        refinement lattice per table."""
        with self._mutex:
            matrix = self._specificity
            if matrix is None or matrix.generation != self._generation:
                matrix = SpecificityMatrix(self._generation)
                self._specificity = matrix
            return matrix

    def invalidate(self) -> None:
        """Publicly drop every memoized verdict — the supported replacement
        for reaching into ``_cache`` (used by benchmarks to measure the
        uncached path)."""
        self._bump()

    # -- declarations --------------------------------------------------------

    def declare(
        self,
        concept: Concept,
        types: Sequence[type] | type,
        type_bindings: Optional[Mapping[str, type]] = None,
        operation_impls: Optional[Mapping[str, Callable]] = None,
        sampler: Optional[Callable[[], Sequence[Sequence[Any]]]] = None,
        check: bool = True,
    ) -> ConceptMap:
        """Declare (and by default verify) that ``types`` model ``concept``.

        Returns the concept map.  With ``check=True`` a failing structural
        check raises immediately — the paper's point that errors should
        surface "at the actual point of error" rather than deep inside a
        generic function.
        """
        tys = (types,) if isinstance(types, type) else tuple(types)
        cmap = ConceptMap(
            concept,
            tys,
            dict(type_bindings or {}),
            dict(operation_impls or {}),
            sampler,
        )
        self._maps[(concept, tys)] = cmap
        self._bump()
        if check:
            report = self.check(concept, tys)
            if not report.ok:
                del self._maps[(concept, tys)]
                self._bump()
                report.raise_if_failed(context=f"concept_map declaration")
        return cmap

    def register(
        self,
        concept: Concept,
        types: Sequence[type] | type,
        **kwargs: Any,
    ) -> ConceptMap:
        """Declare that ``types`` model ``concept`` (the coherent mutation
        surface; alias of :meth:`declare`)."""
        return self.declare(concept, types, **kwargs)

    def unregister(
        self, concept: Concept, types: Sequence[type] | type
    ) -> bool:
        """Remove a previously declared concept map.  Returns True if a map
        was removed.  Bumps the generation, so every memoized verdict (and
        every downstream dispatch table) is invalidated."""
        tys = (types,) if isinstance(types, type) else tuple(types)
        removed = self._maps.pop((concept, tys), None)
        if removed is None:
            return False
        self._bump()
        return True

    def snapshot(self) -> RegistrySnapshot:
        """An immutable copy of the current declarations."""
        return RegistrySnapshot(self._maps, self._generation)

    def restore(self, snapshot: RegistrySnapshot) -> None:
        """Reset the declarations to ``snapshot`` (generation still moves
        *forward*: restoring is a mutation, not time travel — any verdict
        cached since the snapshot must die)."""
        self._maps = dict(snapshot._maps)
        self._bump()

    @contextmanager
    def scoped(self) -> Iterator["ModelRegistry"]:
        """Context manager for temporary models::

            with models.scoped():
                models.register(Monoid, SaturatingInt, ...)
                ...   # dispatch sees the model
            # on exit the declaration (and every cached verdict) is gone

        Replaces the ad-hoc save/clobber/restore of ``_maps`` found in older
        tests and benchmarks.
        """
        snap = self.snapshot()
        try:
            yield self
        finally:
            self.restore(snap)

    def concept_map_for(
        self, concept: Concept, types: tuple[type, ...]
    ) -> Optional[ConceptMap]:
        exact = self._maps.get((concept, types))
        if exact is not None:
            return exact
        # Walk MROs so a map declared for a base class covers subclasses.
        for combo in itertools.product(*(t.__mro__ for t in types)):
            found = self._maps.get((concept, tuple(combo)))
            if found is not None:
                return found
        # A map for a *refinement* of the requested concept also serves: a
        # Field map for float supplies the operations when the nested Ring /
        # Group / Monoid refinement checks run (the C++0x "concept maps are
        # inherited through refinement" rule).
        for (_c, tys), m in self._maps.items():
            if (
                m.concept is not concept
                and len(tys) == len(types)
                and m.concept.refines_concept(concept)
                and all(issubclass(t, mt) for t, mt in zip(types, tys))
            ):
                return m
        return None

    def declared_models(self, concept: Concept) -> list[ConceptMap]:
        return [m for (c, _), m in self._maps.items() if c is concept]

    # -- queries ---------------------------------------------------------------

    def check(
        self, concept: Concept, types: Sequence[type] | type
    ) -> CheckReport:
        """Structural + nominal conformance check; memoized per generation
        (the steady-state cost is one dict lookup)."""
        tys = (types,) if isinstance(types, type) else tuple(types)
        key = (self._generation, concept, tys)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        t0 = perf_counter()
        try:
            return self._check_uncached(key, concept, tys)
        finally:
            self.stats.check_time_s += perf_counter() - t0

    def _check_uncached(
        self,
        key: tuple[int, Concept, tuple[type, ...]],
        concept: Concept,
        tys: tuple[type, ...],
    ) -> CheckReport:
        if len(tys) != concept.arity:
            report = CheckReport(concept.name, tys)
            report.failures.append(
                RequirementFailure(
                    f"{concept.arity} type argument(s)",
                    f"got {len(tys)}",
                    concept.name,
                )
            )
            self._cache[key] = report
            return report
        # Pre-seed the cache with an optimistic entry to cut recursion on
        # cyclic requirement graphs (iterator's value_type's iterator...).
        optimistic = CheckReport(concept.name, tys)
        self._cache[key] = optimistic
        ctx = CheckContext(self, concept, tys)
        report = CheckReport(concept.name, tys)
        if concept.nominal and self.concept_map_for(concept, tys) is None:
            report.failures.append(
                RequirementFailure(
                    "an explicit concept_map declaration",
                    f"{concept.name} is a nominal (semantic-state) concept; "
                    f"structural conformance cannot establish it",
                    concept.name,
                )
            )
            self._cache[key] = report
            return report
        # Refinements are checked *nested* (each parent against its own
        # concept map), not flattened into this concept's context: a
        # multi-type concept like Vector Space refines Field on S and
        # Additive Abelian Group on V, whose operation names ('op',
        # 'identity') would collide if merged into one lookup scope.
        for req in concept.refinement_requirements() + concept.own_requirements():
            failures = req.check(ctx)
            if failures:
                report.failures.extend(failures)
            else:
                report.checked.append(req.describe())
        self._cache[key] = report
        return report

    def models(self, concept: Concept, types: Sequence[type] | type) -> bool:
        return self.check(concept, types).ok

    def require(
        self,
        concept: Concept,
        types: Sequence[type] | type,
        context: Optional[str] = None,
    ) -> None:
        """Raise a :class:`ConceptCheckError` unless ``types`` model
        ``concept`` — the checkable `where` clause of Section 2.1."""
        self.check(concept, types).raise_if_failed(context)

    # -- associated types -----------------------------------------------------

    def resolve_assoc(
        self, concept: Concept, types: tuple[type, ...], owner: type, name: str
    ) -> Optional[type]:
        """Resolve associated type ``name`` on ``owner``: concept-map
        bindings first, then a class attribute that names a type."""
        cmap = self.concept_map_for(concept, types)
        if (
            cmap is not None
            and name in cmap.type_bindings
            and any(owner is t or issubclass(owner, t) for t in cmap.types)
        ):
            return cmap.type_bindings[name]
        # Any concept map mentioning this owner type may bind the name.
        for (_c, tys), m in self._maps.items():
            if owner in tys and name in m.type_bindings:
                return m.type_bindings[name]
        attr = getattr(owner, name, None)
        if isinstance(attr, type):
            return attr
        return None

    # -- semantics --------------------------------------------------------------

    def check_semantics(
        self,
        concept: Concept,
        types: Sequence[type] | type,
        samples: Optional[Sequence[Sequence[Any]]] = None,
        raise_on_failure: bool = True,
    ) -> list[SemanticAxiomViolation]:
        """Test the concept's semantic axioms on concrete sample values.

        ``samples`` is a sequence of value tuples, one value per axiom
        variable; if omitted, the concept map's sampler is used.  This is the
        runtime analogue of the paper's observation that axioms appear in
        documentation but nothing checks them — here, something does.

        Only the concept's *own* axioms are tested: inherited axioms use the
        refined concept's operation vocabulary (and, for multi-type
        refinement, different parameter types), so they are tested against
        the refined concepts' own models.
        """
        tys = (types,) if isinstance(types, type) else tuple(types)
        axioms = concept.own_axioms()
        if not axioms:
            return []
        if samples is None:
            cmap = self.concept_map_for(concept, tys)
            if cmap is None or cmap.sampler is None:
                raise ConceptDefinitionError(
                    f"no samples available to test axioms of {concept.name} "
                    f"for {', '.join(t.__name__ for t in tys)}"
                )
            samples = cmap.sampler()
        ops_ns = OpsNamespace(self, concept, tys)
        violations: list[SemanticAxiomViolation] = []
        for axiom in axioms:
            for values in samples:
                if len(values) < len(axiom.variables):
                    continue
                args = tuple(values[: len(axiom.variables)])
                try:
                    ok = axiom.predicate(ops_ns, *args)
                except Exception as exc:  # noqa: BLE001 - report as violation
                    ok = False
                    args = args + (f"raised {exc!r}",)
                if not ok:
                    violation = SemanticAxiomViolation(concept.name, axiom.name, args)
                    if raise_on_failure:
                        raise violation
                    violations.append(violation)
                    break
        return violations


class OpsNamespace:
    """Resolves the concept's operations for a specific binding so axiom
    predicates can invoke them uniformly: ``ops.plus(a, b)``,
    ``ops['<'](a, b)``."""

    def __init__(
        self, registry: ModelRegistry, concept: Concept, types: tuple[type, ...]
    ) -> None:
        self._registry = registry
        self._concept = concept
        self._types = types

    def __getitem__(self, op: str) -> Callable:
        cmap = self._registry.concept_map_for(self._concept, self._types)
        if cmap is not None and op in cmap.operation_impls:
            return cmap.operation_impls[op]
        dunder = ValidExpression.OPERATOR_DUNDER.get(op)

        def call(*args: Any) -> Any:
            if dunder is not None and args and hasattr(type(args[0]), dunder):
                return getattr(args[0], dunder)(*args[1:])
            if args and hasattr(type(args[0]), op):
                return getattr(args[0], op)(*args[1:])
            return self._registry.ops.call(op, *args)

        return call

    def __getattr__(self, op: str) -> Callable:
        if op.startswith("_"):
            raise AttributeError(op)
        return self[op]


class CheckContext(CheckContextProtocol):
    """Implements requirement-side queries for one conformance check."""

    def __init__(
        self, registry: ModelRegistry, concept: Concept, types: tuple[type, ...]
    ) -> None:
        self.registry = registry
        self.concept = concept
        self.types = types
        self.concept_name = concept.name
        self._bindings = {
            p.name: t for p, t in zip(concept.params, types)
        }

    def resolve(self, expr: TypeExpr) -> Optional[type]:
        if isinstance(expr, Param):
            return self._bindings.get(expr.name)
        if isinstance(expr, Exact):
            return expr.pytype
        if isinstance(expr, AnyType):
            return object
        if isinstance(expr, Assoc):
            base = self.resolve(expr.base)
            if base is None:
                return None
            return self.registry.resolve_assoc(
                self.concept, self.types, base, expr.name
            )
        return None

    #: object's non-functional default dunders (they only return
    #: NotImplemented); finding one of these inherited straight from object
    #: does NOT satisfy an operator requirement.  __eq__/__ne__/__hash__ and
    #: __init__ stay: object's identity equality and default construction
    #: are genuine, usable semantics.
    _OBJECT_STUB_DUNDERS = frozenset({
        "__lt__", "__le__", "__gt__", "__ge__",
    })

    def find_operation(
        self, name: str, owner: Optional[type], via: str
    ) -> Optional[Callable]:
        cmap = self.registry.concept_map_for(self.concept, self.types)
        if cmap is not None:
            impl = cmap.operation_impls.get(name)
            if impl is not None:
                return impl
        if owner is not None and hasattr(owner, name):
            found = getattr(owner, name)
            if not (
                name in self._OBJECT_STUB_DUNDERS
                and found is getattr(object, name, None)
            ):
                return found
        if via in ("function", "method"):
            return self.registry.ops.find(name, owner)
        return None

    def subcheck(
        self, concept: Concept, args: Sequence[Optional[type]]
    ) -> list[RequirementFailure]:
        types = tuple(a if a is not None else object for a in args)
        report = self.registry.check(concept, types)
        return list(report.failures)


#: Default process-wide model registry.
models = ModelRegistry(label="default")


def declare_model(
    concept: Concept,
    types: Sequence[type] | type,
    **kwargs: Any,
) -> ConceptMap:
    """Declare a model in the default registry (module-level convenience)."""
    return models.declare(concept, types, **kwargs)


def check_concept(concept: Concept, types: Sequence[type] | type) -> CheckReport:
    """Structurally check ``types`` against ``concept`` in the default
    registry."""
    return models.check(concept, types)


def require(concept: Concept, types: Sequence[type] | type, context: str = "") -> None:
    """Assert conformance, raising a high-level diagnostic otherwise."""
    models.require(concept, types, context or None)


def ops_for(
    concept: Concept,
    types: Sequence[type] | type,
    registry: Optional[ModelRegistry] = None,
) -> OpsNamespace:
    """The operations of ``concept`` as resolved for a model — concept-map
    adaptations included.  Generic algorithms that must work with *adapted*
    models (ones whose operations live in a concept map rather than on the
    type) invoke through this namespace::

        ops = ops_for(Drawable, type(x))
        ops.draw(x)
    """
    tys = (types,) if isinstance(types, type) else tuple(types)
    reg = registry if registry is not None else models
    return OpsNamespace(reg, concept, tys)
