"""Diagnostic machinery for the concept system.

The paper (Section 2.1) motivates first-class concepts largely through
diagnostics: without concept checking, "passing a non-conforming data type
usually results in lengthy error messages referring to the implementation of
the generic function instead of the actual point of error at the function
call".  Every failure in this package is therefore reported as a structured
:class:`ConceptError` carrying the concept, the offending binding, and the
precise unsatisfied requirement — the "meaningful, high-level error message"
the paper asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence


class ConceptError(Exception):
    """Base class for all errors raised by the concept system."""


@dataclass
class RequirementFailure:
    """A single unsatisfied requirement discovered during a conformance check.

    Attributes:
        requirement: Human-readable rendering of the requirement (e.g.
            ``"source(e) -> Edge::vertex_type"``).
        reason: Why the requirement does not hold for the candidate binding.
        concept_name: The concept the requirement belongs to (which may be a
            refined ancestor of the concept actually being checked).
    """

    requirement: str
    reason: str
    concept_name: str

    def render(self) -> str:
        return f"[{self.concept_name}] requires {self.requirement}: {self.reason}"


class ConceptCheckError(ConceptError):
    """A type (or type tuple) failed a concept conformance check.

    The message points at the *call site abstraction* — the concept and the
    candidate types — never at the internals of a generic algorithm.
    """

    def __init__(
        self,
        concept_name: str,
        bindings: Sequence[Any],
        failures: Sequence[RequirementFailure],
        context: Optional[str] = None,
    ) -> None:
        self.concept_name = concept_name
        self.bindings = tuple(bindings)
        self.failures = tuple(failures)
        self.context = context
        names = ", ".join(_type_name(b) for b in self.bindings)
        lines = [f"{names} does not model concept {concept_name}"]
        if context:
            lines[0] += f" (required by {context})"
        for f in self.failures:
            lines.append("  - " + f.render())
        super().__init__("\n".join(lines))


class ConceptDefinitionError(ConceptError):
    """A concept was defined inconsistently (bad parameter references,
    circular refinement, duplicate associated-type names, ...)."""


class AmbiguousOverloadError(ConceptError):
    """Concept-based overload resolution found two or more best candidates
    that are unordered by refinement (Section 2.1, concept-based
    overloading)."""

    def __init__(self, function_name: str, candidates: Sequence[str]) -> None:
        self.function_name = function_name
        self.candidates = tuple(candidates)
        super().__init__(
            f"ambiguous call to concept-overloaded function '{function_name}': "
            f"candidates {', '.join(candidates)} are unordered by refinement"
        )


class NoMatchingOverloadError(ConceptError):
    """No registered implementation's concept requirements are satisfied.

    The per-overload explanation (one "tried: ..." line per overload, each
    requiring fresh conformance checks to render) is built **lazily**, at
    ``__str__`` time: a caller that catches the error only to fall back to
    another dispatch path never pays for diagnostics nobody reads.  Pass
    either ``attempts`` (pre-rendered strings) or ``attempts_factory`` (a
    zero-argument callable producing them on demand).
    """

    def __init__(
        self,
        function_name: str,
        arg_types: Sequence[type],
        attempts: Optional[Sequence[str]] = None,
        attempts_factory: Optional[Callable[[], Sequence[str]]] = None,
    ) -> None:
        self.function_name = function_name
        self.arg_types = tuple(arg_types)
        self._attempts = None if attempts is None else tuple(attempts)
        self._attempts_factory = attempts_factory
        names = ", ".join(t.__name__ for t in self.arg_types)
        super().__init__(
            f"no implementation of '{function_name}' accepts argument "
            f"types ({names})"
        )

    @property
    def attempts(self) -> tuple[str, ...]:
        if self._attempts is None:
            factory = self._attempts_factory
            self._attempts = (
                tuple(factory()) if factory is not None else ()
            )
        return self._attempts

    def __str__(self) -> str:
        names = ", ".join(t.__name__ for t in self.arg_types)
        lines = [
            f"no implementation of '{self.function_name}' accepts "
            f"argument types ({names})"
        ]
        lines.extend("  tried: " + a for a in self.attempts)
        return "\n".join(lines)


class ArchetypeViolation(ConceptError):
    """A generic algorithm used an operation not granted by its declared
    concept requirements (detected by running it on an archetype; Section
    2.1/3.1)."""

    def __init__(self, operation: str, concept_name: str, detail: str = "") -> None:
        self.operation = operation
        self.concept_name = concept_name
        msg = (
            f"operation '{operation}' is not part of concept {concept_name}; "
            f"a generic algorithm constrained only by {concept_name} may not use it"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class SemanticAxiomViolation(ConceptError):
    """A declared model violates one of the concept's semantic axioms, as
    witnessed by a concrete counterexample."""

    def __init__(self, concept_name: str, axiom_name: str, witness: Any) -> None:
        self.concept_name = concept_name
        self.axiom_name = axiom_name
        self.witness = witness
        super().__init__(
            f"model of {concept_name} violates axiom '{axiom_name}'; "
            f"counterexample: {witness!r}"
        )


def _type_name(obj: Any) -> str:
    if isinstance(obj, type):
        return obj.__name__
    return repr(obj)


@dataclass
class CheckReport:
    """Full result of a (non-throwing) conformance check.

    ``ok`` is True iff ``failures`` is empty.  ``checked`` records every
    requirement examined, so callers can display what a conforming model
    actually provides (used by the Fig. 1/Fig. 2 table benches).
    """

    concept_name: str
    bindings: tuple
    failures: list[RequirementFailure] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self, context: Optional[str] = None) -> None:
        if self.failures:
            raise ConceptCheckError(
                self.concept_name, self.bindings, self.failures, context
            )

    def render(self) -> str:
        status = "models" if self.ok else "does NOT model"
        names = ", ".join(_type_name(b) for b in self.bindings)
        lines = [f"{names} {status} {self.concept_name}"]
        for item in self.checked:
            lines.append(f"  ok: {item}")
        for f in self.failures:
            lines.append(f"  FAIL: {f.render()}")
        return "\n".join(lines)
