"""Constraint propagation (Section 2.3).

"Mainstream object-oriented languages do not support constraint propagation;
the constraints on the type parameters to generic types do not automatically
propagate to uses of those types."  The paper's ``first_neighbor`` example
needs three constraints without propagation and one with it.

This module computes the *propagation closure* of a constraint set: starting
from the concepts an algorithm declares, derive every constraint a compiler
could "safely assume" — constraints on associated types, same-type equations,
and nested modeling requirements — following Cecil's approach of "copying the
type parameter constraints from each interface to each of the uses of the
interface".

The closure powers two things: (1) algorithm declarations stay terse (write
one ``IncidenceGraph`` constraint, get ``GraphEdge``/iterator constraints for
free), and (2) the verbosity benchmarks that quantify the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .concept import Concept, substitute, substitute_requirement
from .requirements import (
    Assoc,
    AssociatedType,
    ConceptRequirement,
    Param,
    Requirement,
    SameType,
    TypeExpr,
    ValidExpression,
)


@dataclass(frozen=True)
class Constraint:
    """A single where-clause entry: ``exprs model concept``."""

    concept: Concept
    args: tuple[TypeExpr, ...]

    def render(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{rendered} : {self.concept.name}"


def _assoc_constraints_of(
    concept: Concept, args: tuple[TypeExpr, ...]
) -> tuple[list[Constraint], list[SameType]]:
    """Constraints the concept imposes on the associated types of ``args``
    (nested ConceptRequirements and SameType equations), with the concept's
    parameters substituted by the caller's expressions."""
    mapping = {p.name: a for p, a in zip(concept.params, args)}
    nested: list[Constraint] = []
    equations: list[SameType] = []
    for req in concept.all_requirements():
        sub = substitute_requirement(req, mapping)
        if isinstance(sub, ConceptRequirement):
            nested.append(Constraint(sub.concept, sub.args))
        elif isinstance(sub, SameType):
            equations.append(sub)
    return nested, equations


@dataclass
class PropagatedConstraints:
    """Result of closing a constraint set.

    ``declared`` is what the programmer wrote; ``derived`` is what
    propagation adds; ``equations`` are derived same-type facts.  The
    verbosity metrics of Section 2.2-2.4 are ratios over these lists.
    """

    declared: list[Constraint]
    derived: list[Constraint] = field(default_factory=list)
    equations: list[SameType] = field(default_factory=list)

    def all_constraints(self) -> list[Constraint]:
        return self.declared + self.derived

    def written_count(self) -> int:
        """Constraints the programmer must write *with* propagation."""
        return len(self.declared)

    def total_count(self) -> int:
        """Constraints the programmer must write *without* propagation (the
        full closure, which is what the compiler needs either way)."""
        return len(self.declared) + len(self.derived)

    def render(self) -> list[str]:
        lines = [f"where {c.render()}" for c in self.declared]
        lines += [f"where {c.render()}   (derived)" for c in self.derived]
        lines += [f"where {e.a} == {e.b}   (derived)" for e in self.equations]
        return lines


def propagate(constraints: Sequence[Constraint | tuple[Concept, Sequence[TypeExpr]]],
              max_depth: int = 8) -> PropagatedConstraints:
    """Compute the propagation closure of a declared constraint set.

    ``max_depth`` bounds chains through associated types; concept graphs are
    typically cyclic (a container's iterator's value type may itself be a
    container), so the closure is depth-limited and deduplicated.
    """
    declared: list[Constraint] = []
    declared_seen: set[str] = set()
    for c in constraints:
        if not isinstance(c, Constraint):
            concept, args = c
            c = Constraint(concept, tuple(args))
        if c.render() not in declared_seen:
            declared_seen.add(c.render())
            declared.append(c)

    seen: set[str] = set(declared_seen)
    derived: list[Constraint] = []
    equations: list[SameType] = []
    eq_seen: set[str] = set()

    frontier = list(declared)
    depth = 0
    while frontier and depth < max_depth:
        next_frontier: list[Constraint] = []
        for constraint in frontier:
            nested, eqs = _assoc_constraints_of(constraint.concept, constraint.args)
            for n in nested:
                key = n.render()
                if key not in seen:
                    seen.add(key)
                    derived.append(n)
                    next_frontier.append(n)
            for e in eqs:
                key = f"{e.a}=={e.b}"
                if key not in eq_seen:
                    eq_seen.add(key)
                    equations.append(e)
        frontier = next_frontier
        depth += 1
    return PropagatedConstraints(declared, derived, equations)


@dataclass
class AlgorithmSignature:
    """A generic algorithm declaration, used to quantify the paper's
    verbosity claims and by the archetype/overload machinery.

    ``type_params`` are the algorithm's explicit type parameters;
    ``where`` the declared constraints.  Propagation yields everything else.
    """

    name: str
    type_params: tuple[str, ...]
    where: tuple[Constraint, ...]
    doc: str = ""

    def closure(self) -> PropagatedConstraints:
        return propagate(self.where)

    def declaration(self, with_propagation: bool = True) -> str:
        """Render the declaration as the paper's Section 2.3 examples do —
        terse with propagation, exhaustive without."""
        closure = self.closure()
        clauses = (
            [c.render() for c in closure.declared]
            if with_propagation
            else [c.render() for c in closure.all_constraints()]
        )
        params = ", ".join(self.type_params)
        where = ("\n  where " + ",\n        ".join(clauses)) if clauses else ""
        return f"{self.name}<{params}>{where}"

    def constraint_counts(self) -> tuple[int, int]:
        """(written with propagation, written without propagation)."""
        closure = self.closure()
        return closure.written_count(), closure.total_count()


def implied_by(
    declared: Sequence[Constraint], query: Constraint, max_depth: int = 8
) -> bool:
    """Does the closure of ``declared`` contain ``query``?  (A constraint is
    also implied when a closed constraint's concept refines the query's on
    the same arguments.)"""
    closure = propagate(declared, max_depth)
    for c in closure.all_constraints():
        if c.args == query.args and c.concept.refines_concept(query.concept):
            return True
    return False
