"""A small big-O algebra for complexity guarantees.

Section 1: "useful performance constraints to place on the algorithms were
already fairly well-understood at the level of asymptotic bounds, but making
distinctions between some of the algorithms in these domains requires more
precision".  We model bounds as sums of monomials ``n^a * log(n)^b * p^c``
over named size variables, giving a *partial order* (``O(n) ≤ O(n log n)``,
but ``O(n^2)`` and ``O(m)`` are incomparable) — exactly what a taxonomy needs
to distinguish, say, Chang–Roberts (O(n^2) messages) from
Hirschberg–Sinclair (O(n log n) messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Union

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class Monomial:
    """A product of powers: ``{('n', 'poly'): 2, ('n', 'log'): 1}`` is
    ``n^2 log(n)``.  Keys pair a variable with either its polynomial or its
    logarithmic power so ``n`` and ``log n`` grow independently."""

    powers: tuple[tuple[tuple[str, str], Fraction], ...]

    @staticmethod
    def make(powers: Mapping[tuple[str, str], Number]) -> "Monomial":
        cleaned = {k: Fraction(v) for k, v in powers.items() if Fraction(v) != 0}
        return Monomial(tuple(sorted(cleaned.items())))

    def as_dict(self) -> dict[tuple[str, str], Fraction]:
        return dict(self.powers)

    def __mul__(self, other: "Monomial") -> "Monomial":
        merged = self.as_dict()
        for key, power in other.powers:
            merged[key] = merged.get(key, Fraction(0)) + power
        return Monomial.make(merged)

    def dominates(self, other: "Monomial") -> bool:
        """True iff this monomial grows at least as fast as ``other`` in
        every variable.  (``log`` powers compare below any positive ``poly``
        power of the same variable.)"""
        mine = self.as_dict()
        theirs = other.as_dict()
        variables = {v for (v, _k) in mine} | {v for (v, _k) in theirs}
        for var in variables:
            p_mine = mine.get((var, "poly"), Fraction(0))
            p_theirs = theirs.get((var, "poly"), Fraction(0))
            l_mine = mine.get((var, "log"), Fraction(0))
            l_theirs = theirs.get((var, "log"), Fraction(0))
            if p_mine < p_theirs:
                return False
            if p_mine == p_theirs and l_mine < l_theirs:
                return False
        return True

    def __str__(self) -> str:
        if not self.powers:
            return "1"
        parts = []
        ordered = sorted(self.powers, key=lambda kv: (kv[0][0], kv[0][1] != "poly"))
        for (var, kind), power in ordered:
            base = var if kind == "poly" else f"log {var}"
            if power == 1:
                parts.append(base)
            else:
                rendered = (
                    str(power) if power.denominator == 1 else f"{power}"
                )
                parts.append(f"{base}^{rendered}" if kind == "poly" else f"(log {var})^{rendered}")
        return " ".join(parts)


@dataclass(frozen=True)
class BigO:
    """A big-O bound: the maximum of a set of monomials.

    Supports ``*`` (product of bounds), ``+`` (max, i.e. sequential
    composition), ``dominates``/``<=`` comparison, and pretty printing.
    """

    monomials: tuple[Monomial, ...]

    @staticmethod
    def of(*monomials: Monomial) -> "BigO":
        # Drop monomials dominated by another in the same set.
        keep: list[Monomial] = []
        for m in monomials:
            if any(o is not m and o.dominates(m) and not m.dominates(o) for o in monomials):
                continue
            if m not in keep:
                keep.append(m)
        return BigO(tuple(sorted(keep, key=str)))

    def __mul__(self, other: "BigO") -> "BigO":
        return BigO.of(*(a * b for a in self.monomials for b in other.monomials))

    def __add__(self, other: "BigO") -> "BigO":
        return BigO.of(*self.monomials, *other.monomials)

    def dominates(self, other: "BigO") -> bool:
        """``self.dominates(other)`` iff every monomial of ``other`` is
        dominated by some monomial of ``self`` — i.e. O(other) ⊆ O(self)."""
        return all(
            any(mine.dominates(theirs) for mine in self.monomials)
            for theirs in other.monomials
        )

    def __le__(self, other: "BigO") -> bool:
        """``a <= b``: a is asymptotically no worse than b."""
        return other.dominates(self)

    def __lt__(self, other: "BigO") -> bool:
        return other.dominates(self) and not self.dominates(other)

    def comparable(self, other: "BigO") -> bool:
        return self.dominates(other) or other.dominates(self)

    def at(self, **sizes: float) -> float:
        """Evaluate the bound's shape at concrete sizes (max over
        monomials, unknown variables default to 1).  This is what turns a
        guarantee into a usable cost *weight* — ``linearithmic().at(n=1e3)``
        ≈ 9966 — for the rewrite cost model and for empirical fitting."""
        import math

        best = 0.0
        for m in self.monomials:
            val = 1.0
            for (var, kind), power in m.powers:
                x = float(sizes.get(var, 1.0))
                base = math.log(max(x, 2.0)) if kind == "log" else x
                val *= base ** float(power)
            best = max(best, val)
        return max(best, 1e-12)

    def __str__(self) -> str:
        if not self.monomials:
            return "O(0)"
        return "O(" + " + ".join(str(m) for m in self.monomials) + ")"

    __repr__ = __str__


def constant() -> BigO:
    return BigO.of(Monomial.make({}))


def linear(var: str = "n") -> BigO:
    return BigO.of(Monomial.make({(var, "poly"): 1}))


def logarithmic(var: str = "n") -> BigO:
    return BigO.of(Monomial.make({(var, "log"): 1}))


def linearithmic(var: str = "n") -> BigO:
    return BigO.of(Monomial.make({(var, "poly"): 1, (var, "log"): 1}))


def quadratic(var: str = "n") -> BigO:
    return BigO.of(Monomial.make({(var, "poly"): 2}))


def polynomial(power: Number, var: str = "n") -> BigO:
    return BigO.of(Monomial.make({(var, "poly"): power}))


def product(*bounds: BigO) -> BigO:
    out = constant()
    for b in bounds:
        out = out * b
    return out


def parse(text: str) -> BigO:
    """Parse simple bound strings: ``"1"``, ``"n"``, ``"log n"``,
    ``"n log n"``, ``"n^2"``, ``"n m"``, ``"n + m"``."""
    text = text.strip()
    if text.startswith("O(") and text.endswith(")"):
        text = text[2:-1]
    monomials = []
    for part in text.split("+"):
        powers: dict[tuple[str, str], Number] = {}
        tokens = part.split()
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok == "log" and i + 1 < len(tokens):
                var = tokens[i + 1]
                powers[(var, "log")] = powers.get((var, "log"), 0) + 1
                i += 2
                continue
            if tok == "1":
                i += 1
                continue
            if "^" in tok:
                var, _, power = tok.partition("^")
                powers[(var, "poly")] = powers.get((var, "poly"), 0) + Fraction(power)
            else:
                powers[(tok, "poly")] = powers.get((tok, "poly"), 0) + 1
            i += 1
        monomials.append(Monomial.make(powers))
    return BigO.of(*monomials)


def fits(bound: BigO, sizes: Iterable[tuple[Mapping[str, float], float]],
         tolerance: float = 4.0) -> bool:
    """Empirically sanity-check measurements against a bound: the ratio
    measured/predicted must stay within ``tolerance`` of its median across
    the sweep.  Used by the benchmark harness to validate *shape*, not
    absolute cost."""
    ratios = sorted(meas / bound.at(**env) for env, meas in sizes)
    if not ratios:
        return True
    median = ratios[len(ratios) // 2]
    if median <= 0:
        return False
    return all(median / tolerance <= r <= median * tolerance for r in ratios)
