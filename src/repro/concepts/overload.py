"""Concept-based overloading (Section 2.1).

"It is often desirable to select from several implementations of a function
based solely on the concepts modeled by the arguments, a process we refer to
as concept-based overloading."  The motivating example — choosing a sorting
algorithm by how elements can be accessed — is exactly what
:mod:`repro.sequences.algorithms` does with the :class:`GenericFunction`
defined here.

Dispatch discipline: every registered implementation carries a set of
concept requirements over argument positions.  A call considers the
implementations whose requirements the actual argument types satisfy, and
picks the unique *most specific* one, where implementation A is at least as
specific as B iff each of B's requirements is implied by one of A's on the
same positions (same- or refined-concept).  Ties raise
:class:`AmbiguousOverloadError`; an empty candidate set raises
:class:`NoMatchingOverloadError` with a per-overload explanation — the
high-level diagnostics the paper calls for.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..runtime import metrics as runtime_metrics
from ..runtime.dispatch import DispatchTable
from .concept import Concept
from .modeling import ModelRegistry, models as default_registry

RequirementSpec = tuple[Concept, tuple[int, ...]]


def _normalize_requires(
    requires: Sequence[tuple[Concept, Sequence[int] | int]]
) -> tuple[RequirementSpec, ...]:
    out: list[RequirementSpec] = []
    for concept, positions in requires:
        if isinstance(positions, int):
            positions = (positions,)
        out.append((concept, tuple(positions)))
    return tuple(out)


@dataclass
class Overload:
    """One registered implementation of a generic function."""

    impl: Callable
    requires: tuple[RequirementSpec, ...]
    name: str
    #: Times this overload was chosen by dispatch (runtime metrics).
    calls: int = field(default=0, compare=False, repr=False)

    def matches(self, arg_types: Sequence[type], registry: ModelRegistry) -> bool:
        return all(
            max(pos, default=-1) < len(arg_types)
            and registry.models(concept, tuple(arg_types[p] for p in pos))
            for concept, pos in self.requires
        )

    def why_not(self, arg_types: Sequence[type], registry: ModelRegistry) -> str:
        reasons = []
        for concept, pos in self.requires:
            if max(pos, default=-1) >= len(arg_types):
                reasons.append(f"requires argument {max(pos)} (not supplied)")
                continue
            tys = tuple(arg_types[p] for p in pos)
            report = registry.check(concept, tys)
            if not report.ok:
                names = ", ".join(t.__name__ for t in tys)
                first = report.failures[0].render()
                reasons.append(f"({names}) does not model {concept.name} ({first})")
        if not reasons:
            return f"{self.name}: matches"
        return f"{self.name}: " + "; ".join(reasons)

    def at_least_as_specific_as(self, other: "Overload") -> bool:
        """Every requirement of ``other`` is implied by one of ours on the
        same argument positions."""
        return all(
            any(
                mine_pos == their_pos and mine_c.refines_concept(their_c)
                for mine_c, mine_pos in self.requires
            )
            for their_c, their_pos in other.requires
        )


class GenericFunction:
    """A function dispatched on the concepts its argument types model.

    Example (the paper's sorting motivation)::

        sort = GenericFunction("sort")

        @sort.overload(requires=[(LinearAccessSequence, 0)])
        def sort_linear(seq): ...

        @sort.overload(requires=[(IndexedAccessSequence, 0)])
        def sort_indexed(seq): ...   # quicksort; wins for arrays

    ``IndexedAccessSequence`` refining ``LinearAccessSequence`` makes the
    second overload strictly more specific, so arrays get quicksort and
    linked lists the default — with no change at any call site.

    Dispatch runs through a lazily compiled
    :class:`repro.runtime.dispatch.DispatchTable`: the specificity relation
    between overloads is flattened once per (overload set, registry
    generation), after which a call is a single dict hit on the argument
    type tuple.  Registering an overload or mutating the registry discards
    the table; the next call recompiles it.
    """

    def __init__(
        self, name: str, registry: Optional[ModelRegistry] = None
    ) -> None:
        self.name = name
        self.registry = registry if registry is not None else default_registry
        self.overloads: list[Overload] = []
        self._table: Optional[DispatchTable] = None
        # Counters folded in from retired tables, so stats survive rebuilds.
        self._hits = 0
        self._misses = 0
        self._rebuilds = 0
        self._check_time_s = 0.0
        functools.update_wrapper(self, self.__call__, updated=())
        self.__name__ = name
        runtime_metrics.track_generic_function(self)

    def overload(
        self,
        requires: Sequence[tuple[Concept, Sequence[int] | int]] = (),
        name: Optional[str] = None,
    ) -> Callable[[Callable], Callable]:
        """Decorator registering an implementation with its requirements."""

        def deco(impl: Callable) -> Callable:
            self.overloads.append(
                Overload(impl, _normalize_requires(requires), name or impl.__name__)
            )
            self._retire_table()
            return impl

        return deco

    # -- the decision table ---------------------------------------------------

    def _retire_table(self) -> None:
        table = self._table
        if table is not None:
            self._hits += table.hits
            self._misses += table.misses
            self._check_time_s += table.check_time_s
            self._table = None

    def _current_table(self) -> DispatchTable:
        table = self._table
        gen = self.registry._generation
        if table is None or table.generation != gen:
            self._retire_table()
            table = DispatchTable(
                self.name, tuple(self.overloads), self.registry, gen
            )
            self._table = table
            self._rebuilds += 1
        return table

    def resolve(self, arg_types: Sequence[type]) -> Overload:
        """Resolve the overload for the given argument types (public so the
        benchmarks can measure dispatch in isolation)."""
        return self._current_table().resolve(tuple(arg_types))

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        # Fast path, inlined: current-generation table, known type tuple.
        key = tuple(map(type, args))
        table = self._table
        if table is None or table.generation != self.registry._generation:
            table = self._current_table()
        chosen = table.entries.get(key)
        if chosen is not None:
            table.hits += 1
        else:
            chosen = table.resolve_slow(key)
        chosen.calls += 1
        return chosen.impl(*args, **kwargs)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Runtime metrics: table hits/misses, rebuilds, per-overload
        dispatch counts, time spent in uncached resolution."""
        table = self._table
        live_hits = table.hits if table is not None else 0
        live_misses = table.misses if table is not None else 0
        live_check = table.check_time_s if table is not None else 0.0
        return {
            "name": self.name,
            "overloads": len(self.overloads),
            "table_size": len(table.entries) if table is not None else 0,
            "table_generation": table.generation if table is not None else None,
            "hits": self._hits + live_hits,
            "misses": self._misses + live_misses,
            "rebuilds": self._rebuilds,
            "check_time_s": self._check_time_s + live_check,
            "overload_calls": {o.name: o.calls for o in self.overloads},
        }

    def reset_stats(self) -> None:
        self._hits = 0
        self._misses = 0
        self._rebuilds = 0
        self._check_time_s = 0.0
        table = self._table
        if table is not None:
            table.hits = 0
            table.misses = 0
            table.check_time_s = 0.0
        for o in self.overloads:
            o.calls = 0

    def dispatch_table(self) -> list[str]:
        """Human-readable list of overloads with their requirements."""
        rows = []
        for o in self.overloads:
            reqs = ", ".join(
                f"args{list(pos)} : {c.name}" for c, pos in o.requires
            )
            rows.append(f"{o.name} requires [{reqs or 'nothing'}]")
        return rows


def most_refined_concept(
    candidates: Sequence[Concept],
    types: Sequence[type] | type,
    registry: Optional[ModelRegistry] = None,
) -> Optional[Concept]:
    """Tag-dispatching helper: among ``candidates``, return the most refined
    concept that ``types`` model (or None).  This is the paper's "widely-used
    method of tag dispatching" reconstructed on first-class concepts: the
    returned concept *is* the tag."""
    reg = registry if registry is not None else default_registry
    modeled = [c for c in candidates if reg.models(c, types)]
    best: Optional[Concept] = None
    for c in modeled:
        if best is None or c.refines_concept(best):
            best = c
        elif not best.refines_concept(c):
            # Unordered pair: prefer the one with more total requirements as
            # a deterministic (documented) tie-break.
            if len(c.all_requirements()) > len(best.all_requirements()):
                best = c
    return best
