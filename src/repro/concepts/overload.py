"""Concept-based overloading (Section 2.1).

"It is often desirable to select from several implementations of a function
based solely on the concepts modeled by the arguments, a process we refer to
as concept-based overloading."  The motivating example — choosing a sorting
algorithm by how elements can be accessed — is exactly what
:mod:`repro.sequences.algorithms` does with the :class:`GenericFunction`
defined here.

Dispatch discipline: every registered implementation carries a set of
concept requirements over argument positions.  A call considers the
implementations whose requirements the actual argument types satisfy, and
picks the unique *most specific* one, where implementation A is at least as
specific as B iff each of B's requirements is implied by one of A's on the
same positions (same- or refined-concept).  Ties raise
:class:`AmbiguousOverloadError`; an empty candidate set raises
:class:`NoMatchingOverloadError` with a per-overload explanation — the
high-level diagnostics the paper calls for.
"""

from __future__ import annotations

import functools
import inspect
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..runtime import metrics as runtime_metrics
from ..runtime.dispatch import DispatchTable, compile_table
from ..runtime.specialize import Specialization
from .concept import Concept
from .modeling import ModelRegistry, models as default_registry

RequirementSpec = tuple[Concept, tuple[int, ...]]


def _normalize_requires(
    requires: Sequence[tuple[Concept, Sequence[int] | int]]
) -> tuple[RequirementSpec, ...]:
    out: list[RequirementSpec] = []
    for concept, positions in requires:
        if isinstance(positions, int):
            positions = (positions,)
        out.append((concept, tuple(positions)))
    return tuple(out)


@dataclass
class Overload:
    """One registered implementation of a generic function."""

    impl: Callable
    requires: tuple[RequirementSpec, ...]
    name: str
    #: Times this overload was chosen by dispatch (runtime metrics).
    calls: int = field(default=0, compare=False, repr=False)

    def matches(self, arg_types: Sequence[type], registry: ModelRegistry) -> bool:
        return all(
            max(pos, default=-1) < len(arg_types)
            and registry.models(concept, tuple(arg_types[p] for p in pos))
            for concept, pos in self.requires
        )

    def why_not(self, arg_types: Sequence[type], registry: ModelRegistry) -> str:
        reasons = []
        for concept, pos in self.requires:
            if max(pos, default=-1) >= len(arg_types):
                reasons.append(f"requires argument {max(pos)} (not supplied)")
                continue
            tys = tuple(arg_types[p] for p in pos)
            report = registry.check(concept, tys)
            if not report.ok:
                names = ", ".join(t.__name__ for t in tys)
                first = report.failures[0].render()
                reasons.append(f"({names}) does not model {concept.name} ({first})")
        if not reasons:
            return f"{self.name}: matches"
        return f"{self.name}: " + "; ".join(reasons)

    def at_least_as_specific_as(
        self,
        other: "Overload",
        refines: Optional[Callable[[Concept, Concept], bool]] = None,
    ) -> bool:
        """Every requirement of ``other`` is implied by one of ours on the
        same argument positions.

        ``refines`` lets the caller supply a memoized refinement predicate
        (the registry's shared
        :class:`~repro.runtime.dispatch.SpecificityMatrix`) in place of
        per-call lattice walks."""
        if refines is None:
            refines = Concept.refines_concept
        return all(
            any(
                mine_pos == their_pos and refines(mine_c, their_c)
                for mine_c, mine_pos in self.requires
            )
            for their_c, their_pos in other.requires
        )


class GenericFunction:
    """A function dispatched on the concepts its argument types model.

    Example (the paper's sorting motivation)::

        sort = GenericFunction("sort")

        @sort.overload(requires=[(LinearAccessSequence, 0)])
        def sort_linear(seq): ...

        @sort.overload(requires=[(IndexedAccessSequence, 0)])
        def sort_indexed(seq): ...   # quicksort; wins for arrays

    ``IndexedAccessSequence`` refining ``LinearAccessSequence`` makes the
    second overload strictly more specific, so arrays get quicksort and
    linked lists the default — with no change at any call site.

    Dispatch runs through a lazily compiled
    :class:`repro.runtime.dispatch.DispatchTable`: the specificity relation
    between overloads is flattened once per (overload set, registry
    generation), after which a call is a single dict hit on the argument
    type tuple.  Registering an overload or mutating the registry discards
    the table; the next call recompiles it.
    """

    def __init__(
        self, name: str, registry: Optional[ModelRegistry] = None
    ) -> None:
        self.name = name
        self.registry = registry if registry is not None else default_registry
        self.overloads: list[Overload] = []
        self._table: Optional[DispatchTable] = None
        # Counters folded in from retired tables, so stats survive rebuilds.
        self._hits = 0
        self._misses = 0
        self._rebuilds = 0
        self._check_time_s = 0.0
        # Guards retire/rebuild/stats — everything that moves counters
        # between a live table and the folded totals.  Deliberately NOT
        # taken on the table-hit fast path: a hit only increments a live
        # table's own counter, which folding reads exactly once.
        self._lock = threading.Lock()
        # Keyword -> positional binder, derived lazily from the first
        # overload's implementation signature; reset on registration.
        self._binder: Optional[inspect.Signature] = None
        #: Live call-site specializations; invalidated on registration
        #: (registry mutations reach them through the registry's hooks).
        self._specializations: "weakref.WeakSet[Specialization]" = (
            weakref.WeakSet()
        )
        functools.update_wrapper(self, self.__call__, updated=())
        self.__name__ = name
        runtime_metrics.track_generic_function(self)

    def overload(
        self,
        requires: Sequence[tuple[Concept, Sequence[int] | int]] = (),
        name: Optional[str] = None,
    ) -> Callable[[Callable], Callable]:
        """Decorator registering an implementation with its requirements."""

        def deco(impl: Callable) -> Callable:
            with self._lock:
                self.overloads.append(
                    Overload(
                        impl, _normalize_requires(requires),
                        name or impl.__name__,
                    )
                )
                self._binder = None
                self._retire_table_locked()
            # A new overload can change any resolution; flip every live
            # trampoline back to the dispatching path (outside our lock —
            # each specialization takes its own).
            for spec in tuple(self._specializations):
                spec.invalidate()
            return impl

        return deco

    # -- the decision table ---------------------------------------------------

    def _retire_table_locked(self) -> None:
        """Fold a retiring table's counters into the running totals.
        Caller holds ``self._lock``: without it, two threads observing the
        same stale table would each fold its hits/misses — double-counting
        every dispatch the table ever served."""
        table = self._table
        if table is not None:
            self._hits += table.hits
            self._misses += table.misses
            self._check_time_s += table.check_time_s
            self._table = None

    def _current_table(self) -> DispatchTable:
        table = self._table
        gen = self.registry._generation
        if table is None or table.generation != gen:
            with self._lock:
                # Re-check under the lock: another thread may have rebuilt.
                table = self._table
                gen = self.registry._generation
                if table is None or table.generation != gen:
                    self._retire_table_locked()
                    table = compile_table(
                        self.name, tuple(self.overloads), self.registry, gen
                    )
                    self._table = table
                    self._rebuilds += 1
        return table

    def resolve(self, arg_types: Sequence[type]) -> Overload:
        """Resolve the overload for the given argument types (public so the
        benchmarks can measure dispatch in isolation)."""
        return self._current_table().resolve(tuple(arg_types))

    def _bind_keywords(self, args: tuple, kwargs: dict) -> tuple:
        """Bind keyword arguments onto positional slots so the dispatch key
        is the same however the call spells its arguments.

        ``sort(xs)`` and ``sort(container=xs)`` must dispatch identically:
        keying on positional args alone would give the second call an empty
        type tuple and a spurious NoMatchingOverloadError (or a silently
        less-specific overload).  Defaults are NOT applied — an argument
        the caller didn't pass stays out of the key, exactly as in the
        all-positional spelling.  Falls back to the positional-only prefix
        when the keywords don't bind (the target impl will raise the real
        TypeError with its own diagnostics)."""
        binder = self._binder
        if binder is None:
            if not self.overloads:
                return args
            try:
                binder = inspect.signature(self.overloads[0].impl)
            except (TypeError, ValueError):
                binder = False  # type: ignore[assignment]
            self._binder = binder
        if binder is False:  # unintrospectable impl: positional key only
            return args
        try:
            bound = binder.bind(*args, **kwargs)
        except TypeError:
            return args
        out = list(args)
        for param in list(binder.parameters.values())[len(args):]:
            if param.kind not in (
                param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD
            ):
                break
            if param.name not in bound.arguments:
                break  # hole: later keywords can't take positional slots
            out.append(bound.arguments[param.name])
        return tuple(out)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        # Fast path, inlined: current-generation table, known type tuple.
        # Keyword-passed arguments are bound onto their positional slots
        # first (off the common all-positional path) so the dispatch key —
        # and therefore the chosen overload — is spelling-independent.
        if kwargs:
            key = tuple(map(type, self._bind_keywords(args, kwargs)))
        else:
            key = tuple(map(type, args))
        table = self._table
        if table is None or table.generation != self.registry._generation:
            table = self._current_table()
        chosen = table.entries.get(key)
        if chosen is not None:
            table.hits += 1
        else:
            chosen = table.resolve_slow(key)
        chosen.calls += 1
        return chosen.impl(*args, **kwargs)

    # -- monomorphization ------------------------------------------------------

    def specialize(self, *arg_types: type) -> Callable:
        """Monomorphize this function for ``arg_types``: resolve once and
        return a direct-call trampoline (no table lookup, no generation
        check on the hot path).

        The trampoline stays correct under mutation: registry mutations
        and later ``overload()`` registrations atomically swap it back to
        the dispatching path, and its next call re-resolves against the
        new state.  Calls whose shape differs from ``arg_types`` (other
        types, extra positionals, any keywords) fall back to full
        dispatch.  See :mod:`repro.runtime.specialize`."""
        key = tuple(arg_types)
        label = (
            f"{self.name}__"
            + "_".join(getattr(t, "__name__", str(t)).lower() for t in key)
            if key else f"{self.name}__nullary"
        )
        spec = Specialization(
            name=label,
            key=key,
            resolve=lambda: self.resolve(key).impl,
            fallback=self,
            registry=self.registry,
        )
        self._specializations.add(spec)
        return spec.trampoline

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Runtime metrics: table hits/misses, rebuilds, per-overload
        dispatch counts, time spent in uncached resolution.

        Taken under the per-function lock so a table retired mid-read
        cannot be counted both live and folded."""
        with self._lock:
            table = self._table
            live_hits = table.hits if table is not None else 0
            live_misses = table.misses if table is not None else 0
            live_check = table.check_time_s if table is not None else 0.0
            specs = [s.snapshot() for s in self._specializations]
            return {
                "name": self.name,
                "overloads": len(self.overloads),
                "table_size": len(table.entries) if table is not None else 0,
                "table_generation": (
                    table.generation if table is not None else None
                ),
                "hits": self._hits + live_hits,
                "misses": self._misses + live_misses,
                "rebuilds": self._rebuilds,
                "check_time_s": self._check_time_s + live_check,
                "overload_calls": {o.name: o.calls for o in self.overloads},
                "specializations": specs,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._rebuilds = 0
            self._check_time_s = 0.0
            table = self._table
            if table is not None:
                table.hits = 0
                table.misses = 0
                table.check_time_s = 0.0
            for o in self.overloads:
                o.calls = 0

    def dispatch_table(self) -> list[str]:
        """Human-readable list of overloads with their requirements."""
        rows = []
        for o in self.overloads:
            reqs = ", ".join(
                f"args{list(pos)} : {c.name}" for c, pos in o.requires
            )
            rows.append(f"{o.name} requires [{reqs or 'nothing'}]")
        return rows


def most_refined_concept(
    candidates: Sequence[Concept],
    types: Sequence[type] | type,
    registry: Optional[ModelRegistry] = None,
) -> Optional[Concept]:
    """Tag-dispatching helper: among ``candidates``, return the most refined
    concept that ``types`` model (or None).  This is the paper's "widely-used
    method of tag dispatching" reconstructed on first-class concepts: the
    returned concept *is* the tag."""
    reg = registry if registry is not None else default_registry
    modeled = [c for c in candidates if reg.models(c, types)]
    best: Optional[Concept] = None
    for c in modeled:
        if best is None or c.refines_concept(best):
            best = c
        elif not best.refines_concept(c):
            # Unordered pair: prefer the one with more total requirements as
            # a deterministic (documented) tie-break.
            if len(c.all_requirements()) > len(best.all_requirements()):
                best = c
    return best
