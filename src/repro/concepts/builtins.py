"""The standard concept library: foundational, ordering, iterator, and
container concepts.

These are the concepts the paper's running examples assume: the SGI STL
concept descriptions (EqualityComparable, LessThanComparable, the iterator
refinement chain with its "multipass" distinction), the Strict Weak Order of
Fig. 6, and the container concepts that drive concept-based overloading of
``sort`` in Section 2.1.

The iterator protocol here is *value-semantic* like the STL's (``clone``,
``increment``, ``deref``, ``equals``) rather than Python's one-shot
``__next__`` — the multipass property of Forward Iterators and the
invalidation semantics checked by STLlint only make sense for copyable
positional iterators.
"""

from __future__ import annotations

from .complexity import constant, linear, logarithmic
from .concept import Concept
from .requirements import (
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    ConceptRequirement,
    Exact,
    Param,
    SameType,
    SemanticAxiom,
    function,
    method,
    operator,
)

T = Param("T")
It = Param("It")
C = Param("C")

# ---------------------------------------------------------------------------
# Foundational concepts
# ---------------------------------------------------------------------------

EqualityComparable = Concept(
    "EqualityComparable",
    params=("T",),
    requirements=[
        operator("a == b", "==", [T, T], Exact(bool)),
        SemanticAxiom(
            "reflexivity", ("a",), lambda ops, a: ops["=="](a, a),
            "a == a",
        ),
        SemanticAxiom(
            "symmetry", ("a", "b"),
            lambda ops, a, b: ops["=="](a, b) == ops["=="](b, a),
            "(a == b) iff (b == a)",
        ),
    ],
    doc="Types comparable with ==, an equivalence relation.",
)

LessThanComparable = Concept(
    "LessThanComparable",
    params=("T",),
    requirements=[
        operator("a < b", "<", [T, T], Exact(bool)),
    ],
    doc="Types with operator<. Syntactic only; see StrictWeakOrder for the "
        "semantic version.",
)


def _equiv(ops, a, b) -> bool:
    lt = ops["<"]
    return (not lt(a, b)) and (not lt(b, a))


#: Fig. 6: the axioms of a Strict Weak Order.  "From these axioms two
#: additional properties of E, symmetry and reflexivity, can be derived as
#: theorems" — the derivation itself is carried out deductively in
#: :mod:`repro.athena.proofs.strict_weak_order`.
StrictWeakOrder = Concept(
    "Strict Weak Order",
    params=("T",),
    refines=[LessThanComparable],
    requirements=[
        SemanticAxiom(
            "irreflexivity", ("x",),
            lambda ops, x: not ops["<"](x, x),
            "not (x < x)",
        ),
        SemanticAxiom(
            "transitivity", ("x", "y", "z"),
            lambda ops, x, y, z: (not (ops["<"](x, y) and ops["<"](y, z)))
            or ops["<"](x, z),
            "x < y and y < z implies x < z",
        ),
        SemanticAxiom(
            "transitivity of equivalence", ("x", "y", "z"),
            lambda ops, x, y, z: (not (_equiv(ops, x, y) and _equiv(ops, y, z)))
            or _equiv(ops, x, z),
            "E(x,y) and E(y,z) implies E(x,z), where E(a,b) := "
            "not (a<b) and not (b<a)",
        ),
    ],
    doc="The minimal requirements on < for correctness of max_element, "
        "binary_search, sort, etc. (Fig. 6).",
)

TotalOrder = Concept(
    "Total Order",
    params=("T",),
    refines=[StrictWeakOrder, EqualityComparable],
    requirements=[
        SemanticAxiom(
            "trichotomy", ("x", "y"),
            lambda ops, x, y: (
                int(bool(ops["<"](x, y)))
                + int(bool(ops["<"](y, x)))
                + int(bool(ops["=="](x, y)))
            ) == 1,
            "exactly one of x<y, y<x, x==y",
        ),
    ],
    doc="Strict weak order whose equivalence is equality.",
)

DefaultConstructible = Concept(
    "DefaultConstructible",
    params=("T",),
    requirements=[
        method("T()", "__init__", [T]),
    ],
    doc="Types constructible with no arguments.",
)

Regular = Concept(
    "Regular",
    params=("T",),
    refines=[EqualityComparable, DefaultConstructible],
    doc="The EoP-style regular type: default constructible + equality.",
)

# ---------------------------------------------------------------------------
# Iterator concepts (the STL refinement chain)
# ---------------------------------------------------------------------------

TrivialIterator = Concept(
    "Trivial Iterator",
    params=("It",),
    requirements=[
        AssociatedType("value_type", It, "Associated value type"),
        method("it.deref()", "deref", [It], Assoc(It, "value_type")),
        method("a.equals(b)", "equals", [It, It], Exact(bool)),
        ComplexityGuarantee("deref", constant()),
    ],
    doc="Dereferenceable, comparable positions.",
)

InputIterator = Concept(
    "Input Iterator",
    params=("It",),
    refines=[TrivialIterator],
    requirements=[
        method("it.increment()", "increment", [It]),
        ComplexityGuarantee("increment", constant()),
        SemanticAxiom(
            "single pass", (),
            lambda ops: True,
            "after increment, all copies of the previous value are "
            "invalidated; the sequence may be traversed only once",
        ),
    ],
    doc="Single-pass read: 'permits only one traversal of the sequence' "
        "(Section 3.1).",
)

OutputIterator = Concept(
    "Output Iterator",
    params=("It",),
    requirements=[
        method("it.write(v)", "write", [It, Assoc(It, "value_type")]),
        method("it.increment()", "increment", [It]),
        AssociatedType("value_type", It, "Associated value type"),
    ],
    doc="Single-pass write.",
)

ForwardIterator = Concept(
    "Forward Iterator",
    params=("It",),
    refines=[InputIterator],
    requirements=[
        method("it.clone()", "clone", [It], It),
        SemanticAxiom(
            "multipass", (),
            lambda ops: True,
            "'the multipass property ... permits an algorithm to traverse "
            "the elements in a sequence multiple times' (Section 3.1): "
            "increment invalidates no copies; equal iterators stay equal "
            "after equal numbers of increments",
        ),
    ],
    doc="Multipass traversal; the somewhat subtle requirement STLlint "
        "checks max_element against.",
)

BidirectionalIterator = Concept(
    "Bidirectional Iterator",
    params=("It",),
    refines=[ForwardIterator],
    requirements=[
        method("it.decrement()", "decrement", [It]),
        ComplexityGuarantee("decrement", constant()),
    ],
    doc="Forward iterator that can also step backwards.",
)

RandomAccessIterator = Concept(
    "Random Access Iterator",
    params=("It",),
    refines=[BidirectionalIterator],
    requirements=[
        method("it.advance(n)", "advance", [It, Exact(int)]),
        method("a.distance(b)", "distance", [It, It], Exact(int)),
        method("a.less(b)", "less", [It, It], Exact(bool)),
        ComplexityGuarantee("advance", constant()),
        ComplexityGuarantee("distance", constant()),
    ],
    doc="Constant-time jumps — what lets sort pick quicksort (Section 2.1).",
)

# ---------------------------------------------------------------------------
# Container concepts
# ---------------------------------------------------------------------------

Container = Concept(
    "Container",
    params=("C",),
    requirements=[
        AssociatedType("value_type", C, "Associated value type"),
        AssociatedType("iterator", C, "Associated iterator type"),
        method("c.begin()", "begin", [C], Assoc(C, "iterator")),
        method("c.end()", "end", [C], Assoc(C, "iterator")),
        method("c.size()", "size", [C], Exact(int)),
        SameType(Assoc(Assoc(C, "iterator"), "value_type"), Assoc(C, "value_type")),
        ConceptRequirement(TrivialIterator, (Assoc(C, "iterator"),)),
        ComplexityGuarantee("size", constant()),
    ],
    doc="Owns elements reachable through an iterator range [begin, end).",
)

ForwardContainer = Concept(
    "Forward Container",
    params=("C",),
    refines=[Container],
    requirements=[
        ConceptRequirement(ForwardIterator, (Assoc(C, "iterator"),)),
    ],
    doc="Container whose iterators are multipass.",
)

ReversibleContainer = Concept(
    "Reversible Container",
    params=("C",),
    refines=[ForwardContainer],
    requirements=[
        ConceptRequirement(BidirectionalIterator, (Assoc(C, "iterator"),)),
    ],
    doc="Container with bidirectional iterators.",
)

Sequence = Concept(
    "Sequence",
    params=("C",),
    refines=[ForwardContainer],
    requirements=[
        method("c.insert(pos, v)", "insert", [C, Assoc(C, "iterator"),
                                              Assoc(C, "value_type")]),
        method("c.erase(pos)", "erase", [C, Assoc(C, "iterator")]),
    ],
    doc="Variable-size container with positional insert/erase (whose "
        "invalidation behaviour STLlint tracks).",
)

FrontInsertionSequence = Concept(
    "Front Insertion Sequence",
    params=("C",),
    refines=[Sequence],
    requirements=[
        method("c.push_front(v)", "push_front", [C, Assoc(C, "value_type")]),
        ComplexityGuarantee("push_front", constant()),
    ],
    doc="O(1) insertion at the front (lists, deques).",
)

BackInsertionSequence = Concept(
    "Back Insertion Sequence",
    params=("C",),
    refines=[Sequence],
    requirements=[
        method("c.push_back(v)", "push_back", [C, Assoc(C, "value_type")]),
        ComplexityGuarantee("push_back", constant(), amortized=True),
    ],
    doc="Amortized O(1) insertion at the back (vectors, deques).",
)

RandomAccessContainer = Concept(
    "Random Access Container",
    params=("C",),
    refines=[ReversibleContainer],
    requirements=[
        method("c.at(i)", "at", [C, Exact(int)], Assoc(C, "value_type")),
        ConceptRequirement(RandomAccessIterator, (Assoc(C, "iterator"),)),
        ComplexityGuarantee("at", constant()),
    ],
    doc="Elements 'accessed efficiently via indexing (as with an array)' — "
        "the trigger for quicksort in Section 2.1's overloading example.",
)

ContiguousContainer = Concept(
    "Contiguous Container",
    params=("C",),
    refines=[RandomAccessContainer],
    requirements=[
        SemanticAxiom(
            "contiguity", (),
            lambda ops: True,
            "elements occupy one machine-addressable block, so a "
            "subrange can be transferred as a single bulk operation",
        ),
    ],
    doc="Random access backed by one contiguous block (array / mmap) — "
        "the trigger for bulk copy paths.  Nominal: contiguity is a "
        "representation promise no structural check can see.",
    nominal=True,
)

PersistentContainer = Concept(
    "Persistent Container",
    params=("C",),
    refines=[ForwardContainer],
    requirements=[
        method("c.flush()", "flush", [C]),
        method("c.close()", "close", [C]),
        SemanticAxiom(
            "durability", (),
            lambda ops: True,
            "elements and recorded facts survive close() and a later "
            "reopen from the same location",
        ),
    ],
    doc="Container whose contents outlive the process (sqlite-backed "
        "sequences).  Nominal: durability is a representation promise, "
        "and declaring it is what licenses io-aware algorithm selection "
        "(indexed lookup instead of a scan).",
    nominal=True,
)

SortedRange = Concept(
    "Sorted Range",
    params=("C",),
    refines=[ForwardContainer],
    requirements=[
        SemanticAxiom(
            "sortedness", (),
            lambda ops: True,
            "elements appear in non-decreasing order under the range's "
            "comparator — the flow-sensitive property STLlint's exit "
            "handlers attach after sort (Section 3.1/3.2)",
        ),
    ],
    doc="A range carrying the sortedness postcondition; enables "
        "binary_search / lower_bound selection.",
    nominal=True,
)

#: Everything this module defines, for taxonomy registration.
ALL_CONCEPTS = [
    EqualityComparable, LessThanComparable, StrictWeakOrder, TotalOrder,
    DefaultConstructible, Regular,
    TrivialIterator, InputIterator, OutputIterator, ForwardIterator,
    BidirectionalIterator, RandomAccessIterator,
    Container, ForwardContainer, ReversibleContainer, Sequence,
    FrontInsertionSequence, BackInsertionSequence, RandomAccessContainer,
    ContiguousContainer, PersistentContainer, SortedRange,
]
