"""Concept taxonomies (Sections 1 and 4).

"We have experimented extensively with expression and organization of such
constraints in *algorithm concept taxonomies*.  A major use of such
taxonomies is to provide a well-developed standard to refer to while
designing and implementing a generic algorithm library."

A :class:`Taxonomy` is a registry of concepts ordered by refinement, plus
*algorithm concepts*: named algorithm specifications carrying the data-type
concepts they require and the complexity guarantees they promise.  Queries
support the uses the paper lists: understanding ("what refines what"),
design gaps ("refinements with no known algorithm"), and selection ("the
cheapest algorithm whose requirements my types satisfy").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .complexity import BigO
from .concept import Concept
from .modeling import ModelRegistry, models as default_registry
from .propagation import Constraint


@dataclass
class AlgorithmConcept:
    """A node in an algorithm concept taxonomy.

    Attributes:
        name: Algorithm concept name (``"sort"``, ``"stable sort"``).
        problem: The problem solved (taxonomy dimension 1).
        requires: Data-type concept constraints on the inputs.
        guarantees: Complexity guarantees, keyed by resource
            (``"comparisons"``, ``"messages"``, ``"time"``,
            ``"local computation"`` — Section 4 insists local computation be
            accounted for).
        refines: More general algorithm concepts this one refines (a stable
            sort *is a* sort with an extra promise).
        implementation: Optional callable realizing the concept.
        requires_properties: Semantic properties (:mod:`repro.facts`
            names like ``"sorted"``) the input range must satisfy — the
            machine-readable form of "binary_search requires a sorted
            range", checked against STLlint-derived facts.
        requires_capabilities: Storage capability tags (``"persistent"``,
            ``"contiguous"`` — see :class:`repro.sequences.storage.
            StorageCapabilities`) the container's backend must provide.
            An indexed lookup only exists where there is an index.
        establishes: Properties holding on the range afterwards.
        destroys: Properties the algorithm's reordering invalidates.
        result: What the call returns, for substitutability during
            selection (``"position"`` — an iterator into the range;
            ``"bool"``; ``"value"``; ``""`` for in-place mutators).
    """

    name: str
    problem: str
    requires: tuple[Constraint, ...] = ()
    guarantees: dict[str, BigO] = field(default_factory=dict)
    refines: tuple["AlgorithmConcept", ...] = ()
    implementation: Optional[object] = None
    doc: str = ""
    requires_properties: tuple[str, ...] = ()
    requires_capabilities: tuple[str, ...] = ()
    establishes: tuple[str, ...] = ()
    destroys: tuple[str, ...] = ()
    result: str = ""

    def refines_transitively(self, other: "AlgorithmConcept") -> bool:
        if self is other:
            return True
        return any(p.refines_transitively(other) for p in self.refines)

    def all_guarantees(self) -> dict[str, BigO]:
        """Own guarantees plus inherited ones (own take precedence; a
        refinement may only *tighten* a bound, which :meth:`validate`
        enforces)."""
        merged: dict[str, BigO] = {}
        for parent in self.refines:
            merged.update(parent.all_guarantees())
        merged.update(self.guarantees)
        return merged

    def weighted_cost(self, weights: "Mapping[str, float]",
                      size: float = 1000.0) -> float:
        """Concrete cost at ``n = size`` as a weighted sum over resources:
        ``sum(weights[r] * guarantee[r].at(n=size))``.  A resource the
        algorithm declares no guarantee for contributes zero — an
        algorithm that never touches the backing store has no io cost.
        This is how a single ranking can trade cpu against io once the
        two are priced against each other."""
        total = 0.0
        guarantees = self.all_guarantees()
        for resource, weight in weights.items():
            bound = guarantees.get(resource)
            if bound is not None:
                total += weight * bound.at(n=size)
        return total

    def validate(self) -> list[str]:
        """Refinement must not loosen any inherited complexity guarantee."""
        problems = []
        for parent in self.refines:
            for resource, parent_bound in parent.all_guarantees().items():
                mine = self.guarantees.get(resource)
                if mine is not None and not (mine <= parent_bound):
                    problems.append(
                        f"{self.name} loosens {resource} bound of "
                        f"{parent.name}: {mine} vs {parent_bound}"
                    )
        return problems


class Taxonomy:
    """A named collection of data-type concepts and algorithm concepts."""

    def __init__(self, name: str, registry: Optional[ModelRegistry] = None) -> None:
        self.name = name
        self.registry = registry if registry is not None else default_registry
        self.concepts: dict[str, Concept] = {}
        self.algorithms: dict[str, AlgorithmConcept] = {}

    # -- registration --------------------------------------------------------

    def add_concept(self, concept: Concept) -> Concept:
        self.concepts[concept.name] = concept
        return concept

    def add_concepts(self, concepts: Iterable[Concept]) -> None:
        for c in concepts:
            self.add_concept(c)

    def add_algorithm(self, algorithm: AlgorithmConcept) -> AlgorithmConcept:
        problems = algorithm.validate()
        if problems:
            raise ValueError("; ".join(problems))
        self.algorithms[algorithm.name] = algorithm
        return algorithm

    # -- concept lattice queries ----------------------------------------------

    def ancestors(self, concept: Concept) -> list[Concept]:
        return concept.ancestors()

    def descendants(self, concept: Concept) -> list[Concept]:
        return [
            c
            for c in self.concepts.values()
            if c is not concept and c.refines_concept(concept)
        ]

    def roots(self) -> list[Concept]:
        """Concepts in this taxonomy refining nothing in this taxonomy."""
        inside = set(map(id, self.concepts.values()))
        return [
            c
            for c in self.concepts.values()
            if not any(id(p) in inside for p in c.ancestors())
        ]

    def refinement_edges(self) -> list[tuple[str, str]]:
        edges = []
        for c in self.concepts.values():
            for parent, _ in c.refinements():
                edges.append((c.name, parent.name))
        return edges

    # -- algorithm queries ------------------------------------------------------

    def algorithms_for_problem(self, problem: str) -> list[AlgorithmConcept]:
        return [a for a in self.algorithms.values() if a.problem == problem]

    def applicable_algorithms(
        self, problem: str, bindings: dict[str, type]
    ) -> list[AlgorithmConcept]:
        """Algorithms for ``problem`` whose data-type requirements the given
        type bindings satisfy.  Constraint arguments are resolved by
        parameter name against ``bindings``."""
        out = []
        for algo in self.algorithms_for_problem(problem):
            if all(
                self._constraint_holds(c, bindings) for c in algo.requires
            ):
                out.append(algo)
        return out

    def _constraint_holds(self, c: Constraint, bindings: dict[str, type]) -> bool:
        try:
            types = tuple(bindings[str(a)] for a in c.args)
        except KeyError:
            return False
        return self.registry.models(c.concept, types)

    def select_algorithm(
        self,
        problem: str,
        bindings: dict[str, type],
        resource: str,
        size_hint: Optional[dict[str, float]] = None,
    ) -> Optional[AlgorithmConcept]:
        """Pick the applicable algorithm with the asymptotically best
        guarantee on ``resource`` — the taxonomy-driven algorithm selection
        the paper says "helps a system designer to pick the correct
        algorithm"."""
        candidates = self.applicable_algorithms(problem, bindings)
        best: Optional[AlgorithmConcept] = None
        for algo in candidates:
            bound = algo.all_guarantees().get(resource)
            if bound is None:
                continue
            if best is None:
                best = algo
                continue
            best_bound = best.all_guarantees()[resource]
            if bound < best_bound:
                best = algo
        return best

    def select_for_properties(
        self,
        problem: str,
        properties: "Iterable[str]",
        resource: str,
        result: Optional[str] = None,
        require_implementation: bool = True,
        capabilities: Iterable[str] = (),
        weights: Optional[Mapping[str, float]] = None,
        size: float = 1000.0,
    ) -> Optional[AlgorithmConcept]:
        """Pick the algorithm with the best ``resource`` guarantee whose
        *property* requirements are satisfied by ``properties``
        (STLlint-derived facts, closed under implication).

        This is the data-driven half of the paper's Section 3.2 loop:
        the facts layer proves ``sorted(v)`` holds at a ``find`` call, and
        the taxonomy answers "given sortedness, what is the cheapest
        search returning a position?" — ``lower_bound``, O(log n).
        ``result`` restricts candidates to substitutable ones (a rewrite
        of ``find`` needs another position-returning search, not the
        bool-returning ``binary_search``).

        ``capabilities`` are the storage capability tags the container's
        backend provides; algorithms whose ``requires_capabilities``
        exceed them are never candidates (no index, no indexed lookup).

        Without ``weights`` candidates are ranked asymptotically on
        ``resource`` alone, exactly as before the io/cpu split.  With
        ``weights`` (``{"comparisons": 1.0, "io_ops": 8.0}``) they are
        ranked by concrete weighted cost at ``n = size`` — this is what
        routes ``find`` on a sorted *persistent* sequence to the indexed
        lookup: lower_bound's O(log n) comparisons lose to one indexed
        round trip once every comparison is itself a round trip.
        """
        from ..facts.properties import closure

        have = closure(properties)
        have_caps = frozenset(capabilities)
        best: Optional[AlgorithmConcept] = None
        best_bound: Optional[BigO] = None
        best_cost: Optional[float] = None
        for algo in self.algorithms_for_problem(problem):
            if require_implementation and algo.implementation is None:
                continue
            if result is not None and algo.result != result:
                continue
            if not set(algo.requires_properties) <= have:
                continue
            if not set(algo.requires_capabilities) <= have_caps:
                continue
            bound = algo.all_guarantees().get(resource)
            if bound is None:
                continue
            if weights is not None:
                cost = algo.weighted_cost(weights, size)
                if best_cost is None or cost < best_cost:
                    best, best_cost = algo, cost
            elif best_bound is None or bound < best_bound:
                best, best_bound = algo, bound
        return best

    def gaps(self, problem: str) -> list[AlgorithmConcept]:
        """Algorithm concepts with no implementation — "helps in the design
        of new ones (based on situations where no known algorithms for a
        particular concept refinement exist)"."""
        return [
            a for a in self.algorithms_for_problem(problem) if a.implementation is None
        ]

    # -- documents ---------------------------------------------------------------

    def document(self) -> str:
        """Render the taxonomy as the kind of standard document the paper
        proposes libraries be designed against."""
        lines = [f"Taxonomy: {self.name}", "=" * (10 + len(self.name)), ""]
        lines.append("Concepts (refinement edges):")
        for child, parent in sorted(self.refinement_edges()):
            lines.append(f"  {child} refines {parent}")
        solo = [
            c.name
            for c in self.concepts.values()
            if not c.refinements()
        ]
        for name in sorted(solo):
            lines.append(f"  {name}")
        lines.append("")
        lines.append("Algorithm concepts:")
        for algo in sorted(self.algorithms.values(), key=lambda a: a.name):
            lines.append(f"  {algo.name}  [problem: {algo.problem}]")
            for c in algo.requires:
                lines.append(f"    requires {c.render()}")
            for resource, bound in sorted(algo.all_guarantees().items()):
                lines.append(f"    guarantees {resource}: {bound}")
            status = "implemented" if algo.implementation is not None else "GAP"
            lines.append(f"    status: {status}")
        return "\n".join(lines)


@dataclass
class GuaranteeCheck:
    """Result of empirically validating one complexity guarantee."""

    algorithm: str
    resource: str
    bound: BigO
    measurements: list[tuple[dict, float]]
    holds: bool

    def render(self) -> str:
        status = "consistent with" if self.holds else "INCONSISTENT with"
        pts = ", ".join(
            f"{tuple(env.values())}→{value:.0f}"
            for env, value in self.measurements
        )
        return (f"{self.algorithm}.{self.resource} {status} {self.bound} "
                f"[{pts}]")


def check_guarantee(
    algorithm: AlgorithmConcept,
    resource: str,
    measure: "Callable[..., float]",
    sizes: "Iterable[dict[str, int]]",
    tolerance: float = 3.0,
) -> GuaranteeCheck:
    """Empirically validate a complexity guarantee.

    Complexity guarantees are the fourth requirement kind; like semantic
    axioms they cannot be checked structurally — but they CAN be checked
    against measurements.  ``measure(**size)`` returns the resource usage
    (operation count, message count, seconds) at one size point; the sweep
    must stay within ``tolerance`` of the guarantee's shape
    (:func:`repro.concepts.complexity.fits`).

    This is the performance analogue of ``check_semantics``: a failing
    sweep *refutes* the declared guarantee; a passing one is evidence, not
    proof.
    """
    from .complexity import fits

    bound = algorithm.all_guarantees().get(resource)
    if bound is None:
        raise KeyError(
            f"{algorithm.name} declares no guarantee for {resource!r}"
        )
    measurements = [(dict(env), float(measure(**env))) for env in sizes]
    holds = fits(bound, [(env, v) for env, v in measurements],
                 tolerance=tolerance)
    return GuaranteeCheck(algorithm.name, resource, bound, measurements, holds)
