"""First-class concepts: the paper's primary contribution.

Public API overview::

    from repro.concepts import (
        Concept, Param, Assoc, Exact,               # definition language
        AssociatedType, ValidExpression, SameType,  # requirement kinds
        ConceptRequirement, SemanticAxiom, ComplexityGuarantee,
        method, function, operator,                 # requirement shorthands
        models, declare_model, check_concept, require,  # modeling relation
        GenericFunction, most_refined_concept,      # concept-based overloading
        propagate, Constraint, AlgorithmSignature,  # constraint propagation
        make_archetypes, exercise, ArchetypeSet,    # archetypes
        Taxonomy, AlgorithmConcept,                 # algorithm taxonomies
        BigO,                                       # complexity guarantees
    )
    from repro.concepts.builtins import StrictWeakOrder, ForwardIterator, ...
    from repro.concepts.algebra import Monoid, Group, VectorSpace, algebra
"""

from . import complexity
from .archetypes import ArchetypeSet, OpaqueValue, exercise, make_archetypes
from .docgen import concept_figure, concept_reference, refinement_lattice
from .dsl import ConceptSyntaxError, parse_concept, parse_concepts
from .complexity import BigO
from .concept import Concept, concept, substitute, substitute_requirement
from .errors import (
    AmbiguousOverloadError,
    ArchetypeViolation,
    CheckReport,
    ConceptCheckError,
    ConceptDefinitionError,
    ConceptError,
    NoMatchingOverloadError,
    RequirementFailure,
    SemanticAxiomViolation,
)
from .modeling import (
    ConceptMap,
    ModelRegistry,
    OperationRegistry,
    OpsNamespace,
    RegistrySnapshot,
    check_concept,
    declare_model,
    models,
    operations,
    ops_for,
    require,
)
from .overload import GenericFunction, most_refined_concept
from .propagation import (
    AlgorithmSignature,
    Constraint,
    PropagatedConstraints,
    implied_by,
    propagate,
)
from .requirements import (
    AnyType,
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    ConceptRequirement,
    Exact,
    Param,
    Requirement,
    SameType,
    SemanticAxiom,
    TypeExpr,
    ValidExpression,
    function,
    method,
    operator,
)
from .taxonomy import AlgorithmConcept, GuaranteeCheck, Taxonomy, check_guarantee
from .where import constraints_of, declaration_of, where, where_multi

__all__ = [
    "AlgorithmConcept",
    "AlgorithmSignature",
    "AmbiguousOverloadError",
    "AnyType",
    "ArchetypeSet",
    "ArchetypeViolation",
    "Assoc",
    "AssociatedType",
    "BigO",
    "CheckReport",
    "ComplexityGuarantee",
    "Concept",
    "ConceptCheckError",
    "ConceptDefinitionError",
    "ConceptError",
    "ConceptMap",
    "ConceptRequirement",
    "Constraint",
    "Exact",
    "GenericFunction",
    "ModelRegistry",
    "NoMatchingOverloadError",
    "OpaqueValue",
    "OperationRegistry",
    "Param",
    "PropagatedConstraints",
    "Requirement",
    "RequirementFailure",
    "SameType",
    "SemanticAxiom",
    "SemanticAxiomViolation",
    "Taxonomy",
    "GuaranteeCheck",
    "check_guarantee",
    "TypeExpr",
    "ValidExpression",
    "check_concept",
    "complexity",
    "concept",
    "concept_figure",
    "parse_concept",
    "parse_concepts",
    "ConceptSyntaxError",
    "concept_reference",
    "refinement_lattice",
    "declare_model",
    "exercise",
    "function",
    "implied_by",
    "make_archetypes",
    "method",
    "models",
    "most_refined_concept",
    "operations",
    "operator",
    "ops_for",
    "OpsNamespace",
    "RegistrySnapshot",
    "propagate",
    "require",
    "substitute",
    "substitute_requirement",
    "where",
    "where_multi",
    "constraints_of",
    "declaration_of",
]
