"""Algebraic concepts and operation-tagged models.

Fig. 5's rewrite rules are guarded by *pairs*: "(x, +) models Monoid" — the
same type can model Monoid under ``+`` and under ``*`` with different
identities.  The concept system keys models by type tuples, so algebraic
modeling gets its own registry keyed by ``(type, operator symbol)``; this is
the generalization of the "tagging of certain operators with semantic
attributes such as commutativity and associativity" the paper cites from
Axiom/Maude, upgraded with identity/inverse witnesses and sample-based axiom
testing.

The hierarchy — Semigroup ⊂ Monoid ⊂ Group ⊂ AbelianGroup, and Ring/Field
over two operations — mirrors the concepts the authors "have already
formalized and used in proofs" (Section 3.3); the Athena theories in
:mod:`repro.athena.theories` state the same axioms deductively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .concept import Concept
from .errors import SemanticAxiomViolation
from .requirements import (
    AnyType,
    Param,
    SemanticAxiom,
    function,
)

T = Param("T")

# ---------------------------------------------------------------------------
# The concept hierarchy (semantic concepts: signatures + axioms)
# ---------------------------------------------------------------------------

Magma = Concept(
    "Magma",
    params=("T",),
    requirements=[
        function("op(a, b)", "op", [T, T], T),
    ],
    doc="A set with a closed binary operation.",
)

Semigroup = Concept(
    "Semigroup",
    params=("T",),
    refines=[Magma],
    requirements=[
        SemanticAxiom(
            "associativity",
            ("a", "b", "c"),
            lambda ops, a, b, c: ops.op(ops.op(a, b), c) == ops.op(a, ops.op(b, c)),
            "op(op(a, b), c) == op(a, op(b, c))",
        ),
    ],
    doc="Associative magma.",
)

Monoid = Concept(
    "Monoid",
    params=("T",),
    refines=[Semigroup],
    requirements=[
        function("identity()", "identity", [T], T),
        SemanticAxiom(
            "right identity",
            ("a",),
            lambda ops, a: ops.op(a, ops.identity(a)) == a,
            "op(a, e) == a  —  the Fig. 5 rule x + 0 -> x",
        ),
        SemanticAxiom(
            "left identity",
            ("a",),
            lambda ops, a: ops.op(ops.identity(a), a) == a,
            "op(e, a) == a",
        ),
    ],
    doc="Semigroup with identity.",
)

Group = Concept(
    "Group",
    params=("T",),
    refines=[Monoid],
    requirements=[
        function("inverse(a)", "inverse", [T], T),
        SemanticAxiom(
            "right inverse",
            ("a",),
            lambda ops, a: ops.op(a, ops.inverse(a)) == ops.identity(a),
            "op(a, inverse(a)) == e  —  the Fig. 5 rule x + (-x) -> 0",
        ),
    ],
    doc="Monoid with inverses.",
)

AbelianGroup = Concept(
    "Abelian Group",
    params=("T",),
    refines=[Group],
    requirements=[
        SemanticAxiom(
            "commutativity",
            ("a", "b"),
            lambda ops, a, b: ops.op(a, b) == ops.op(b, a),
            "op(a, b) == op(b, a)",
        ),
    ],
    doc="Commutative group.",
)

#: Fig. 3 names this structure for the additive part of a vector space.
AdditiveAbelianGroup = Concept(
    "Additive Abelian Group",
    params=("T",),
    refines=[AbelianGroup],
    doc="Abelian group written additively (Fig. 3's vector-addition part).",
)

Ring = Concept(
    "Ring",
    params=("T",),
    refines=[AdditiveAbelianGroup],
    requirements=[
        function("mul(a, b)", "mul", [T, T], T),
        function("one()", "one", [T], T),
        SemanticAxiom(
            "distributivity",
            ("a", "b", "c"),
            lambda ops, a, b, c: ops.mul(a, ops.op(b, c))
            == ops.op(ops.mul(a, b), ops.mul(a, c)),
            "a*(b+c) == a*b + a*c",
        ),
        SemanticAxiom(
            "multiplicative associativity",
            ("a", "b", "c"),
            lambda ops, a, b, c: ops.mul(ops.mul(a, b), c)
            == ops.mul(a, ops.mul(b, c)),
            "(a*b)*c == a*(b*c)",
        ),
    ],
    doc="Ring: additive abelian group with associative, distributive mul.",
)

Field = Concept(
    "Field",
    params=("T",),
    refines=[Ring],
    requirements=[
        function("reciprocal(a)", "reciprocal", [T], T),
        SemanticAxiom(
            "multiplicative inverse",
            ("a",),
            lambda ops, a: a == ops.identity(a)
            or ops.mul(a, ops.reciprocal(a)) == ops.one(a),
            "a != 0 implies a * (1/a) == 1",
        ),
    ],
    doc="Ring whose nonzero elements form a multiplicative group.",
)

V, S = Param("V"), Param("S")

#: Fig. 3: "Types V and S model the Vector Space concept if, in addition to
#: the type S modeling the Field concept and the type V modeling the
#: Additive Abelian Group concept, the above requirements are satisfied."
VectorSpace = Concept(
    "Vector Space",
    params=("V", "S"),
    refines=[(AdditiveAbelianGroup, (V,)), (Field, (S,))],
    requirements=[
        function("mult(v, s)", "mult", [V, S], V),
        function("mult(s, v)", "mult", [S, V], V, owner_index=1),
        SemanticAxiom(
            "scalar distributivity",
            ("v", "w", "s"),
            lambda ops, v, w, s: ops.mult(ops.op(v, w), s)
            == ops.op(ops.mult(v, s), ops.mult(w, s)),
            "(v + w)*s == v*s + w*s",
        ),
    ],
    doc="The multi-type concept of Fig. 3; scalar type is NOT an associated "
        "type of the vector type (the CLA-CRM argument of Section 2.4).",
)


# ---------------------------------------------------------------------------
# Operation-tagged algebraic structures
# ---------------------------------------------------------------------------


@dataclass
class AlgebraicStructure:
    """A declaration that ``(typ, op_symbol)`` models an algebraic concept.

    ``identity_value``/``is_identity`` witness the identity element;
    ``is_identity`` exists separately because for shape-dependent identities
    (the identity matrix) membership cannot be tested with ``==`` against a
    single value.  ``inverse`` is required at Group level and above.
    """

    typ: type
    op_symbol: str
    concept: Concept
    apply: Callable[[Any, Any], Any]
    identity_value: Any = None
    is_identity: Optional[Callable[[Any], bool]] = None
    inverse: Optional[Callable[[Any], Any]] = None
    commutative: bool = False
    samples: tuple = ()
    make_identity: Optional[Callable[[Any], Any]] = None

    def identity_for(self, like: Any) -> Any:
        """The identity element, possibly shaped like ``like`` (matrices)."""
        if self.make_identity is not None:
            return self.make_identity(like)
        return self.identity_value

    def identity_test(self, value: Any) -> bool:
        if self.is_identity is not None:
            return bool(self.is_identity(value))
        try:
            return bool(value == self.identity_value)
        except Exception:  # noqa: BLE001 - foreign __eq__
            return False


class AlgebraRegistry:
    """Registry of :class:`AlgebraicStructure` keyed by (type, operator).

    Lookup walks the type's MRO so structures declared for a base class
    cover subclasses, matching :class:`~repro.concepts.modeling
    .OperationRegistry` semantics.
    """

    def __init__(self) -> None:
        self._structures: dict[tuple[type, str], AlgebraicStructure] = {}

    def declare(
        self, structure: AlgebraicStructure, check_axioms: bool = True
    ) -> AlgebraicStructure:
        if check_axioms and structure.samples:
            self.verify_axioms(structure)
        self._structures[(structure.typ, structure.op_symbol)] = structure
        return structure

    def verify_axioms(self, structure: AlgebraicStructure) -> None:
        """Sampling-based axiom check: a failing sample *refutes* the
        declaration (raises); passing samples do not prove it — proving is
        :mod:`repro.athena`'s job."""
        ops = _StructureOps(structure)
        for axiom in structure.concept.axioms():
            for sample in structure.samples:
                values = sample if isinstance(sample, tuple) else (sample,)
                if len(values) < len(axiom.variables):
                    # Recycle values for higher-arity axioms.
                    values = (values * 3)[: len(axiom.variables)]
                args = values[: len(axiom.variables)]
                try:
                    ok = axiom.predicate(ops, *args)
                except NotImplementedError:
                    continue
                if not ok:
                    raise SemanticAxiomViolation(
                        structure.concept.name, axiom.name, args
                    )

    def lookup(self, typ: type, op_symbol: str) -> Optional[AlgebraicStructure]:
        for base in typ.__mro__:
            found = self._structures.get((base, op_symbol))
            if found is not None:
                return found
        return None

    def models(self, typ: type, op_symbol: str, concept: Concept) -> bool:
        """Does ``(typ, op_symbol)`` model ``concept`` (possibly via a more
        refined declaration)?  This is Simplicissimus's applicability test:
        ``(x, +) models Monoid``."""
        s = self.lookup(typ, op_symbol)
        return s is not None and s.concept.refines_concept(concept)

    def structures(self) -> list[AlgebraicStructure]:
        return list(self._structures.values())


class _StructureOps:
    """Adapter letting concept axioms run against an AlgebraicStructure."""

    def __init__(self, s: AlgebraicStructure) -> None:
        self._s = s

    def op(self, a: Any, b: Any) -> Any:
        return self._s.apply(a, b)

    def identity(self, like: Any) -> Any:
        return self._s.identity_for(like)

    def inverse(self, a: Any) -> Any:
        if self._s.inverse is None:
            raise NotImplementedError
        return self._s.inverse(a)

    def __getattr__(self, name: str) -> Any:
        raise NotImplementedError(name)


#: Default process-wide algebra registry, pre-populated below with the
#: built-in instances from Fig. 5's table.
algebra = AlgebraRegistry()


def declare_standard_structures(registry: AlgebraRegistry) -> None:
    """Declare the Fig. 5 built-in instances (user-defined ones — strings,
    matrices, rationals — are declared by their home modules)."""
    from fractions import Fraction

    registry.declare(
        AlgebraicStructure(
            int, "+", AbelianGroup, lambda a, b: a + b,
            identity_value=0, inverse=lambda a: -a, commutative=True,
            samples=((3, 5, 7), (-2, 11, 0), (1, 1, 1)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            int, "*", Monoid, lambda a, b: a * b,
            identity_value=1, commutative=True,
            samples=((3, 5, 7), (-2, 11, 1)),
        )
    )
    # Exactly-representable samples keep float associativity honest; floats
    # are declared Monoid/Group by convention (as Fig. 5 does with f*1.0->f),
    # with the caveat living in the sample choice.
    registry.declare(
        AlgebraicStructure(
            float, "*", Group, lambda a, b: a * b,
            identity_value=1.0, inverse=lambda a: 1.0 / a, commutative=True,
            samples=((2.0, 4.0, 0.5), (8.0, 0.25, 1.0)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            float, "+", AbelianGroup, lambda a, b: a + b,
            identity_value=0.0, inverse=lambda a: -a, commutative=True,
            samples=((2.0, 4.0, 0.5), (8.0, 0.25, 0.0)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            bool, "and", Monoid, lambda a, b: a and b,
            identity_value=True, commutative=True,
            samples=((True, False, True), (False, False, True)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            bool, "or", Monoid, lambda a, b: a or b,
            identity_value=False, commutative=True,
            samples=((True, False, True), (False, False, True)),
        )
    )
    # Bitwise AND over Python's unbounded ints: the identity is the all-ones
    # pattern -1 (the role 0xFFF... plays at fixed width in Fig. 5).
    registry.declare(
        AlgebraicStructure(
            int, "&", Monoid, lambda a, b: a & b,
            identity_value=-1, commutative=True,
            samples=((0b1010, 0b0110, 0b1111), (7, 3, -1)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            int, "|", Monoid, lambda a, b: a | b,
            identity_value=0, commutative=True,
            samples=((0b1010, 0b0110, 0), (7, 3, 1)),
        )
    )
    registry.declare(
        AlgebraicStructure(
            str, "concat", Monoid, lambda a, b: a + b,
            identity_value="",
            samples=(("ab", "c", ""), ("", "xy", "z")),
        )
    )
    registry.declare(
        AlgebraicStructure(
            Fraction, "*", Group, lambda a, b: a * b,
            identity_value=Fraction(1), inverse=lambda a: 1 / a,
            commutative=True,
            samples=(
                (Fraction(2, 3), Fraction(5, 7), Fraction(1)),
                (Fraction(-4, 9), Fraction(3, 2), Fraction(11)),
            ),
        )
    )
    registry.declare(
        AlgebraicStructure(
            Fraction, "+", AbelianGroup, lambda a, b: a + b,
            identity_value=Fraction(0), inverse=lambda a: -a,
            commutative=True,
            samples=(
                (Fraction(2, 3), Fraction(5, 7), Fraction(0)),
                (Fraction(-4, 9), Fraction(3, 2), Fraction(11)),
            ),
        )
    )


declare_standard_structures(algebra)
