"""Concept archetypes (Sections 2.1 and 3.1).

"Concept archetypes ... are minimal syntactic models of concepts that can be
passed to generic functions to verify that the generic functions do not
require syntax not captured in a concept."  Given a concept, this module
*synthesizes* such a model: one fresh class per concept parameter and per
associated type, exposing exactly the operations the concept grants and
raising :class:`ArchetypeViolation` for anything else.

STLlint's *semantic* archetypes (Section 3.1) — which "emulate the behavior
of the most restrictive model of a particular concept" — are built on the
same machinery via the ``behaviors`` hook: a behavior replaces the default
stub for an operation with real (restrictive) semantics, e.g. an Input
Iterator that physically cannot be traversed twice.  See
:mod:`repro.stllint.archetype_check`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from .concept import Concept
from .errors import ArchetypeViolation, ConceptDefinitionError
from .modeling import ModelRegistry, models as default_registry
from .requirements import (
    AnyType,
    Assoc,
    AssociatedType,
    ConceptRequirement,
    Exact,
    Param,
    SameType,
    TypeExpr,
    ValidExpression,
)

#: Dunders stubbed out with violation-raisers on every archetype so that
#: using an operator the concept does not grant yields a concept-level
#: diagnostic instead of a bare TypeError.
_GUARDED_DUNDERS = (
    "__add__", "__sub__", "__mul__", "__truediv__", "__and__", "__or__",
    "__xor__", "__lt__", "__le__", "__gt__", "__ge__", "__getitem__",
    "__setitem__", "__len__", "__iter__", "__next__", "__neg__",
    "__invert__", "__contains__", "__call__",
)

_DUNDER_TO_OP = {v: k for k, v in ValidExpression.OPERATOR_DUNDER.items()}


class OpaqueValue:
    """The value of an expression whose type the concept leaves open."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<opaque>"


def _expr_key(expr: TypeExpr) -> str:
    return str(expr)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class ArchetypeSet:
    """The synthesized archetype classes for one concept.

    Attributes:
        concept: The source concept.
        classes: Mapping from type-expression rendering (``"Graph"``,
            ``"Graph::vertex_type"``) to the synthesized class.
        param_types: The classes bound to the concept's parameters, in order
            — ready to pass to :meth:`ModelRegistry.check`.
    """

    def __init__(
        self,
        concept: Concept,
        registry: Optional[ModelRegistry] = None,
        behaviors: Optional[Mapping[str, Callable]] = None,
        exact_defaults: Optional[Mapping[type, Callable[[], Any]]] = None,
    ) -> None:
        self.concept = concept
        self.registry = registry if registry is not None else default_registry
        self.behaviors = dict(behaviors or {})
        self.exact_defaults: dict[type, Callable[[], Any]] = {
            int: lambda: 0,
            float: lambda: 0.0,
            bool: lambda: False,
            str: lambda: "",
        }
        if exact_defaults:
            self.exact_defaults.update(exact_defaults)
        self.classes: dict[str, type] = {}
        self._build()
        self.param_types: tuple[type, ...] = tuple(
            self.classes[_expr_key(p)] for p in concept.params
        )

    # -- synthesis -----------------------------------------------------------

    def _collect_type_exprs(self) -> tuple[list[TypeExpr], _UnionFind]:
        exprs: dict[str, TypeExpr] = {}
        uf = _UnionFind()

        def note(e: TypeExpr) -> None:
            if isinstance(e, (Param, Assoc)):
                exprs.setdefault(_expr_key(e), e)
                if isinstance(e, Assoc):
                    note(e.base)

        for p in self.concept.params:
            note(p)
        for req in self.concept.all_requirements():
            if isinstance(req, AssociatedType):
                note(Assoc(req.of, req.name))
            elif isinstance(req, ValidExpression):
                for a in req.args:
                    note(a)
                if req.result is not None:
                    note(req.result)
            elif isinstance(req, SameType):
                note(req.a)
                note(req.b)
                uf.union(_expr_key(req.a), _expr_key(req.b))
            elif isinstance(req, ConceptRequirement):
                for a in req.args:
                    note(a)
        return list(exprs.values()), uf

    def _build(self) -> None:
        exprs, uf = self._collect_type_exprs()
        # One class per union-find representative.
        rep_to_class: dict[str, type] = {}
        for expr in exprs:
            rep = uf.find(_expr_key(expr))
            if rep not in rep_to_class:
                rep_to_class[rep] = self._make_class(rep)
            self.classes[_expr_key(expr)] = rep_to_class[rep]

        # Bind associated types as class attributes so structural resolution
        # (CheckContext.resolve) finds them.
        for req in self.concept.all_requirements():
            if isinstance(req, AssociatedType):
                owner = self.classes[_expr_key(req.of)]
                setattr(owner, req.name, self.classes[_expr_key(Assoc(req.of, req.name))])

        # Grant each valid expression on its owner class.
        for req in self.concept.all_requirements():
            if isinstance(req, ValidExpression):
                self._grant(req)

        # Nested concept requirements: recursively archetype the nested
        # concept and graft its grants onto our classes for shared exprs.
        for req in self.concept.all_requirements():
            if isinstance(req, ConceptRequirement):
                self._graft_nested(req)

    def _make_class(self, label: str) -> type:
        safe = (
            label.replace("::", "_").replace("<", "").replace(">", "")
            .replace(" ", "")
        )
        concept_name = self.concept.name

        def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
            self._archetype_state: dict[str, Any] = {}

        def __getattr__(self: Any, name: str) -> Any:
            if name.startswith("_"):
                raise AttributeError(name)
            raise ArchetypeViolation(name, concept_name)

        def __repr__(self: Any) -> str:
            return f"<archetype {label} of {concept_name}>"

        namespace: dict[str, Any] = {
            "__init__": __init__,
            "__getattr__": __getattr__,
            "__repr__": __repr__,
            "_archetype_label": label,
            "_archetype_concept": concept_name,
        }
        for dunder in _GUARDED_DUNDERS:
            namespace[dunder] = _make_violation_dunder(dunder, concept_name)
        return type(f"Archetype_{self.concept.name.replace(' ', '')}_{safe}", (), namespace)

    def _default_value(self, expr: Optional[TypeExpr]) -> Any:
        if expr is None or isinstance(expr, AnyType):
            return OpaqueValue()
        if isinstance(expr, Exact):
            maker = self.exact_defaults.get(expr.pytype)
            if maker is not None:
                return maker()
            try:
                return expr.pytype()
            except Exception:  # noqa: BLE001 - best effort default
                return OpaqueValue()
        cls = self.classes.get(_expr_key(expr))
        if cls is None:
            return OpaqueValue()
        return cls()

    def _grant(self, req: ValidExpression) -> None:
        if not req.args:
            return
        idx = min(req.owner_index, len(req.args) - 1)
        owner_expr = req.args[idx]
        owner = self.classes.get(_expr_key(owner_expr))
        lookup = req.lookup_name()
        behavior = self.behaviors.get(req.op) or self.behaviors.get(lookup)
        result_expr = req.result

        if behavior is not None:
            impl = behavior
        else:
            make_default = self._default_value

            def impl(_self: Any, *args: Any, **kwargs: Any) -> Any:
                return make_default(result_expr)

        if req.via in ("method", "operator"):
            if owner is None:
                raise ConceptDefinitionError(
                    f"archetype of {self.concept.name}: cannot place "
                    f"{req.rendering} (owner type {owner_expr} is concrete)"
                )
            setattr(owner, lookup, impl)
            # Equality/ordering grants need the reflected side sane too.
            if lookup == "__eq__":
                setattr(owner, "__ne__", lambda s, o, _i=impl: not _i(s, o))
                setattr(owner, "__hash__", lambda s: id(s))
        else:  # free function
            target = owner if owner is not None else object
            self.registry.ops.register(
                req.op, target, lambda *a, _i=impl, **kw: _i(*a, **kw)
            )

    def _graft_nested(self, req: ConceptRequirement) -> None:
        nested = req.concept
        mapping = {_expr_key(p): a for p, a in zip(nested.params, req.args)}
        for sub in nested.all_requirements():
            if isinstance(sub, ValidExpression):
                translated = _translate_expr_args(sub, mapping)
                # Only graft when every referenced type already has a class
                # here (shared exprs); otherwise the nested check covers it.
                try:
                    self._grant(translated)
                except (KeyError, ConceptDefinitionError):
                    continue
            elif isinstance(sub, AssociatedType):
                owner_expr = mapping.get(_expr_key(sub.of), sub.of)
                owner = self.classes.get(_expr_key(owner_expr))
                if owner is not None and not isinstance(
                    getattr(owner, sub.name, None), type
                ):
                    key = _expr_key(Assoc(owner_expr, sub.name))
                    cls = self.classes.get(key)
                    if cls is None:
                        cls = self._make_class(key)
                        self.classes[key] = cls
                    setattr(owner, sub.name, cls)

    # -- use ----------------------------------------------------------------

    def instance(self, param: str | TypeExpr) -> Any:
        """A fresh instance of the archetype for a parameter or associated
        type expression."""
        key = param if isinstance(param, str) else _expr_key(param)
        if key not in self.classes:
            raise KeyError(f"no archetype class for {key!r}")
        return self.classes[key]()

    def self_check(self) -> None:
        """Verify the archetypes model the concept — i.e. the concept is
        satisfiable and our synthesis is complete."""
        self.registry.check(self.concept, self.param_types).raise_if_failed(
            context=f"archetype self-check for {self.concept.name}"
        )


def _translate_expr_args(
    req: ValidExpression, mapping: Mapping[str, TypeExpr]
) -> ValidExpression:
    def tr(e: TypeExpr) -> TypeExpr:
        key = _expr_key(e)
        if key in mapping:
            return mapping[key]
        if isinstance(e, Assoc):
            return Assoc(tr(e.base), e.name)
        return e

    return ValidExpression(
        req.rendering,
        req.op,
        tuple(tr(a) for a in req.args),
        tr(req.result) if req.result is not None else None,
        req.via,
        req.owner_index,
    )


def _make_violation_dunder(dunder: str, concept_name: str) -> Callable:
    op = _DUNDER_TO_OP.get(dunder, dunder)

    def raiser(self: Any, *args: Any, **kwargs: Any) -> Any:
        raise ArchetypeViolation(op, concept_name, f"via {dunder}")

    return raiser


def make_archetypes(
    concept: Concept,
    registry: Optional[ModelRegistry] = None,
    behaviors: Optional[Mapping[str, Callable]] = None,
) -> ArchetypeSet:
    """Synthesize (and self-check) archetypes for ``concept``."""
    aset = ArchetypeSet(concept, registry, behaviors)
    aset.self_check()
    return aset


def exercise(
    algorithm: Callable,
    concept: Concept,
    make_args: Callable[[ArchetypeSet], Sequence[Any]],
    registry: Optional[ModelRegistry] = None,
    behaviors: Optional[Mapping[str, Callable]] = None,
) -> Any:
    """Run ``algorithm`` on archetype arguments.

    Returns the algorithm's result when it stays within its concept budget;
    raises :class:`ArchetypeViolation` (with the offending operation and
    concept named) when it uses syntax the concept does not grant — the
    check that in C++ requires compiling against archetype classes.
    """
    aset = make_archetypes(concept, registry, behaviors)
    args = make_args(aset)
    return algorithm(*args)
