"""Concept documentation generator (the Caramel role).

The paper's reference 17 is Caramel, "a concept representation system for
generic programming": concepts as data that tooling renders into the
requirement tables of Figs. 1-3.  With concepts first-class, documentation
is a *projection*: this module renders any concept — or a whole module's
worth — in the paper's figure style, with refinement lattices, model lists,
and the semantic/performance requirements that informal documentation
usually drops.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .concept import Concept
from .modeling import ModelRegistry, models as default_registry


def concept_figure(concept: Concept, caption: Optional[str] = None) -> str:
    """Render one concept as a Fig. 1/2/3-style table."""
    rows = concept.table()
    left_width = max([len("Expression")] + [len(r[0]) for r in rows]) + 2
    lines = [
        f"{'Expression':{left_width}s}Return Type or Description",
        "-" * (left_width + 28),
    ]
    for expr, desc in rows:
        lines.append(f"{expr:{left_width}s}{desc}")
    lines.append("-" * (left_width + 28))
    params = ", ".join(p.name for p in concept.params)
    if caption is None:
        plural = "types" if concept.is_multi_type else "Type"
        caption = (f"{plural} {params} model{'s' if not concept.is_multi_type else ''} "
                   f"{concept.name} if the above requirements are satisfied.")
    lines.append(caption)
    if concept.doc:
        lines.append(f"({concept.doc})")
    return "\n".join(lines)


def refinement_lattice(concepts: Iterable[Concept]) -> str:
    """Render the refinement edges among the given concepts as an indented
    forest (children under parents)."""
    concepts = list(concepts)
    inside = {id(c) for c in concepts}
    children: dict[int, list[Concept]] = {}
    roots: list[Concept] = []
    for c in concepts:
        parents = [p for p, _ in c.refinements() if id(p) in inside]
        if not parents:
            roots.append(c)
        for p in parents:
            children.setdefault(id(p), []).append(c)

    lines: list[str] = []
    seen: set[int] = set()

    def walk(c: Concept, depth: int) -> None:
        marker = " (revisited)" if id(c) in seen else ""
        lines.append("  " * depth + c.name + marker)
        if id(c) in seen:
            return
        seen.add(id(c))
        for child in sorted(children.get(id(c), []), key=lambda x: x.name):
            walk(child, depth + 1)

    for r in sorted(roots, key=lambda c: c.name):
        walk(r, 0)
    return "\n".join(lines)


def concept_reference(
    concepts: Iterable[Concept],
    registry: Optional[ModelRegistry] = None,
    title: str = "Concept reference",
) -> str:
    """A full reference document: lattice, per-concept figure, axioms,
    complexity guarantees, and declared models."""
    reg = registry if registry is not None else default_registry
    concepts = list(concepts)
    lines = [title, "=" * len(title), "", "Refinement lattice:", ""]
    lines.append(refinement_lattice(concepts))
    for c in concepts:
        lines.append("")
        lines.append(f"## {c.name}")
        lines.append("")
        lines.append(concept_figure(c))
        axioms = c.own_axioms()
        if axioms:
            lines.append("")
            lines.append("Semantic requirements (axioms):")
            for a in axioms:
                lines.append(f"  - {a.name}: {a.description}")
        guarantees = [
            r for r in c.own_requirements()
            if type(r).__name__ == "ComplexityGuarantee"
        ]
        if guarantees:
            lines.append("")
            lines.append("Complexity guarantees:")
            for g in guarantees:
                lines.append(f"  - {g.describe()}")
        # Models declared for the concept itself or any refinement of it
        # (a RandomAccessContainer declaration is a Container model too).
        declared = {
            m.types
            for candidate in concepts
            if candidate.refines_concept(c)
            for m in reg.declared_models(candidate)
        }
        if declared:
            names = ", ".join(sorted(
                "(" + ", ".join(t.__name__ for t in tys) + ")"
                for tys in declared
            ))
            lines.append("")
            lines.append(f"Declared models (incl. via refinement): {names}")
        if c.nominal:
            lines.append("")
            lines.append("(nominal concept: explicit declaration required)")
    return "\n".join(lines)


def standard_reference(registry: Optional[ModelRegistry] = None) -> str:
    """The reference document for every concept this library ships."""
    from . import algebra as alg
    from . import builtins as b
    from ..graphs import interfaces as gi
    from ..linalg import mtl
    from ..sequences.tree import SortedAssociativeContainer

    all_concepts = list(b.ALL_CONCEPTS) + [
        alg.Magma, alg.Semigroup, alg.Monoid, alg.Group, alg.AbelianGroup,
        alg.AdditiveAbelianGroup, alg.Ring, alg.Field, alg.VectorSpace,
        gi.GraphEdge, gi.IncidenceGraph, gi.BidirectionalGraph,
        gi.AdjacencyGraph, gi.VertexListGraph, gi.EdgeListGraph,
        gi.MutableGraph,
        mtl.DenseMatrixConcept, mtl.BandedMatrixConcept,
        mtl.DiagonalMatrixConcept,
        SortedAssociativeContainer,
    ]
    return concept_reference(
        all_concepts, registry,
        title="repro: the concept library",
    )
