"""The ``@where`` decorator: checkable where clauses on ordinary functions.

Section 2.1 surveys constraint mechanisms — CLU/Theta/Ada where clauses,
Haskell type classes, ML signatures — and asks for one that (a) groups
requirements into reusable concepts and (b) reports violations at the call
boundary.  :func:`where` is that mechanism for Python functions, and it is
**one unified API** for single- and multi-type constraints::

    @where(g=IncidenceGraph, weight=ReadablePropertyMap)
    def dijkstra(g, start, weight): ...

    @where((VectorSpace, ("v", "s")))          # multi-type: positional tuple
    def axpy(v, s, w): ...

    @where((VectorSpace, ("v", "s")), cmp=StrictWeakOrder)   # mixed
    def f(v, s, cmp): ...

Every call checks the named arguments' types against their concepts and
raises :class:`ConceptCheckError` naming the function, the argument, and the
unsatisfied requirement — never a mid-algorithm AttributeError.  Verdicts
are memoized per argument-type tuple **keyed on the registry generation**:
the steady-state cost is a set lookup, and a ``register``/``unregister`` on
the registry invalidates the site's cache instead of silently serving stale
verdicts.  Per-site hit/miss counters feed :func:`repro.runtime.stats`.

:func:`where_multi` remains as a deprecated alias of the positional-tuple
form.
"""

from __future__ import annotations

import functools
import inspect
import sys
import warnings
import weakref
from typing import Any, Callable, Optional, Sequence, Union

from ..runtime import metrics as runtime_metrics
from ..runtime.specialize import Specialization
from .concept import Concept
from .errors import ConceptCheckError
from .modeling import ModelRegistry, models as default_registry

ConstraintSpec = Union[
    tuple[Concept, Sequence[str]],
    tuple[Concept, str],
    "ModelRegistry",
]


def _normalize_constraints(
    positional: Sequence[Any],
    named: dict[str, Concept],
) -> tuple[Optional[ModelRegistry], list[tuple[Concept, tuple[str, ...]]]]:
    """Split ``where``'s positional arguments into an optional registry
    (legacy first-positional form) and (concept, params) constraint specs."""
    registry: Optional[ModelRegistry] = None
    specs: list[tuple[Concept, tuple[str, ...]]] = []
    rest = list(positional)
    if rest and isinstance(rest[0], ModelRegistry):
        registry = rest.pop(0)
    for item in rest:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise TypeError(
                "positional @where constraints must be "
                "(Concept, parameter-names) tuples; got "
                f"{item!r}"
            )
        concept, params = item
        if not isinstance(concept, Concept):
            raise TypeError(
                f"@where constraint {item!r}: first element must be a "
                f"Concept"
            )
        if isinstance(params, str):
            params = (params,)
        specs.append((concept, tuple(params)))
    for param, concept in named.items():
        specs.append((concept, (param,)))
    return registry, specs


def where(
    *constraints: Any,
    registry: Optional[ModelRegistry] = None,
    **named: Concept,
) -> Callable[[Callable], Callable]:
    """Attach concept constraints to named parameters.

    Accepts, in one decorator:

    - ``param=Concept`` keyword constraints (single-type concepts);
    - positional ``(Concept, ("a", "b"))`` tuples (multi-type concepts —
      the old ``where_multi`` spelling);
    - an optional leading :class:`ModelRegistry` positional argument or
      ``registry=`` keyword to check against a non-default registry.

    Constraint order is positional tuples first, then keywords, in the
    order written.
    """
    pos_registry, specs = _normalize_constraints(constraints, named)
    if pos_registry is not None and registry is not None:
        raise TypeError(
            "@where received two registries (positional and keyword)"
        )
    reg = pos_registry if pos_registry is not None else registry
    reg = reg if reg is not None else default_registry

    def deco(fn: Callable) -> Callable:
        sig = inspect.signature(fn)
        for concept, params in specs:
            for p in params:
                if p not in sig.parameters:
                    raise TypeError(
                        f"@where on {fn.__name__}: no parameter {p!r} "
                        f"(constraint {concept.name})"
                    )
            if len(params) != concept.arity:
                raise TypeError(
                    f"@where on {fn.__name__}: {concept.name} constrains "
                    f"{concept.arity} type(s), got {len(params)} parameter(s)"
                )
        site = runtime_metrics.WhereSiteStats(
            getattr(fn, "__qualname__", fn.__name__)
        )
        checked_ok: set[tuple[Concept, tuple[type, ...]]] = set()
        # Generation the cache was built against; a registry mutation bumps
        # the generation and the first call after it drops every memoized
        # verdict instead of serving stale ones.
        cache_gen = [-1]

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            gen = reg._generation
            if gen != cache_gen[0]:
                if checked_ok:
                    site.invalidations += 1
                checked_ok.clear()
                cache_gen[0] = gen
            bound = sig.bind(*args, **kwargs)
            for concept, params in specs:
                types = tuple(type(bound.arguments[p]) for p in params)
                key = (concept, types)
                if key in checked_ok:
                    site.hits += 1
                    continue
                site.misses += 1
                report = reg.check(concept, types)
                if not report.ok:
                    raise ConceptCheckError(
                        concept.name, types, report.failures,
                        context=(
                            f"{fn.__name__}({', '.join(params)}) — "
                            f"where {', '.join(params)} : {concept.name}"
                        ),
                    )
                checked_ok.add(key)
            return fn(*args, **kwargs)

        def specialize(*arg_types: type) -> Callable:
            """Monomorphize this @where site for ``arg_types``: check the
            constraints once and return a trampoline that calls the
            *undecorated* function directly — no per-call generation check
            or verdict lookup.  Registry mutations flip the trampoline
            back; its next call re-checks against the new model state (and
            raises :class:`ConceptCheckError` if the types no longer
            satisfy the clause).  Non-matching call shapes fall back to
            the checking wrapper."""
            key = tuple(arg_types)

            def resolve() -> Callable:
                bound = sig.bind_partial(*key)
                for concept, params in specs:
                    try:
                        types = tuple(
                            bound.arguments[p] for p in params
                        )
                    except KeyError as exc:
                        raise TypeError(
                            f"specialize({fn.__name__}): constrained "
                            f"parameter {exc.args[0]!r} not covered by "
                            f"the {len(key)} specialized argument type(s)"
                        ) from None
                    report = reg.check(concept, types)
                    if not report.ok:
                        raise ConceptCheckError(
                            concept.name, types, report.failures,
                            context=(
                                f"specialize({fn.__name__}) — where "
                                f"{', '.join(params)} : {concept.name}"
                            ),
                        )
                return fn

            spec = Specialization(
                name=f"{fn.__name__}__specialized",
                key=key,
                resolve=resolve,
                fallback=wrapper,
                registry=reg,
            )
            wrapper.__specializations__.add(spec)  # type: ignore[attr-defined]
            return spec.trampoline

        wrapper.__concept_constraints__ = tuple(specs)  # type: ignore[attr-defined]
        wrapper.__where_stats__ = site  # type: ignore[attr-defined]
        wrapper.__specializations__ = weakref.WeakSet()  # type: ignore[attr-defined]
        wrapper.specialize = specialize  # type: ignore[attr-defined]
        runtime_metrics.track_where_site(site)
        return wrapper

    return deco


def _caller_stacklevel() -> int:
    """Stacklevel that makes ``warnings.warn`` blame the first frame
    *outside* this package — the user's decorator application site —
    rather than decorator internals or re-export shims."""
    pkg_prefix = __name__.rsplit(".", 1)[0] + "."
    # sys._getframe(1) is where_multi's own frame, i.e. stacklevel 1 as
    # warnings.warn (called from where_multi) counts it.
    level = 1
    frame = sys._getframe(1)
    while frame is not None:
        mod = frame.f_globals.get("__name__", "")
        if mod != __name__ and not mod.startswith(pkg_prefix):
            return level
        level += 1
        frame = frame.f_back
    return 2


def where_multi(
    *constraints: tuple[Concept, Sequence[str]],
    registry: Optional[ModelRegistry] = None,
) -> Callable[[Callable], Callable]:
    """Deprecated alias: :func:`where` now accepts positional
    ``(Concept, params)`` tuples directly."""
    warnings.warn(
        "where_multi() is deprecated; pass (Concept, params) tuples "
        "directly to where()",
        DeprecationWarning,
        stacklevel=_caller_stacklevel(),
    )
    return where(*constraints, registry=registry)


def constraints_of(fn: Callable) -> tuple[tuple[Concept, tuple[str, ...]], ...]:
    """Introspect a @where-decorated function's declared constraints (the
    documentation-as-data story: tooling reads the same constraints the
    checker enforces)."""
    raw = getattr(fn, "__concept_constraints__", ())
    return tuple((c, tuple(p)) for c, p in raw)


def declaration_of(fn: Callable) -> str:
    """Render the function's where clause as the paper's examples do."""
    cs = constraints_of(fn)
    inner = getattr(fn, "__wrapped__", fn)
    params = ", ".join(inspect.signature(inner).parameters)
    if not cs:
        return f"{getattr(fn, '__name__', '<fn>')}({params})"
    clauses = ",\n        ".join(
        f"{', '.join(p)} : {c.name}" for c, p in cs
    )
    return f"{fn.__name__}({params})\n  where {clauses}"
