"""The ``@where`` decorator: checkable where clauses on ordinary functions.

Section 2.1 surveys constraint mechanisms — CLU/Theta/Ada where clauses,
Haskell type classes, ML signatures — and asks for one that (a) groups
requirements into reusable concepts and (b) reports violations at the call
boundary.  :func:`where` is that mechanism for Python functions::

    @where(g=IncidenceGraph, weight=ReadablePropertyMap)
    def dijkstra(g, start, weight): ...

Every call checks the named arguments' types against their concepts
(cached, so the steady-state cost is a dict lookup) and raises
:class:`ConceptCheckError` naming the function, the argument, and the
unsatisfied requirement — never a mid-algorithm AttributeError.

Multi-type constraints take a tuple of parameter names::

    @where(VectorSpace=("v", "s"))          # keyword = concept-name binding
    def axpy(v, s, w): ...

is spelled with :func:`where_multi` to keep concepts first-class values:

    @where_multi((VectorSpace, ("v", "s")))
    def axpy(v, s, w): ...
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Optional, Sequence

from .concept import Concept
from .errors import ConceptCheckError
from .modeling import ModelRegistry, models as default_registry


def where(
    _registry: Optional[ModelRegistry] = None,
    **constraints: Concept,
) -> Callable[[Callable], Callable]:
    """Attach single-type concept constraints to named parameters."""
    return where_multi(
        *((concept, (param,)) for param, concept in constraints.items()),
        registry=_registry,
    )


def where_multi(
    *constraints: tuple[Concept, Sequence[str]],
    registry: Optional[ModelRegistry] = None,
) -> Callable[[Callable], Callable]:
    """Attach constraints, each binding a concept to one or more parameter
    names (multi-type concepts bind several)."""
    reg = registry if registry is not None else default_registry

    def deco(fn: Callable) -> Callable:
        sig = inspect.signature(fn)
        for concept, params in constraints:
            for p in params:
                if p not in sig.parameters:
                    raise TypeError(
                        f"@where on {fn.__name__}: no parameter {p!r} "
                        f"(constraint {concept.name})"
                    )
            if len(params) != concept.arity:
                raise TypeError(
                    f"@where on {fn.__name__}: {concept.name} constrains "
                    f"{concept.arity} type(s), got {len(params)} parameter(s)"
                )
        checked_ok: set[tuple[int, tuple[type, ...]]] = set()

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind(*args, **kwargs)
            for concept, params in constraints:
                types = tuple(type(bound.arguments[p]) for p in params)
                key = (concept, types)
                if key in checked_ok:
                    continue
                report = reg.check(concept, types)
                if not report.ok:
                    raise ConceptCheckError(
                        concept.name, types, report.failures,
                        context=(
                            f"{fn.__name__}({', '.join(params)}) — "
                            f"where {', '.join(params)} : {concept.name}"
                        ),
                    )
                checked_ok.add(key)
            return fn(*args, **kwargs)

        wrapper.__concept_constraints__ = tuple(constraints)  # type: ignore[attr-defined]
        return wrapper

    return deco


def constraints_of(fn: Callable) -> tuple[tuple[Concept, tuple[str, ...]], ...]:
    """Introspect a @where-decorated function's declared constraints (the
    documentation-as-data story: tooling reads the same constraints the
    checker enforces)."""
    raw = getattr(fn, "__concept_constraints__", ())
    return tuple((c, tuple(p)) for c, p in raw)


def declaration_of(fn: Callable) -> str:
    """Render the function's where clause as the paper's examples do."""
    cs = constraints_of(fn)
    inner = getattr(fn, "__wrapped__", fn)
    params = ", ".join(inspect.signature(inner).parameters)
    if not cs:
        return f"{getattr(fn, '__name__', '<fn>')}({params})"
    clauses = ",\n        ".join(
        f"{', '.join(p)} : {c.name}" for c, p in cs
    )
    return f"{fn.__name__}({params})\n  where {clauses}"
