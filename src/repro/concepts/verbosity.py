"""Verbosity metrics quantifying the paper's Section 2 claims.

Three claims get numbers here:

- **Section 2.2** (associated types): emulating associated types with extra
  type parameters means "the number of type parameters in generic algorithms
  was often more than doubled".  :func:`parameter_blowup` counts type
  parameters for an algorithm signature written with member-type concepts
  vs. the one-parameter-per-associated-type emulation.

- **Section 2.3** (constraint propagation): without propagation every use of
  a concept must restate the constraints on its associated types.
  :func:`constraint_blowup` counts written constraints with and without the
  propagation closure.

- **Section 2.4** (multi-type concepts): splitting an n-deep two-type
  concept hierarchy into per-type interfaces needs ``2^n`` subtype
  constraints.  :func:`multitype_split` builds the split hierarchy
  explicitly and counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .concept import Concept
from .propagation import AlgorithmSignature, Constraint, propagate
from .requirements import Assoc, AssociatedType, ConceptRequirement, Param, TypeExpr


@dataclass(frozen=True)
class VerbosityReport:
    """Counts for one algorithm signature under two language designs."""

    algorithm: str
    with_feature: int
    without_feature: int

    @property
    def blowup(self) -> float:
        if self.with_feature == 0:
            return float(self.without_feature) if self.without_feature else 1.0
        return self.without_feature / self.with_feature


def _transitive_assoc_count(concept: Concept, max_depth: int = 6) -> int:
    """Number of distinct associated types reachable from one use of
    ``concept`` (each becomes an extra type parameter in the emulation)."""
    closure = propagate(
        [Constraint(concept, tuple(concept.params))], max_depth=max_depth
    )
    seen: set[str] = set()
    for c in closure.all_constraints():
        for arg in c.args:
            if isinstance(arg, Assoc):
                seen.add(str(arg))
    for req in concept.all_requirements():
        if isinstance(req, AssociatedType):
            seen.add(str(Assoc(req.of, req.name)))
    return len(seen)


def parameter_blowup(signature: AlgorithmSignature) -> VerbosityReport:
    """Type-parameter counts: member-type style vs. the
    parameter-per-associated-type emulation of Section 2.2.

    With member types the algorithm declares only its own parameters.
    Without them, every associated type of every constrained concept becomes
    an additional explicit parameter (the ``IncidenceGraph<Vertex, Edge,
    OutEdgeIter>`` shape of the paper's example).
    """
    base = len(signature.type_params)
    extra = 0
    counted: set[str] = set()
    for constraint in signature.where:
        for arg in constraint.args:
            key = f"{constraint.concept.name}({arg})"
            if key in counted:
                continue
            counted.add(key)
        extra += _transitive_assoc_count(constraint.concept)
    return VerbosityReport(signature.name, base, base + extra)


def constraint_blowup(signature: AlgorithmSignature) -> VerbosityReport:
    """Written-constraint counts with vs. without propagation (Section 2.3).

    With propagation the programmer writes only the declared constraints;
    without it, the full closure must be spelled out at every declaration.
    """
    written, total = signature.constraint_counts()
    return VerbosityReport(signature.name, written, total)


def build_two_type_hierarchy(depth: int) -> list[Concept]:
    """A chain of ``depth`` two-type concepts, each refining the previous —
    the Section 2.4 worst case ("if a concept hierarchy has height n, and
    places constraints on two types per concept").  Returns the chain from
    root to leaf."""
    chain: list[Concept] = []
    prev: Concept | None = None
    for level in range(depth):
        refines = [] if prev is None else [prev]
        chain.append(
            Concept(
                f"Level{level}",
                params=("A", "B"),
                refines=refines,
                doc=f"two-type concept at height {level}",
            )
        )
        prev = chain[-1]
    return chain


def split_into_interfaces(concept: Concept) -> list[str]:
    """Split a multi-type concept into per-parameter interfaces, as an
    object-oriented language forces (Section 2.4's ``VectorSpace_Vector`` /
    ``VectorSpace_Scalar``).  Returns the interface names produced for the
    whole refinement chain: each concept in the chain yields one interface
    per parameter, and — crucially — *each interface must restate the parent
    interfaces of every parameter*, which is what drives the exponential
    constraint count."""
    names = []
    chain = [concept] + concept.ancestors()
    for c in chain:
        for p in c.params:
            names.append(f"{c.name}_{p.name}")
    return names


def multitype_split(depth: int) -> VerbosityReport:
    """Constraint counts for using the leaf of a ``depth``-high two-type
    hierarchy in an algorithm.

    - With first-class multi-type concepts: **1** constraint
      (``(A, B) : Level_{depth-1}``).
    - With per-type interface splitting and no propagation: each level
      contributes interfaces for both types, and each interface's
      constraints must be restated for every combination down the chain —
      ``2^depth`` constraints, the paper's "exponential increase in the size
      of the requirement specification".
    """
    chain = build_two_type_hierarchy(depth)
    leaf = chain[-1]
    # First-class multi-type constraint count:
    with_feature = 1
    # Split-interface count: constraints needed at the use site is the number
    # of (interface, parameter-combination) pairs.  Level k's two interfaces
    # are each parameterized over both types and refine both of level k-1's
    # interfaces, so restating the leaf's requirements touches every path in
    # a binary tree of height `depth`: 2^depth.
    without_feature = 2 ** depth
    return VerbosityReport(f"use of {leaf.name}", with_feature, without_feature)


def multitype_split_with_propagation(depth: int) -> VerbosityReport:
    """Same scenario, but with constraint propagation (Section 2.4: "the
    constraint propagation extension ... ameliorates this problem").  The
    use site writes the two leaf-interface constraints; the rest is derived.
    Growth is linear in interfaces, constant at the use site."""
    chain = build_two_type_hierarchy(depth)
    leaf = chain[-1]
    return VerbosityReport(f"use of {leaf.name} (propagated)", 2, 2 * depth)


def summarize(reports: Sequence[VerbosityReport]) -> str:
    lines = [f"{'algorithm':40s} {'with':>6s} {'without':>8s} {'blowup':>7s}"]
    for r in reports:
        lines.append(
            f"{r.algorithm:40s} {r.with_feature:6d} {r.without_feature:8d} "
            f"{r.blowup:6.1f}x"
        )
    return "\n".join(lines)
