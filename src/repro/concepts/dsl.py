"""A concept description language — the paper's future work, built.

"Our future work will involve unifying the notions of syntactic, semantic,
and performance requirements on concepts into a single, cohesive syntax for
a mainstream programming language.  The initial stage of development will
involve constructing development tools — a compiler ... — for the concept
syntax."

This module is that initial stage: a small textual syntax covering all four
requirement kinds, compiled to the same first-class :class:`Concept`
objects the rest of the library consumes::

    concept GraphEdge<Edge> {
        type Edge::vertex_type
        fn source(Edge) -> Edge::vertex_type
        fn target(Edge) -> Edge::vertex_type
    }

    concept Monoid<T> refines Semigroup<T> {
        fn identity(T) -> T
        axiom right_identity(a): op(a, identity(a)) == a
        complexity op: O(1)
    }

Grammar (line oriented, ``#`` comments):

- ``type P::name``                       associated type
- ``P::a == Q::b``                       same-type constraint
- ``X models Name`` / ``(X, Y) models Name``   nested concept requirement
- ``fn name(args) -> R``                 free-function valid expression
- ``method name(args) -> R``             method valid expression
- ``op SYM (args) -> R``                 operator valid expression
- ``axiom name(vars): <expr>``           semantic axiom; the expression is
  compiled with variables and concept operations (``op``, ``identity``, ...)
  in scope, evaluated through the model's ops namespace
- ``complexity op: O(...)``              performance requirement
- ``nominal``                            require explicit declaration

Type expressions: parameter names, ``P::assoc`` chains, the Python builtins
``int``/``bool``/``float``/``str``, and ``?`` for "don't care".
"""

from __future__ import annotations

import re
from typing import Mapping, Optional, Sequence

from .complexity import parse as parse_bigo
from .concept import Concept
from .errors import ConceptDefinitionError
from .requirements import (
    AnyType,
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    ConceptRequirement,
    Exact,
    Param,
    Requirement,
    SameType,
    SemanticAxiom,
    TypeExpr,
    function,
    method,
    operator,
)

_BUILTIN_TYPES = {"int": int, "bool": bool, "float": float, "str": str}

_HEADER = re.compile(
    r"^concept\s+(?P<name>[\w ]+?)\s*<\s*(?P<params>[\w\s,]+)\s*>"
    r"(?:\s+refines\s+(?P<refines>.+?))?\s*\{$"
)
_REFINE = re.compile(r"([\w ]+?)\s*<\s*([\w\s,:]+)\s*>")
_TYPE = re.compile(r"^type\s+(\w+)::(\w+)$")
_SAME = re.compile(r"^(\S+)\s*==\s*(\S+)$")
_MODELS = re.compile(r"^\(?\s*([\w:,\s]+?)\s*\)?\s+models\s+([\w ]+)$")
_FN = re.compile(r"^(fn|method)\s+(\w+)\s*\(\s*([^)]*)\s*\)(?:\s*->\s*(\S+))?$")
_OP = re.compile(r"^op\s+(\S+)\s*\(\s*([^)]*)\s*\)(?:\s*->\s*(\S+))?$")
_AXIOM = re.compile(r"^axiom\s+(\w+)\s*\(\s*([^)]*)\s*\)\s*:\s*(.+)$")
_COMPLEXITY = re.compile(r"^complexity\s+(\w+)\s*:\s*(.+)$")


class ConceptSyntaxError(ConceptDefinitionError):
    def __init__(self, line_no: int, line: str, why: str) -> None:
        super().__init__(f"line {line_no}: {why}\n    {line}")
        self.line_no = line_no


def _parse_type_expr(text: str, params: set[str], line_no: int,
                     line: str) -> TypeExpr:
    text = text.strip()
    if text == "?":
        return AnyType()
    parts = text.split("::")
    head = parts[0]
    if head in _BUILTIN_TYPES:
        if len(parts) > 1:
            raise ConceptSyntaxError(line_no, line,
                                     f"builtin {head} has no associated types")
        return Exact(_BUILTIN_TYPES[head])
    if head not in params:
        raise ConceptSyntaxError(
            line_no, line,
            f"unknown type name {head!r} (parameters: {sorted(params)})"
        )
    expr: TypeExpr = Param(head)
    for name in parts[1:]:
        expr = Assoc(expr, name)
    return expr


def _compile_axiom(name: str, variables: Sequence[str], body: str,
                   line_no: int, line: str) -> SemanticAxiom:
    """Compile the axiom expression to a predicate over (ops, *variables).

    Free names other than the variables resolve to concept operations via
    the ops namespace — ``op(a, identity(a)) == a`` works for any model.
    The source text is trusted (it is concept-library code, not user data).
    """
    try:
        code = compile(body, f"<axiom {name}>", "eval")
    except SyntaxError as exc:
        raise ConceptSyntaxError(line_no, line, f"bad axiom expression: {exc}")

    variables = tuple(variables)

    def predicate(ops, *values):
        env = dict(zip(variables, values))

        class _Namespace(dict):
            def __missing__(self, key):
                return ops[key]

        return bool(eval(code, {"__builtins__": {}}, _Namespace(env)))

    return SemanticAxiom(name, variables, predicate, description=body)


def parse_concepts(
    source: str,
    env: Optional[Mapping[str, Concept]] = None,
) -> dict[str, Concept]:
    """Parse every ``concept`` block in ``source``.

    ``env`` supplies previously defined concepts referenced by ``refines``
    or ``models`` clauses; concepts defined earlier in the same source are
    visible to later ones.
    """
    known: dict[str, Concept] = dict(env or {})
    out: dict[str, Concept] = {}

    lines = source.splitlines()
    i = 0
    while i < len(lines):
        raw = lines[i]
        line = raw.split("#", 1)[0].strip()
        i += 1
        if not line:
            continue
        m = _HEADER.match(line)
        if m is None:
            raise ConceptSyntaxError(i, raw, "expected 'concept Name<...> {'")
        name = m.group("name").strip()
        params = [p.strip() for p in m.group("params").split(",") if p.strip()]
        param_set = set(params)

        refines: list = []
        if m.group("refines"):
            for rm in _REFINE.finditer(m.group("refines")):
                parent_name = rm.group(1).strip()
                parent = known.get(parent_name)
                if parent is None:
                    raise ConceptSyntaxError(
                        i, raw, f"unknown refined concept {parent_name!r}"
                    )
                args = tuple(
                    _parse_type_expr(a, param_set, i, raw)
                    for a in rm.group(2).split(",")
                )
                refines.append((parent, args))

        requirements: list[Requirement] = []
        nominal = False
        while i < len(lines):
            raw = lines[i]
            body_line = raw.split("#", 1)[0].strip()
            i += 1
            if not body_line:
                continue
            if body_line == "}":
                break
            requirements_before = len(requirements)
            if body_line == "nominal":
                nominal = True
                continue
            tm = _TYPE.match(body_line)
            if tm:
                owner, assoc = tm.groups()
                if owner not in param_set:
                    raise ConceptSyntaxError(i, raw, f"unknown parameter {owner!r}")
                requirements.append(AssociatedType(assoc, Param(owner)))
                continue
            fm = _FN.match(body_line)
            if fm:
                kind, fname, args_text, result = fm.groups()
                args = tuple(
                    _parse_type_expr(a, param_set, i, raw)
                    for a in args_text.split(",") if a.strip()
                )
                res = (_parse_type_expr(result, param_set, i, raw)
                       if result else None)
                rendering = f"{fname}({args_text.strip()})"
                maker = method if kind == "method" else function
                requirements.append(maker(rendering, fname, args, res))
                continue
            om = _OP.match(body_line)
            if om:
                sym, args_text, result = om.groups()
                args = tuple(
                    _parse_type_expr(a, param_set, i, raw)
                    for a in args_text.split(",") if a.strip()
                )
                res = (_parse_type_expr(result, param_set, i, raw)
                       if result else None)
                requirements.append(
                    operator(f"a {sym} b", sym, args, res)
                )
                continue
            am = _AXIOM.match(body_line)
            if am:
                aname, vars_text, body = am.groups()
                variables = [v.strip() for v in vars_text.split(",")
                             if v.strip()]
                requirements.append(
                    _compile_axiom(aname, variables, body.strip(), i, raw)
                )
                continue
            cm = _COMPLEXITY.match(body_line)
            if cm:
                opname, bound = cm.groups()
                requirements.append(
                    ComplexityGuarantee(opname, parse_bigo(bound.strip()))
                )
                continue
            mm = _MODELS.match(body_line)
            if mm:
                exprs_text, cname = mm.groups()
                target = known.get(cname.strip())
                if target is None:
                    raise ConceptSyntaxError(
                        i, raw, f"unknown concept {cname.strip()!r} in models clause"
                    )
                exprs = tuple(
                    _parse_type_expr(e, param_set, i, raw)
                    for e in exprs_text.split(",")
                )
                requirements.append(ConceptRequirement(target, exprs))
                continue
            sm = _SAME.match(body_line)
            if sm:
                a = _parse_type_expr(sm.group(1), param_set, i, raw)
                b = _parse_type_expr(sm.group(2), param_set, i, raw)
                requirements.append(SameType(a, b))
                continue
            assert len(requirements) == requirements_before
            raise ConceptSyntaxError(i, raw, "unrecognized requirement")
        else:
            raise ConceptSyntaxError(i, "<eof>", f"unterminated concept {name}")

        concept = Concept(name, params=params, refines=refines,
                          requirements=requirements, nominal=nominal)
        known[name] = concept
        out[name] = concept
    return out


def parse_concept(source: str,
                  env: Optional[Mapping[str, Concept]] = None) -> Concept:
    """Parse exactly one concept block."""
    parsed = parse_concepts(source, env)
    if len(parsed) != 1:
        raise ConceptDefinitionError(
            f"expected exactly one concept, found {len(parsed)}"
        )
    return next(iter(parsed.values()))
