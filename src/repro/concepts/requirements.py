"""Requirement kinds that make up a concept.

Section 2 of the paper: "A concept consists of four different kinds of
requirements: associated types, function signatures, semantic constraints,
and complexity guarantees."  This module defines one class per kind, plus the
small *type-expression* language used to talk about concept parameters and
their associated types (``Graph::vertex_type`` and friends from Figs. 1-2),
and the same-type constraints of Section 2.2
(``out_edge_iterator::value_type == edge_type``).

Requirements are pure descriptions.  Checking them against concrete Python
types is the job of :mod:`repro.concepts.modeling`, which supplies a
:class:`CheckContext`; each requirement implements ``check(ctx)`` returning a
list of :class:`~repro.concepts.errors.RequirementFailure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from .errors import ConceptDefinitionError, RequirementFailure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .complexity import BigO
    from .concept import Concept


# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


class TypeExpr:
    """A symbolic reference to a type inside a concept definition."""

    def assoc(self, name: str) -> "Assoc":
        """Project an associated type: ``Param('G').assoc('vertex_type')``."""
        return Assoc(self, name)

    def free_params(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Param(TypeExpr):
    """A concept type parameter, e.g. the ``Graph`` in Fig. 2."""

    name: str

    def free_params(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Assoc(TypeExpr):
    """An associated-type projection, e.g. ``Graph::vertex_type``."""

    base: TypeExpr
    name: str

    def free_params(self) -> set[str]:
        return self.base.free_params()

    def __str__(self) -> str:
        return f"{self.base}::{self.name}"


@dataclass(frozen=True)
class Exact(TypeExpr):
    """A concrete Python type appearing in a requirement (e.g. ``int`` as the
    return type of ``out_degree``)."""

    pytype: type

    def free_params(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return self.pytype.__name__


@dataclass(frozen=True)
class AnyType(TypeExpr):
    """An unconstrained placeholder (requirements that only need existence)."""

    def free_params(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "<any>"


# ---------------------------------------------------------------------------
# Requirements
# ---------------------------------------------------------------------------


class Requirement:
    """Base class of the four requirement kinds (plus same-type constraints
    and nested concept requirements, which the paper folds into "associated
    types ... and places constraints on them")."""

    def describe(self) -> str:
        raise NotImplementedError

    def check(self, ctx: "CheckContextProtocol") -> list[RequirementFailure]:
        raise NotImplementedError

    def free_params(self) -> set[str]:
        raise NotImplementedError


class CheckContextProtocol:
    """The interface requirements use to interrogate a candidate binding.

    Implemented by :class:`repro.concepts.modeling.CheckContext`; declared
    here so requirement classes stay import-cycle free.
    """

    concept_name: str = "<unnamed>"

    def resolve(self, expr: TypeExpr) -> Optional[type]:
        raise NotImplementedError

    def find_operation(
        self, name: str, owner: Optional[type], via: str
    ) -> Optional[Callable]:
        raise NotImplementedError

    def subcheck(
        self, concept: "Concept", args: Sequence[Optional[type]]
    ) -> list[RequirementFailure]:
        raise NotImplementedError


@dataclass(frozen=True)
class AssociatedType(Requirement):
    """Requires that a parameter expose an associated type.

    ``AssociatedType('vertex_type', of=Param('Graph'))`` renders as
    ``Graph::vertex_type`` and is satisfied when the modeling type (or its
    concept map) binds a type to that name.
    """

    name: str
    of: Param
    description: str = ""

    def describe(self) -> str:
        return f"associated type {self.of}::{self.name}"

    def free_params(self) -> set[str]:
        return {self.of.name}

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        resolved = ctx.resolve(Assoc(self.of, self.name))
        if resolved is None:
            return [
                RequirementFailure(
                    self.describe(),
                    f"no type bound to '{self.name}' (neither a class attribute "
                    f"nor a concept-map binding provides it)",
                    ctx.concept_name,
                )
            ]
        return []


@dataclass(frozen=True)
class ValidExpression(Requirement):
    """A function-signature / valid-expression requirement.

    The paper allows these "expressed as valid expressions, which specify
    operator and function invocations that must be supported".  ``via``
    selects the lookup discipline:

    - ``"method"``   — a method on the first argument's type (``e.source()``)
    - ``"function"`` — a free function found in the operations registry or a
      concept map (``source(e)``, ``out_edges(v, g)``), mirroring C++ ADL
    - ``"operator"`` — a Python dunder (``"+"`` → ``__add__``), used by the
      algebraic concepts of Fig. 5
    """

    rendering: str
    op: str
    args: tuple[TypeExpr, ...]
    result: Optional[TypeExpr] = None
    via: str = "function"
    owner_index: int = 0

    OPERATOR_DUNDER = {
        "+": "__add__",
        "*": "__mul__",
        "-": "__sub__",
        "/": "__truediv__",
        "&": "__and__",
        "|": "__or__",
        "^": "__xor__",
        "<": "__lt__",
        "<=": "__le__",
        "==": "__eq__",
        "!=": "__ne__",
        ">": "__gt__",
        ">=": "__ge__",
        "[]": "__getitem__",
        "len": "__len__",
        "iter": "__iter__",
        "next": "__next__",
        "neg": "__neg__",
        "invert": "__invert__",
        "call": "__call__",
    }

    def describe(self) -> str:
        if self.result is not None:
            return f"{self.rendering} -> {self.result}"
        return self.rendering

    def free_params(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.free_params()
        if self.result is not None:
            out |= self.result.free_params()
        return out

    def lookup_name(self) -> str:
        """The attribute name actually searched for on the owner type."""
        if self.via == "operator":
            try:
                return self.OPERATOR_DUNDER[self.op]
            except KeyError:
                raise ConceptDefinitionError(
                    f"unknown operator '{self.op}' in valid expression "
                    f"'{self.rendering}'"
                ) from None
        return self.op

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        if not self.args:
            owner: Optional[type] = None
        else:
            idx = min(self.owner_index, len(self.args) - 1)
            owner = ctx.resolve(self.args[idx])
            if owner is None:
                return [
                    RequirementFailure(
                        self.describe(),
                        f"cannot resolve argument type {self.args[idx]}",
                        ctx.concept_name,
                    )
                ]
        found = ctx.find_operation(self.lookup_name(), owner, self.via)
        if found is None:
            where = owner.__name__ if owner is not None else "<no owner>"
            return [
                RequirementFailure(
                    self.describe(),
                    f"no {self.via} '{self.op}' available for {where}",
                    ctx.concept_name,
                )
            ]
        return []


@dataclass(frozen=True)
class SameType(Requirement):
    """``a == b`` between type expressions (Fig. 2:
    ``out_edge_iterator::value_type == edge_type``)."""

    a: TypeExpr
    b: TypeExpr

    def describe(self) -> str:
        return f"{self.a} == {self.b}"

    def free_params(self) -> set[str]:
        return self.a.free_params() | self.b.free_params()

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        ta = ctx.resolve(self.a)
        tb = ctx.resolve(self.b)
        if ta is None or tb is None:
            missing = self.a if ta is None else self.b
            return [
                RequirementFailure(
                    self.describe(),
                    f"cannot resolve {missing}",
                    ctx.concept_name,
                )
            ]
        if ta is not tb:
            return [
                RequirementFailure(
                    self.describe(),
                    f"{self.a} is {ta.__name__} but {self.b} is {tb.__name__}",
                    ctx.concept_name,
                )
            ]
        return []


@dataclass(frozen=True)
class ConceptRequirement(Requirement):
    """``expr models SomeConcept`` — a nested modeling requirement, e.g.
    Fig. 2's ``edge_type models Graph Edge``.  Also the representation of
    refinement after elaboration."""

    concept: "Concept"
    args: tuple[TypeExpr, ...]

    def describe(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"({rendered}) models {self.concept.name}"

    def free_params(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.free_params()
        return out

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        resolved = [ctx.resolve(a) for a in self.args]
        if any(r is None for r in resolved):
            missing = [str(a) for a, r in zip(self.args, resolved) if r is None]
            return [
                RequirementFailure(
                    self.describe(),
                    f"cannot resolve {', '.join(missing)}",
                    ctx.concept_name,
                )
            ]
        return ctx.subcheck(self.concept, resolved)


@dataclass(frozen=True)
class SemanticAxiom(Requirement):
    """A semantic constraint, testable on concrete values.

    ``predicate`` receives one value per entry in ``variables`` (drawn from a
    model-supplied sampler) plus an ``ops`` namespace resolving the concept's
    operations for the binding, and returns True when the axiom holds.

    Syntactic conformance checks skip axioms (they are *semantic*); they are
    exercised by :func:`repro.concepts.modeling.check_semantics` and by the
    STLlint/Athena layers.
    """

    name: str
    variables: tuple[str, ...]
    predicate: Callable[..., bool]
    description: str = ""

    def describe(self) -> str:
        return f"axiom {self.name}" + (f": {self.description}" if self.description else "")

    def free_params(self) -> set[str]:
        return set()

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        return []  # semantic: not part of the syntactic structural check


@dataclass(frozen=True)
class ComplexityGuarantee(Requirement):
    """A performance requirement: ``operation`` must run within ``bound``.

    These are the "complexity guarantees" of Section 2 and the performance
    constraints organizing the algorithm concept taxonomies of Section 4.
    Like axioms they are not structurally checkable; the taxonomy layer and
    the benchmark harness consume them.
    """

    operation: str
    bound: "BigO"
    variables: str = "n"
    amortized: bool = False

    def describe(self) -> str:
        kind = "amortized " if self.amortized else ""
        return f"{self.operation} in {kind}{self.bound}"

    def free_params(self) -> set[str]:
        return set()

    def check(self, ctx: CheckContextProtocol) -> list[RequirementFailure]:
        return []  # performance requirement: consumed by the taxonomy layer


def method(
    rendering: str,
    op: str,
    args: Sequence[TypeExpr],
    result: Optional[TypeExpr] = None,
) -> ValidExpression:
    """Shorthand for a method-style valid expression."""
    return ValidExpression(rendering, op, tuple(args), result, via="method")


def function(
    rendering: str,
    op: str,
    args: Sequence[TypeExpr],
    result: Optional[TypeExpr] = None,
    owner_index: int = 0,
) -> ValidExpression:
    """Shorthand for a free-function valid expression (ADL-style lookup)."""
    return ValidExpression(
        rendering, op, tuple(args), result, via="function", owner_index=owner_index
    )


def operator(
    rendering: str,
    op: str,
    args: Sequence[TypeExpr],
    result: Optional[TypeExpr] = None,
) -> ValidExpression:
    """Shorthand for an operator valid expression (``+``, ``<``, ...)."""
    return ValidExpression(rendering, op, tuple(args), result, via="operator")
