"""First-class concept objects.

"Following the terminology of Stepanov and Austern, we adopt the term
*concept* to mean the formalization of an abstraction as a set of
requirements on a type (or on a set of types)."  A :class:`Concept` here is a
real runtime value: it can be refined, queried, checked against types,
used to constrain overloads, turned into an archetype, and organized into a
taxonomy — the first-class treatment the paper argues languages should
provide.

Multi-type concepts (Section 2.4, the Vector Space of Fig. 3) are simply
concepts with more than one parameter.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from .errors import ConceptDefinitionError
from .requirements import (
    AnyType,
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    ConceptRequirement,
    Exact,
    Param,
    Requirement,
    SameType,
    SemanticAxiom,
    TypeExpr,
    ValidExpression,
)

RefinementSpec = Union["Concept", tuple["Concept", Sequence[TypeExpr]]]


def substitute(expr: TypeExpr, mapping: dict[str, TypeExpr]) -> TypeExpr:
    """Rewrite parameter references in a type expression.

    Used when elaborating refinement: a parent concept's requirements talk
    about the parent's parameters, which the child binds to its own
    expressions.
    """
    if isinstance(expr, Param):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Assoc):
        return Assoc(substitute(expr.base, mapping), expr.name)
    return expr


def substitute_requirement(
    req: Requirement, mapping: dict[str, TypeExpr]
) -> Requirement:
    """Apply :func:`substitute` across every type expression in ``req``."""
    if isinstance(req, AssociatedType):
        new_of = substitute(req.of, mapping)
        if not isinstance(new_of, Param):
            # The owner became a projection; re-express as a nested
            # associated-type requirement via SameType existence. We keep it
            # simple: require resolvability through a SameType with itself.
            return SameType(Assoc(new_of, req.name), Assoc(new_of, req.name))
        return AssociatedType(req.name, new_of, req.description)
    if isinstance(req, ValidExpression):
        return ValidExpression(
            req.rendering,
            req.op,
            tuple(substitute(a, mapping) for a in req.args),
            substitute(req.result, mapping) if req.result is not None else None,
            req.via,
            req.owner_index,
        )
    if isinstance(req, SameType):
        return SameType(substitute(req.a, mapping), substitute(req.b, mapping))
    if isinstance(req, ConceptRequirement):
        return ConceptRequirement(
            req.concept, tuple(substitute(a, mapping) for a in req.args)
        )
    # Axioms and complexity guarantees carry no type expressions.
    return req


class Concept:
    """A named set of requirements over one or more type parameters.

    Args:
        name: Human-readable concept name (``"Incidence Graph"``).
        params: Parameter names; one for single-type concepts, several for
            multi-type concepts like Vector Space.
        refines: Concepts whose requirements this concept incorporates.
            Each entry is either a concept (parameters matched positionally)
            or ``(concept, arg_exprs)`` binding the parent's parameters to
            arbitrary type expressions over this concept's parameters.
        requirements: The concept's own requirements.
        doc: Documentation string, carried into taxonomy documents.
        nominal: When True, conformance requires an explicit concept-map
            declaration (Haskell-type-class style): structural checking is
            meaningless for concepts whose content is a semantic *state*
            property (a SortedRange looks exactly like any other range).
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str] = ("T",),
        refines: Sequence[RefinementSpec] = (),
        requirements: Sequence[Requirement] = (),
        doc: str = "",
        nominal: bool = False,
    ) -> None:
        if not params:
            raise ConceptDefinitionError(f"concept {name} must have >= 1 parameter")
        if len(set(params)) != len(params):
            raise ConceptDefinitionError(f"concept {name} has duplicate parameters")
        self.name = name
        self.params: tuple[Param, ...] = tuple(Param(p) for p in params)
        self.doc = doc
        self.nominal = nominal
        self._refines: list[tuple[Concept, tuple[TypeExpr, ...]]] = []
        for spec in refines:
            if isinstance(spec, Concept):
                parent, args = spec, tuple(self.params[: len(spec.params)])
                if len(args) != len(parent.params):
                    raise ConceptDefinitionError(
                        f"{name}: cannot positionally refine {parent.name}; "
                        f"arities differ ({len(self.params)} vs {len(parent.params)})"
                    )
            else:
                parent, raw_args = spec
                args = tuple(raw_args)
                if len(args) != len(parent.params):
                    raise ConceptDefinitionError(
                        f"{name}: refinement of {parent.name} binds {len(args)} "
                        f"arguments, expected {len(parent.params)}"
                    )
            self._refines.append((parent, args))
        self.requirements: tuple[Requirement, ...] = tuple(requirements)
        self._validate()

    # -- structure ---------------------------------------------------------

    def _validate(self) -> None:
        param_names = {p.name for p in self.params}
        for req in self.requirements:
            unknown = req.free_params() - param_names
            if unknown:
                raise ConceptDefinitionError(
                    f"concept {self.name}: requirement '{req.describe()}' "
                    f"references unknown parameter(s) {sorted(unknown)}"
                )
        seen: set[int] = {id(self)}

        def walk(c: Concept) -> None:
            for parent, _args in c._refines:
                if id(parent) in seen and parent is self:
                    raise ConceptDefinitionError(
                        f"concept {self.name}: circular refinement"
                    )
                if id(parent) not in seen:
                    seen.add(id(parent))
                    walk(parent)

        walk(self)

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def is_multi_type(self) -> bool:
        return self.arity > 1

    def refinements(self) -> tuple[tuple["Concept", tuple[TypeExpr, ...]], ...]:
        """Direct parents with their argument bindings."""
        return tuple(self._refines)

    def ancestors(self) -> list["Concept"]:
        """All transitively refined concepts (no duplicates, preorder)."""
        out: list[Concept] = []
        seen: set[int] = set()

        def walk(c: Concept) -> None:
            for parent, _ in c._refines:
                if id(parent) not in seen:
                    seen.add(id(parent))
                    out.append(parent)
                    walk(parent)

        walk(self)
        return out

    def refines_concept(self, other: "Concept") -> bool:
        """True iff ``self`` is ``other`` or transitively refines it."""
        if self is other:
            return True
        return any(p is other for p in self.ancestors())

    # -- requirement elaboration --------------------------------------------

    def own_requirements(self) -> tuple[Requirement, ...]:
        return self.requirements

    def refinement_requirements(self) -> tuple[ConceptRequirement, ...]:
        """Direct refinements expressed as nested concept requirements."""
        return tuple(
            ConceptRequirement(parent, args) for parent, args in self._refines
        )

    def all_requirements(self) -> tuple[Requirement, ...]:
        """Own requirements plus *flattened* requirements inherited through
        refinement, with parent parameters substituted.

        This is the closure a compiler would compute; user code only writes
        the concept, exactly the economy Section 2.3 argues for.
        """
        out: list[Requirement] = []

        def walk(concept: Concept, mapping: dict[str, TypeExpr]) -> None:
            for parent, args in concept._refines:
                sub_args = tuple(substitute(a, mapping) for a in args)
                parent_map = {
                    p.name: a for p, a in zip(parent.params, sub_args)
                }
                walk(parent, parent_map)
            for req in concept.requirements:
                out.append(substitute_requirement(req, mapping))

        walk(self, {p.name: p for p in self.params})
        # Deduplicate while preserving order (diamond refinement).
        seen: set[str] = set()
        unique: list[Requirement] = []
        for req in out:
            key = req.describe()
            if key not in seen:
                seen.add(key)
                unique.append(req)
        return tuple(unique)

    def associated_types(self) -> tuple[AssociatedType, ...]:
        return tuple(
            r for r in self.all_requirements() if isinstance(r, AssociatedType)
        )

    def valid_expressions(self) -> tuple[ValidExpression, ...]:
        return tuple(
            r for r in self.all_requirements() if isinstance(r, ValidExpression)
        )

    def axioms(self) -> tuple[SemanticAxiom, ...]:
        return tuple(
            r for r in self.all_requirements() if isinstance(r, SemanticAxiom)
        )

    def own_axioms(self) -> tuple[SemanticAxiom, ...]:
        """Axioms stated by this concept itself, excluding inherited ones —
        the set ``check_semantics`` tests (inherited axioms are exercised
        when the refined concepts' own models are checked)."""
        return tuple(
            r for r in self.requirements if isinstance(r, SemanticAxiom)
        )

    def complexity_guarantees(self) -> tuple[ComplexityGuarantee, ...]:
        return tuple(
            r for r in self.all_requirements() if isinstance(r, ComplexityGuarantee)
        )

    def is_syntactic(self) -> bool:
        """Per Section 2: "A syntactic concept consists of just associated
        types and function signatures"."""
        return not self.axioms() and not self.complexity_guarantees()

    # -- presentation --------------------------------------------------------

    def table(self, include_inherited: bool = False) -> list[tuple[str, str]]:
        """Render the concept as (expression, description) rows, in the
        style of the paper's Figs. 1-3."""
        rows: list[tuple[str, str]] = []
        reqs = self.all_requirements() if include_inherited else (
            self.refinement_requirements() + self.requirements
        )
        for req in reqs:
            if isinstance(req, AssociatedType):
                desc = req.description or f"Associated {req.name.replace('_', ' ')}"
                rows.append((f"{req.of}::{req.name}", desc))
            elif isinstance(req, ValidExpression):
                rows.append(
                    (req.rendering, str(req.result) if req.result else "")
                )
            elif isinstance(req, SameType):
                rows.append((f"{req.a} == {req.b}", ""))
            elif isinstance(req, ConceptRequirement):
                rendered = ", ".join(str(a) for a in req.args)
                rows.append((f"{rendered} models {req.concept.name}", ""))
            elif isinstance(req, SemanticAxiom):
                rows.append((f"axiom {req.name}", req.description))
            elif isinstance(req, ComplexityGuarantee):
                rows.append((req.operation, str(req.bound)))
        return rows

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.params)
        return f"Concept({self.name}<{names}>)"


def concept(
    name: str,
    params: Sequence[str] = ("T",),
    refines: Sequence[RefinementSpec] = (),
    requirements: Sequence[Requirement] = (),
    doc: str = "",
) -> Concept:
    """Convenience constructor mirroring a future ``concept`` declaration."""
    return Concept(name, params, refines, requirements, doc)
