"""``python -m repro`` — library self-check and inventory.

Prints the system inventory, runs one fast end-to-end exercise per system,
and reports pass/fail — a smoke check for fresh installs.
"""

from __future__ import annotations

import sys


def _check_concepts() -> str:
    from repro.concepts import check_concept
    from repro.graphs import Edge, GraphEdge

    assert check_concept(GraphEdge, Edge).ok
    return "Fig. 1 Graph Edge conformance"


def _check_sequences() -> str:
    from repro.sequences import Vector
    from repro.sequences.algorithms import is_sorted, sort

    v = Vector([3, 1, 2])
    sort(v)
    assert is_sorted(v.begin(), v.end())
    return "concept-dispatched sort"


def _check_stllint() -> str:
    from repro.stllint import MSG_SINGULAR_DEREF, check_source

    report = check_source('''
def f(v: "vector"):
    it = v.begin()
    v.erase(it)
    x = it.deref()
''')
    assert any(d.message == MSG_SINGULAR_DEREF for d in report.warnings)
    return "Fig. 4 invalidation warning"


def _check_simplicissimus() -> str:
    from repro.simplicissimus import BinOp, Const, Var, simplify

    assert simplify(BinOp("*", Var("x"), Const(1)), {"x": int}).expr == Var("x")
    return "Fig. 5 Monoid rewrite"


def _check_athena() -> str:
    from repro.athena import OrderSig, prove_equivalence_properties

    pf, theorems = prove_equivalence_properties(OrderSig("<"))
    assert len(theorems) == 3
    return "Fig. 6 derived theorems"


def _check_distributed() -> str:
    from repro.distributed.algorithms import run_chang_roberts

    assert run_chang_roberts(8).consensus() == 7
    return "ring leader election"


def _check_parallel() -> str:
    import numpy as np

    from repro.parallel import Machine, parallel_sum

    m = Machine()
    assert parallel_sum(np.arange(100.0), m) == 4950
    assert m.log.parallelism > 1
    return "guarded tree reduction"


CHECKS = [
    ("concepts", _check_concepts),
    ("sequences", _check_sequences),
    ("stllint", _check_stllint),
    ("simplicissimus", _check_simplicissimus),
    ("athena", _check_athena),
    ("distributed", _check_distributed),
    ("parallel", _check_parallel),
]


def main() -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of "
          f"'Generic Programming and High-Performance Libraries' (2004)")
    print(repro.__doc__.split("Subpackages", 1)[0].strip())
    print()
    failures = 0
    for name, check in CHECKS:
        try:
            detail = check()
            print(f"  [ok]   repro.{name:15s} {detail}")
        except Exception as exc:  # noqa: BLE001 - smoke check reporting
            failures += 1
            print(f"  [FAIL] repro.{name:15s} {exc}")
    print()
    if failures:
        print(f"{failures} subsystem check(s) FAILED")
        return 1
    print("all subsystem checks passed; run `pytest tests/` for the full "
          "suite and `pytest benchmarks/ --benchmark-only` to regenerate "
          "every figure/table")
    return 0


if __name__ == "__main__":
    sys.exit(main())
