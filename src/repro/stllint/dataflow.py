"""Worklist dataflow fixpoint engine over the STLlint abstract domain.

:class:`FixpointChecker` is a drop-in replacement for the recursive
:class:`~repro.stllint.interpreter.Checker`: same abstract domain, same
transfer functions (it *is* a ``Checker`` subclass and reuses
``_eval``/``_exec_stmt``/``_refine``/the container and iterator
operations verbatim), but control flow runs over the explicit CFG from
:mod:`repro.stllint.cfg` instead of bounded re-execution:

- per-edge out-states; a block's in-state is the join over its incoming
  edges (exactly the legacy branch join, but uniform);
- at loop heads the in-state additionally joins with everything seen at
  that head before (the lattice-ascent / widening point) — since every
  CFG cycle passes through a loop head and the domain modulo mutation
  epochs has finite height, iteration reaches a true fixpoint with no
  ``MAX_LOOP_ITERATIONS`` cap;
- convergence is detected with *epoch-insensitive* structural state
  signatures: the mutation epoch is the one unbounded counter in the
  domain, and nothing downstream observes its absolute value (only
  "changed since" comparisons, which stabilize), so excluding it turns
  an infinite ascending chain into a finite one;
- calls to same-module functions use memoized input→output summaries
  (:mod:`repro.stllint.summaries`) instead of bounded inlining, so
  call-chain depth no longer loses findings.

A safety cap on total block executions backstops the termination
argument; if it ever fires the engine says so (``LINT-UNSTABLE-LOOP``
note + ``stllint.loop_bound`` trace event) instead of silently
under-approximating.
"""

from __future__ import annotations

import ast
import heapq
from typing import Any, Optional

from ..trace import core as _trace
from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    EpochSnapshot,
    Position,
    Validity,
    join_values,
)
from .cfg import lower_function
from .interpreter import Checker, Env
from .ir import (
    BasicBlock,
    BindHandler,
    Branch,
    DropVar,
    EvalExpr,
    ForAdvance,
    ForEnter,
    ForInit,
    ForTest,
    FunctionCFG,
    Goto,
    HavocSince,
    Return,
    SimpleStmt,
    SnapshotEpochs,
    StoreReturn,
    WithEnter,
)
from .specs import CONTAINER_SPECS, MSG_UNSTABLE_LOOP


class FixpointStats:
    """Process-wide counters for the fixpoint engine (the
    ``REPRO_DISPATCH_STATS`` pattern applied to analysis): folded into
    traces at export time and printable at interpreter exit."""

    __slots__ = ("functions", "blocks", "iterations", "widenings",
                 "unstable_loops", "summary_hits", "summary_misses",
                 "summary_recursion_bails")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.functions = 0
        self.blocks = 0
        self.iterations = 0          # total block executions
        self.widenings = 0           # loop-head accumulated-state changes
        self.unstable_loops = 0      # safety-cap hits (should stay 0)
        self.summary_hits = 0
        self.summary_misses = 0
        self.summary_recursion_bails = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


#: The process-global stats object (mirrors ``repro.runtime.metrics``).
STATS = FixpointStats()


def value_signature(v: Any) -> tuple:
    """Structural, epoch-insensitive signature of one abstract value —
    the finite-height projection the convergence test runs in."""
    if isinstance(v, AbstractContainer):
        return ("C", v.cid, v.kind, frozenset(v.properties), v.maybe_empty)
    if isinstance(v, AbstractIterator):
        return ("I", v.container.cid, v.position, v.validity, v.may_be_end)
    if isinstance(v, AbstractBool):
        return ("B", v)
    if isinstance(v, AbstractValue):
        return ("V", v.note)
    if isinstance(v, EpochSnapshot):
        return ("S",)
    return ("O", type(v).__name__)


def env_signature(env: Env) -> frozenset:
    return frozenset(
        (name, value_signature(v)) for name, v in env.vars.items()
    )


class FixpointChecker(Checker):
    """CFG + worklist replacement for the recursive ``Checker``.

    Everything diagnostic-producing is inherited; only control flow and
    interprocedural handling are overridden.
    """

    def __init__(
        self,
        tree: ast.FunctionDef,
        source_lines: list[str],
        module_functions: Optional[dict[str, ast.FunctionDef]] = None,
        facts: Any = None,
        summaries: Any = None,
    ) -> None:
        super().__init__(tree, source_lines,
                         module_functions=module_functions, facts=facts)
        if summaries is None:
            from .summaries import SummaryTable

            summaries = SummaryTable()
        self.summaries = summaries
        #: Join of the states at every ``Return`` edge (None when no
        #: return block was reachable — the safety cap fired first).
        self.exit_env: Optional[Env] = None
        #: Join of all returned abstract values (None ⇔ every path
        #: returned nothing).
        self.return_value: Any = None
        self.iterations = 0
        self.widenings = 0
        self.converged = True

    # -- entry ---------------------------------------------------------------

    def run(self):
        for arg in self.tree.args.args:
            kind = self._annotation_kind(arg)
            if kind in CONTAINER_SPECS:
                self.env.vars[arg.arg] = AbstractContainer(kind, arg.arg)
            else:
                self.env.vars[arg.arg] = AbstractValue(arg.arg)
        self.analyze(self.env)
        return self.sink

    def analyze(self, env: Env) -> None:
        """Run the worklist to fixpoint from ``env`` as the entry state."""
        tr = _trace.ACTIVE
        if tr is None:
            self._analyze(env)
        else:
            with tr.span("stllint.fixpoint", cat="lint",
                         function=self.tree.name) as sp:
                self._analyze(env)
                sp.set("iterations", self.iterations)
                sp.set("widenings", self.widenings)
                sp.set("converged", self.converged)

    # -- the worklist --------------------------------------------------------

    def _analyze(self, env: Env) -> None:
        cfg = lower_function(self.tree)
        prio = {bid: i for i, bid in enumerate(cfg.reverse_postorder())}
        preds = cfg.predecessors()

        edge_out: dict[tuple[int, int], Env] = {}
        head_acc: dict[int, Env] = {}
        head_sig: dict[int, frozenset] = {}
        done_sig: dict[int, frozenset] = {}
        exit_envs: list[Env] = []
        ret_values: list[Any] = []

        heap: list[tuple[int, int]] = [(prio[cfg.entry], cfg.entry)]
        queued = {cfg.entry}
        executions = 0
        # Generous backstop: the epoch-insensitive lattice has finite
        # height, so a correct run converges far below this.
        cap = max(256, 48 * len(cfg.blocks))

        while heap:
            _, bid = heapq.heappop(heap)
            queued.discard(bid)
            block = cfg.block(bid)

            incoming = [
                edge_out[(p, bid)] for p in preds[bid]
                if (p, bid) in edge_out
            ]
            if bid == cfg.entry:
                joined = env
                for st in incoming:
                    joined = joined.join(st)
            else:
                if not incoming:
                    continue  # not (yet) reachable
                joined = incoming[0]
                for st in incoming[1:]:
                    joined = joined.join(st)

            if block.is_loop_head:
                acc = head_acc.get(bid)
                new_acc = joined if acc is None else acc.join(joined)
                sig = env_signature(new_acc)
                if bid in head_sig and head_sig[bid] != sig:
                    self.widenings += 1
                head_sig[bid] = sig
                head_acc[bid] = new_acc
                state = new_acc
            else:
                state = joined
                sig = env_signature(state)

            if done_sig.get(bid) == sig:
                continue  # same abstract in-state as last execution

            executions += 1
            if executions > cap:
                self.converged = False
                STATS.unstable_loops += 1
                self.sink.note(MSG_UNSTABLE_LOOP, block.line or
                               getattr(self.tree, "lineno", 0))
                tr = _trace.ACTIVE
                if tr is not None:
                    tr.event("stllint.loop_bound", cat="lint",
                             function=self.tree.name, engine="fixpoint",
                             executions=executions)
                break
            done_sig[bid] = sig

            # Deep-copy: the stored edge states must survive this block's
            # destructive transfer functions.
            cur = state.copy()
            for instr in block.instrs:
                self._transfer(instr, cur)

            for target, out_state in self._apply_terminator(
                    block, cur, exit_envs, ret_values):
                edge_out[(bid, target)] = out_state
                if target not in queued:
                    queued.add(target)
                    heapq.heappush(heap, (prio[target], target))

        self.iterations = executions
        STATS.functions += 1
        STATS.blocks += len(cfg.blocks)
        STATS.iterations += executions
        STATS.widenings += self.widenings

        if exit_envs:
            joined = exit_envs[0]
            for st in exit_envs[1:]:
                joined = joined.join(st)
            self.exit_env = joined
        real_returns = [v for v in ret_values if v is not None]
        if real_returns:
            rv = real_returns[0]
            for v in real_returns[1:]:
                rv = join_values(rv, v)
            self.return_value = rv

    # -- terminators ---------------------------------------------------------

    def _apply_terminator(
        self,
        block: BasicBlock,
        env: Env,
        exit_envs: list[Env],
        ret_values: list[Any],
    ) -> list[tuple[int, Env]]:
        term = block.term
        if isinstance(term, Goto):
            return [(term.target, env)]
        if isinstance(term, Branch):
            cond = self._eval(term.test, env)
            then_ok = else_ok = True
            if term.respect_constant:
                if cond is AbstractBool.TRUE:
                    else_ok = False
                elif cond is AbstractBool.FALSE:
                    then_ok = False
            out: list[tuple[int, Env]] = []
            if then_ok and else_ok:
                then_env, else_env = env.copy(), env
            elif then_ok:
                then_env, else_env = env, None
            else:
                then_env, else_env = None, env
            if then_env is not None:
                self._refine(term.test, then_env, True)
                out.append((term.then_target, then_env))
            if else_env is not None:
                self._refine(term.test, else_env, False)
                out.append((term.else_target, else_env))
            return out
        if isinstance(term, ForTest):
            # Both edges always feasible: the range may be empty, and the
            # body-entry refinement lives in the body block's ForEnter.
            return [(term.body_target, env.copy()),
                    (term.exit_target, env)]
        if isinstance(term, Return):
            if term.slot is not None:
                value = env.vars.pop(term.slot, None)
                if isinstance(value, AbstractValue) and value.note == "<none>":
                    value = None
            elif term.value is not None:
                value = self._eval(term.value, env)
            else:
                value = None
            ret_values.append(value)
            exit_envs.append(env)
            return []
        return []  # Unreachable

    # -- instruction transfer ------------------------------------------------

    def _transfer(self, instr, env: Env) -> None:
        if isinstance(instr, SimpleStmt):
            self._exec_stmt(instr.node, env)
            return
        if isinstance(instr, WithEnter):
            self._eval(instr.context_expr, env)
            if instr.optional_var:
                env.vars[instr.optional_var] = AbstractValue(
                    instr.optional_var)
            return
        if isinstance(instr, ForInit):
            iterable = self._eval(instr.iter_expr, env)
            if isinstance(iterable, AbstractContainer) and instr.target_is_name:
                env.vars[instr.it_name] = AbstractIterator(
                    iterable, Position.BEGIN, Validity.VALID,
                    iterable.epoch, may_be_end=True,
                    origin_line=instr.line,
                )
            else:
                env.vars.pop(instr.it_name, None)
            return
        if isinstance(instr, ForEnter):
            it = env.vars.get(instr.it_name)
            if isinstance(it, AbstractIterator):
                # Loop entry implies `not it.equals(c.end())`.
                it.may_be_end = False
                if it.position is Position.END:
                    it.position = Position.UNKNOWN
                it.container.maybe_empty = False
                self._iterator_op(it, "deref", [], instr.line)
                if isinstance(instr.target, ast.Name):
                    env.vars[instr.target.id] = AbstractValue(
                        instr.target.id)
            else:
                self._bind_loop_target(instr.target, env)
            return
        if isinstance(instr, ForAdvance):
            it = env.vars.get(instr.it_name)
            if isinstance(it, AbstractIterator):
                self._iterator_op(it, "increment", [], instr.line)
            return
        if isinstance(instr, DropVar):
            env.vars.pop(instr.name, None)
            return
        if isinstance(instr, SnapshotEpochs):
            env.vars[instr.key] = EpochSnapshot.of(env.vars.values())
            return
        if isinstance(instr, HavocSince):
            snap = env.vars.get(instr.key)
            if isinstance(snap, EpochSnapshot):
                pre = {
                    v.cid: snap.epoch_of(v.cid, v.epoch)
                    for v in env.vars.values()
                    if isinstance(v, AbstractContainer)
                }
                self._havoc_mutated(env, pre)
            return
        if isinstance(instr, BindHandler):
            if instr.type_expr is not None:
                self._eval(instr.type_expr, env)
            if instr.name:
                env.vars[instr.name] = AbstractValue(instr.name)
            return
        if isinstance(instr, EvalExpr):
            self._eval(instr.node, env)
            return
        if isinstance(instr, StoreReturn):
            if instr.value is not None:
                env.vars[instr.slot] = self._eval(instr.value, env)
            else:
                env.vars[instr.slot] = AbstractValue("<none>")
            return
        raise TypeError(f"unknown IR instruction {type(instr).__name__}")

    # -- interprocedural: summaries instead of inlining ------------------------

    def _inline_call(
        self, name: str, callee: ast.FunctionDef, args: list[Any],
        env: Env, line: int,
    ) -> Any:
        """Summary-based replacement for bounded inlining: compute (or
        reuse) the callee's input→output effect summary for these
        abstract argument shapes and apply it to the caller's state."""
        a = callee.args
        if (
            a.vararg is not None or a.kwarg is not None or a.kwonlyargs
            or a.posonlyargs or len(args) != len(a.args)
        ):
            self._note_uninlined(name, args, line)
            return AbstractValue(f"{name}()")
        return self.summaries.apply(self, name, callee, args, env, line)


# ---------------------------------------------------------------------------
# Stats reporting (REPRO_DISPATCH_STATS-style)
# ---------------------------------------------------------------------------


def stats() -> dict[str, int]:
    """Snapshot of the process-wide fixpoint-engine counters."""
    return STATS.snapshot()


def reset_stats() -> None:
    STATS.reset()


def report(snapshot: Optional[dict[str, int]] = None) -> str:
    s = snapshot if snapshot is not None else stats()
    total = s["summary_hits"] + s["summary_misses"]
    rate = (100.0 * s["summary_hits"] / total) if total else 0.0
    return "\n".join([
        "== repro.stllint fixpoint stats ==",
        (
            f"functions: {s['functions']}, blocks: {s['blocks']}, "
            f"block executions: {s['iterations']}, "
            f"widenings: {s['widenings']}, "
            f"unstable loops: {s['unstable_loops']}"
        ),
        (
            f"summaries: {s['summary_hits']} hits / "
            f"{s['summary_misses']} misses ({rate:.0f}% hit rate), "
            f"{s['summary_recursion_bails']} recursion bail-outs"
        ),
    ])


_atexit_installed = False


def install_stats_report(stream: Any = None) -> None:
    """Register an atexit hook printing :func:`report` (idempotent);
    installed automatically when ``REPRO_STLLINT_STATS=1`` is set."""
    global _atexit_installed
    if _atexit_installed:
        return
    _atexit_installed = True

    import atexit
    import sys

    def _emit() -> None:
        out = stream if stream is not None else sys.stderr
        try:
            print(report(), file=out, flush=True)
        except Exception:  # noqa: BLE001 - never fail interpreter shutdown
            pass

    atexit.register(_emit)


import os as _os  # noqa: E402

if _os.environ.get("REPRO_STLLINT_STATS", "").strip().lower() not in (
    "", "0", "false", "off",
):
    install_stats_report()
