"""The abstract domain STLlint analyzes over.

"Central to the design of STLlint is the notion of abstraction via concept
and data-type specifications" — the interpreter never sees real containers,
only these summaries:

- :class:`AbstractContainer`: identity, a mutation epoch, and a set of
  flow-sensitive *properties* (``"sorted"`` is the one Section 3.1/3.2 uses).
- :class:`AbstractIterator`: which container it refers to, a symbolic
  *position* (begin / end / interior / unknown), a three-valued *validity*
  (valid / maybe-singular / singular), and a ``may_be_end`` flag for the
  range-violation check (dereferencing the result of ``find`` without
  comparing it to ``end()``).
- :class:`AbstractBool` / :class:`AbstractValue`: three-valued booleans and
  opaque element values.

Joins implement the may-analysis: anything bad on *some* path survives the
join, so a branch that invalidates an iterator taints the merged state —
exactly how Fig. 4's bug becomes visible on the loop's second iteration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional

from ..facts.properties import meet as _meet

_ids = itertools.count(1)


class Validity(Enum):
    VALID = "valid"
    MAYBE_SINGULAR = "maybe-singular"
    SINGULAR = "singular"

    def join(self, other: "Validity") -> "Validity":
        if self is other:
            return self
        if Validity.SINGULAR in (self, other) and Validity.VALID in (self, other):
            return Validity.MAYBE_SINGULAR
        if Validity.MAYBE_SINGULAR in (self, other):
            return Validity.MAYBE_SINGULAR
        return Validity.SINGULAR


class Position(Enum):
    BEGIN = "begin"
    END = "end"
    INTERIOR = "interior"
    UNKNOWN = "unknown"

    def join(self, other: "Position") -> "Position":
        return self if self is other else Position.UNKNOWN


class AbstractBool(Enum):
    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def negate(self) -> "AbstractBool":
        if self is AbstractBool.TRUE:
            return AbstractBool.FALSE
        if self is AbstractBool.FALSE:
            return AbstractBool.TRUE
        return AbstractBool.UNKNOWN


@dataclass
class AbstractContainer:
    """Summary of one container value."""

    kind: str                       # 'vector' | 'list' | 'deque'
    name: str = ""
    cid: int = field(default_factory=lambda: next(_ids))
    epoch: int = 0                  # bumped on every mutation
    properties: set[str] = field(default_factory=set)
    maybe_empty: bool = True

    def mutate(self) -> None:
        self.epoch += 1

    def copy(self) -> "AbstractContainer":
        out = AbstractContainer(self.kind, self.name, self.cid, self.epoch,
                                set(self.properties), self.maybe_empty)
        return out

    def join(self, other: "AbstractContainer") -> "AbstractContainer":
        assert self.cid == other.cid
        out = self.copy()
        out.epoch = max(self.epoch, other.epoch)
        # Must-hold at the join point: the facts-lattice meet, which
        # closes both sides under implication first (strictly-sorted on
        # one path meets sorted on the other at sorted, not at nothing).
        out.properties = set(_meet(self.properties, other.properties))
        out.maybe_empty = self.maybe_empty or other.maybe_empty
        return out

    def same_state(self, other: "AbstractContainer") -> bool:
        return (
            self.cid == other.cid
            and self.epoch == other.epoch
            and self.properties == other.properties
            and self.maybe_empty == other.maybe_empty
        )

    def __repr__(self) -> str:
        props = f" {sorted(self.properties)}" if self.properties else ""
        return f"<{self.kind} #{self.cid} '{self.name}' e{self.epoch}{props}>"


@dataclass
class AbstractIterator:
    """Summary of one iterator value."""

    container: AbstractContainer
    position: Position = Position.UNKNOWN
    validity: Validity = Validity.VALID
    epoch: int = 0                  # container epoch when this was valid
    may_be_end: bool = False        # e.g. the result of find()
    origin_line: int = 0

    def copy(self) -> "AbstractIterator":
        return AbstractIterator(self.container, self.position, self.validity,
                                self.epoch, self.may_be_end, self.origin_line)

    def join(self, other: "AbstractIterator") -> "AbstractIterator":
        out = self.copy()
        out.position = self.position.join(other.position)
        out.validity = self.validity.join(other.validity)
        out.epoch = min(self.epoch, other.epoch)
        out.may_be_end = self.may_be_end or other.may_be_end
        if other.container.cid != self.container.cid:
            # Joining iterators of different containers: nothing is known.
            out.position = Position.UNKNOWN
            out.validity = out.validity.join(other.validity)
        return out

    def same_state(self, other: "AbstractIterator") -> bool:
        return (
            self.container.cid == other.container.cid
            and self.position == other.position
            and self.validity == other.validity
            and self.may_be_end == other.may_be_end
        )

    def invalidate(self, definitely: bool = True) -> None:
        self.validity = (
            Validity.SINGULAR if definitely else
            self.validity.join(Validity.SINGULAR)
        )

    def __repr__(self) -> str:
        end = " may-be-end" if self.may_be_end else ""
        return (f"<iter #{self.container.cid} {self.position.value} "
                f"{self.validity.value}{end}>")


@dataclass
class AbstractValue:
    """An opaque element/scalar value."""

    note: str = ""

    def copy(self) -> "AbstractValue":
        return AbstractValue(self.note)

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(self.note if self.note == other.note else "")

    def same_state(self, other: "AbstractValue") -> bool:
        return True

    def __repr__(self) -> str:
        return f"<value {self.note}>" if self.note else "<value>"


@dataclass(frozen=True)
class EpochSnapshot:
    """Container epochs captured at one program point (a ``try`` entry).

    The CFG engine stores one of these in the environment under a hidden
    name so exception-edge havoc can compare "epoch now" against "epoch
    when the protected region began" even after joins.  Joining snapshots
    takes the pointwise *minimum* epoch: the lower pre-epoch makes more
    containers look mutated, which havocs more iterators — conservative
    for a may-analysis.
    """

    epochs: frozenset[tuple[int, int]]  # (cid, epoch) pairs

    @staticmethod
    def of(env_values: Any) -> "EpochSnapshot":
        return EpochSnapshot(frozenset(
            (v.cid, v.epoch) for v in env_values
            if isinstance(v, AbstractContainer)
        ))

    def epoch_of(self, cid: int, default: int) -> int:
        for c, e in self.epochs:
            if c == cid:
                return e
        return default

    def copy(self) -> "EpochSnapshot":
        return self

    def join(self, other: "EpochSnapshot") -> "EpochSnapshot":
        merged: dict[int, int] = dict(self.epochs)
        for cid, epoch in other.epochs:
            merged[cid] = min(merged.get(cid, epoch), epoch)
        return EpochSnapshot(frozenset(merged.items()))

    def same_state(self, other: "EpochSnapshot") -> bool:
        # Epoch-insensitive on purpose: snapshots must not keep the
        # fixpoint engine iterating after everything observable stabilized.
        return True


def join_values(a: Any, b: Any) -> Any:
    """Join two abstract values of possibly different kinds."""
    if a is b:
        return a
    if isinstance(a, AbstractIterator) and isinstance(b, AbstractIterator):
        return a.join(b)
    if isinstance(a, AbstractContainer) and isinstance(b, AbstractContainer) \
            and a.cid == b.cid:
        return a.join(b)
    if isinstance(a, AbstractBool) and isinstance(b, AbstractBool):
        return a if a is b else AbstractBool.UNKNOWN
    if isinstance(a, AbstractValue) and isinstance(b, AbstractValue):
        return a.join(b)
    if isinstance(a, EpochSnapshot) and isinstance(b, EpochSnapshot):
        return a.join(b)
    return AbstractValue()


def same_state(a: Any, b: Any) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, (AbstractIterator, AbstractContainer, AbstractValue,
                      EpochSnapshot)):
        return a.same_state(b)
    return a == b
