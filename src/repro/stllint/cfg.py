"""AST → CFG lowering for the fixpoint engine.

:func:`lower_function` turns one ``ast.FunctionDef`` body into a
:class:`~repro.stllint.ir.FunctionCFG`.  The interesting work is making
implicit control flow explicit:

- ``break``/``continue``/``return`` become plain edges (the legacy
  interpreter modelled them with signal exceptions, which forced loops
  to be re-executed whole);
- ``for`` loops get the begin/end/increment iterator-protocol desugaring
  as dedicated pseudo-instructions (``ForInit``/``ForEnter``/
  ``ForAdvance``) around an ordinary loop-head block;
- ``try`` blocks snapshot container epochs on entry and route a
  handler-dispatch edge from both the region entry and the body exit
  (the same "exception may fire anywhere" join the legacy ``_exec_try``
  used), with ``raise`` statements adding a direct edge to the innermost
  enclosing handler;
- ``finally`` bodies are duplicated onto every exiting continuation
  (fall-through, ``break``, ``continue``, ``return``), matching Python's
  semantics without needing a landing-pad abstraction.

Loop heads are marked so the dataflow engine knows where to accumulate
joined states (the lattice-ascent points that guarantee termination).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .ir import (
    BasicBlock,
    BindHandler,
    Branch,
    DropVar,
    EvalExpr,
    ForAdvance,
    ForEnter,
    ForInit,
    ForTest,
    FunctionCFG,
    Goto,
    HavocSince,
    Return,
    SimpleStmt,
    SnapshotEpochs,
    StoreReturn,
    Unreachable,
    WithEnter,
)

#: Hidden environment slot for return values that must survive a
#: ``finally`` block between the ``return`` statement and function exit.
RETURN_SLOT = "<return>"


@dataclass
class _LoopScope:
    """Targets for break/continue plus the cleanup needed to leave the
    loop's own hidden state (the for-protocol iterator) behind."""

    break_target: int
    continue_target: int
    it_name: Optional[str] = None  # drop on break (exit edge drops too)
    try_depth: int = 0  # len(tries) at loop entry: replay only deeper scopes


@dataclass
class _TryScope:
    """An enclosing ``try`` region: where ``raise`` dispatches, which
    snapshot to drop on the way out, and the ``finally`` body (if any)
    that every exiting edge must replay."""

    handler_target: Optional[int]
    snapshot_key: Optional[str]
    final_body: list[ast.stmt] = field(default_factory=list)


class _Lowerer:
    def __init__(self, fn: ast.FunctionDef) -> None:
        self.fn = fn
        self.blocks: list[BasicBlock] = []
        self.loops: list[_LoopScope] = []
        self.tries: list[_TryScope] = []

    # -- block plumbing -----------------------------------------------------

    def new_block(self, label: str = "", line: int = 0) -> BasicBlock:
        b = BasicBlock(bid=len(self.blocks), label=label, line=line)
        self.blocks.append(b)
        return b

    def seal(self, block: BasicBlock, term) -> None:
        if isinstance(block.term, Unreachable):
            block.term = term

    # -- entry --------------------------------------------------------------

    def lower(self) -> FunctionCFG:
        entry = self.new_block("entry", getattr(self.fn, "lineno", 0))
        last = self.lower_block(self.fn.body, entry)
        if last is not None:
            self.seal(last, Return(value=None))
        return FunctionCFG(self.fn.name, self.blocks, entry.bid)

    # -- statements ---------------------------------------------------------

    def lower_block(
        self, stmts: list[ast.stmt], cur: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Lower a statement list into ``cur``; returns the block control
        falls out of, or None when every path left (return/break/...)."""
        for s in stmts:
            if cur is None:
                # Dead code after an unconditional exit: lower it into a
                # fresh unreachable block so diagnostics positions still
                # exist, but nothing jumps to it.
                cur = self.new_block("dead", getattr(s, "lineno", 0))
            cur = self.lower_stmt(s, cur)
        return cur

    def lower_stmt(
        self, node: ast.stmt, cur: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(node, ast.If):
            return self.lower_if(node, cur)
        if isinstance(node, ast.While):
            return self.lower_while(node, cur)
        if isinstance(node, ast.For):
            return self.lower_for(node, cur)
        if isinstance(node, ast.Try):
            return self.lower_try(node, cur)
        if isinstance(node, ast.With):
            for item in node.items:
                var = (
                    item.optional_vars.id
                    if isinstance(item.optional_vars, ast.Name) else None
                )
                cur.instrs.append(WithEnter(item.context_expr, var))
            return self.lower_block(node.body, cur)
        if isinstance(node, ast.Return):
            return self.lower_return(node, cur)
        if isinstance(node, ast.Raise):
            return self.lower_raise(node, cur)
        if isinstance(node, ast.Break):
            return self.lower_break(cur)
        if isinstance(node, ast.Continue):
            return self.lower_continue(cur)
        # Everything else is straight-line from the CFG's point of view;
        # the interpreter's statement transfer handles it (including the
        # unmodeled-statement note).
        cur.instrs.append(SimpleStmt(node))
        return cur

    def lower_if(self, node: ast.If, cur: BasicBlock) -> Optional[BasicBlock]:
        then_b = self.new_block("then", node.lineno)
        else_b = self.new_block("else", node.lineno)
        self.seal(cur, Branch(node.test, then_b.bid, else_b.bid))
        then_end = self.lower_block(node.body, then_b)
        else_end = self.lower_block(node.orelse, else_b)
        if then_end is None and else_end is None:
            return None
        join = self.new_block("if-join", node.lineno)
        if then_end is not None:
            self.seal(then_end, Goto(join.bid))
        if else_end is not None:
            self.seal(else_end, Goto(join.bid))
        return join

    def lower_while(
        self, node: ast.While, cur: BasicBlock
    ) -> Optional[BasicBlock]:
        head = self.new_block("while-head", node.lineno)
        head.is_loop_head = True
        body = self.new_block("while-body", node.lineno)
        post = self.new_block("while-post", node.lineno)
        self.seal(cur, Goto(head.bid))
        # Loop-head branch: legacy parity — the body edge is always
        # explored even for a constant-false-looking test, and the exit
        # edge is always feasible; refinement still applies on each side.
        self.seal(
            head,
            Branch(node.test, body.bid, post.bid, respect_constant=False),
        )
        self.loops.append(
            _LoopScope(post.bid, head.bid, try_depth=len(self.tries))
        )
        body_end = self.lower_block(node.body, body)
        self.loops.pop()
        if body_end is not None:
            self.seal(body_end, Goto(head.bid))
        if node.orelse:
            # `while ... else` runs the else body on normal exit; break
            # jumps past it.  Model conservatively: else body between head
            # exit and post would change break targets, so keep it simple —
            # run the else body at post entry (break paths join after it;
            # a sound over-approximation for a may-analysis).
            return self.lower_block(node.orelse, post)
        return post

    def lower_for(self, node: ast.For, cur: BasicBlock) -> Optional[BasicBlock]:
        line = node.lineno
        it_name = f"<for@{line}>"
        target_is_name = isinstance(node.target, ast.Name)
        cur.instrs.append(ForInit(node.iter, it_name, target_is_name, line))
        head = self.new_block("for-head", line)
        head.is_loop_head = True
        body = self.new_block("for-body", line)
        advance = self.new_block("for-advance", line)
        post = self.new_block("for-post", line)
        self.seal(cur, Goto(head.bid))
        self.seal(head, ForTest(it_name, body.bid, post.bid, line))
        body.instrs.append(ForEnter(it_name, node.target, line))
        self.loops.append(_LoopScope(
            post.bid, advance.bid, it_name=it_name,
            try_depth=len(self.tries),
        ))
        body_end = self.lower_block(node.body, body)
        self.loops.pop()
        if body_end is not None:
            self.seal(body_end, Goto(advance.bid))
        advance.instrs.append(ForAdvance(it_name, line))
        self.seal(advance, Goto(head.bid))
        post.instrs.append(DropVar(it_name))
        if node.orelse:
            # Normal exhaustion runs orelse; break skips it (break edges
            # target `post` after the orelse in Python — modelled by
            # lowering orelse into post directly, which over-approximates
            # break-paths as also seeing orelse; sound for may-analysis
            # and strictly more precise than the legacy engine, which ran
            # orelse on the joined loop state unconditionally).
            return self.lower_block(node.orelse, post)
        return post

    def lower_try(self, node: ast.Try, cur: BasicBlock) -> Optional[BasicBlock]:
        line = node.lineno
        snap_key = f"<try@{line}>"
        cur.instrs.append(SnapshotEpochs(snap_key))

        have_handlers = bool(node.handlers)
        dispatch: Optional[BasicBlock] = None
        if have_handlers:
            dispatch = self.new_block("except-dispatch", line)
            dispatch.instrs.append(HavocSince(snap_key))

        body = self.new_block("try-body", line)
        if dispatch is not None:
            # An exception may fire before the body does anything: edge
            # from region entry straight to the dispatch block.
            self.seal(cur, Branch(
                ast.Constant(value=True, lineno=line, col_offset=0),
                body.bid, dispatch.bid, respect_constant=False,
            ))
        else:
            self.seal(cur, Goto(body.bid))

        self.tries.append(_TryScope(
            dispatch.bid if dispatch is not None else None,
            snap_key,
            list(node.finalbody),
        ))
        body_end = self.lower_block(node.body, body)
        if body_end is not None and node.orelse:
            body_end = self.lower_block(node.orelse, body_end)
        self.tries.pop()

        exits: list[BasicBlock] = []
        if body_end is not None:
            exits.append(body_end)
        if dispatch is not None and body_end is not None:
            # The body may also raise part-way through: its exit state
            # feeds the dispatch join (the legacy env.join(body_env)).
            # Model with an always-both branch from a fresh block so the
            # normal continuation is unaffected.
            split = self.new_block("try-exit-split", line)
            self.seal(body_end, Goto(split.bid))
            normal = self.new_block("try-normal", line)
            self.seal(split, Branch(
                ast.Constant(value=True, lineno=line, col_offset=0),
                normal.bid, dispatch.bid, respect_constant=False,
            ))
            exits = [normal]
        if dispatch is not None:
            h_exits: list[BasicBlock] = []
            handler_blocks: list[BasicBlock] = []
            for handler in node.handlers:
                hb = self.new_block("except", handler.lineno)
                hb.instrs.append(BindHandler(handler.type, handler.name))
                handler_blocks.append(hb)
            # Dispatch fans out to every handler (which one matches is
            # unknown abstractly).
            fan = dispatch
            for i, hb in enumerate(handler_blocks):
                if i == len(handler_blocks) - 1:
                    self.seal(fan, Goto(hb.bid))
                else:
                    nxt = self.new_block("except-fan", line)
                    self.seal(fan, Branch(
                        ast.Constant(value=True, lineno=line, col_offset=0),
                        hb.bid, nxt.bid, respect_constant=False,
                    ))
                    fan = nxt
            # Handlers run outside the protected region but still inside
            # any *outer* try; their own raise/return must replay this
            # try's finally, so keep a scope with no handler but the
            # finally body.
            self.tries.append(_TryScope(None, snap_key, list(node.finalbody)))
            for handler, hb in zip(node.handlers, handler_blocks):
                h_end = self.lower_block(handler.body, hb)
                if h_end is not None:
                    h_exits.append(h_end)
            self.tries.pop()
            exits.extend(h_exits)

        if not exits:
            # Every path returned or re-raised; finally already replayed
            # on each exiting edge.
            return None
        join = self.new_block("try-join", line)
        for e in exits:
            self.seal(e, Goto(join.bid))
        join.instrs.append(DropVar(snap_key))
        if node.finalbody:
            return self.lower_block(node.finalbody, join)
        return join

    # -- exiting edges ------------------------------------------------------

    def _replay_finallys(
        self, cur: BasicBlock, from_depth: int = 0
    ) -> BasicBlock:
        """Append the finally bodies (innermost first) plus the snapshot
        cleanups of every try scope at index >= ``from_depth`` onto
        ``cur`` — the scopes an exiting edge actually leaves."""
        for scope in reversed(self.tries[from_depth:]):
            if scope.snapshot_key:
                cur.instrs.append(DropVar(scope.snapshot_key))
            if scope.final_body:
                end = self.lower_block(scope.final_body, cur)
                if end is None:  # the finally itself left (return inside)
                    return cur  # unreachable continuation; caller seals
                cur = end
        return cur

    def lower_return(
        self, node: ast.Return, cur: BasicBlock
    ) -> Optional[BasicBlock]:
        needs_slot = any(s.final_body for s in self.tries)
        if needs_slot:
            cur.instrs.append(StoreReturn(node.value, RETURN_SLOT))
            cur = self._replay_finallys(cur)
            self.seal(cur, Return(slot=RETURN_SLOT))
        else:
            cur = self._replay_finallys(cur)
            self.seal(cur, Return(value=node.value))
        return None

    def lower_raise(
        self, node: ast.Raise, cur: BasicBlock
    ) -> Optional[BasicBlock]:
        if node.exc is not None:
            cur.instrs.append(EvalExpr(node.exc))
        # Dispatch to the innermost enclosing handler, replaying finallys
        # of regions *inside* it on the way out.
        target_idx: Optional[int] = None
        for i in range(len(self.tries) - 1, -1, -1):
            if self.tries[i].handler_target is not None:
                target_idx = i
                break
        if target_idx is None:
            # No handler in this function: the exception ends the path
            # (the legacy engine treated raise as return-None).
            cur = self._replay_finallys(cur)
            self.seal(cur, Return(value=None))
            return None
        cur = self._replay_finallys(cur, from_depth=target_idx + 1)
        self.seal(cur, Goto(self.tries[target_idx].handler_target))
        return None

    def lower_break(self, cur: BasicBlock) -> Optional[BasicBlock]:
        if not self.loops:
            cur.instrs.append(SimpleStmt(ast.Pass(lineno=cur.line,
                                                  col_offset=0)))
            return cur
        scope = self.loops[-1]
        # Only try regions entered inside the loop are exited by a break.
        cur = self._replay_finallys(cur, from_depth=scope.try_depth)
        if scope.it_name:
            cur.instrs.append(DropVar(scope.it_name))
        self.seal(cur, Goto(scope.break_target))
        return None

    def lower_continue(self, cur: BasicBlock) -> Optional[BasicBlock]:
        if not self.loops:
            cur.instrs.append(SimpleStmt(ast.Pass(lineno=cur.line,
                                                  col_offset=0)))
            return cur
        scope = self.loops[-1]
        cur = self._replay_finallys(cur, from_depth=scope.try_depth)
        self.seal(cur, Goto(scope.continue_target))
        return None


def lower_function(fn: ast.FunctionDef) -> FunctionCFG:
    """Lower one function's AST to its control-flow graph."""
    return _Lowerer(fn).lower()
