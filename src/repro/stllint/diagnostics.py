"""Diagnostics for STLlint.

"STLlint ... is thereby able to uncover this error to produce a meaningful,
high-level error message" — diagnostics carry severity, the concept-level
message, and the source line, and render in the paper's format::

    Warning: attempt to dereference a singular iterator
        if (fgrade(*iter)) {
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class Severity(Enum):
    ERROR = "Error"
    WARNING = "Warning"
    SUGGESTION = "Suggestion"
    NOTE = "Note"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    line: int
    source_line: str = ""
    function: str = ""

    def render(self) -> str:
        out = f"{self.severity.value}: {self.message}"
        if self.source_line:
            out += f"\n    {self.source_line.strip()}"
        return out

    def __str__(self) -> str:
        return self.render()


class DiagnosticSink:
    """Collects diagnostics, deduplicating by (line, message) — joining and
    loop re-execution would otherwise repeat them."""

    def __init__(self, source_lines: Optional[list[str]] = None,
                 function: str = "") -> None:
        self._seen: set[tuple[int, str]] = set()
        self.diagnostics: list[Diagnostic] = []
        self.source_lines = source_lines or []
        self.function = function

    def emit(self, severity: Severity, message: str, line: int) -> None:
        key = (line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        src = ""
        if 1 <= line <= len(self.source_lines):
            src = self.source_lines[line - 1]
        self.diagnostics.append(
            Diagnostic(severity, message, line, src, self.function)
        )

    def error(self, message: str, line: int) -> None:
        self.emit(Severity.ERROR, message, line)

    def warning(self, message: str, line: int) -> None:
        self.emit(Severity.WARNING, message, line)

    def suggestion(self, message: str, line: int) -> None:
        self.emit(Severity.SUGGESTION, message, line)

    def note(self, message: str, line: int) -> None:
        self.emit(Severity.NOTE, message, line)

    # -- queries -----------------------------------------------------------

    def of(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.of(Severity.WARNING)

    @property
    def errors(self) -> list[Diagnostic]:
        return self.of(Severity.ERROR)

    @property
    def suggestions(self) -> list[Diagnostic]:
        return self.of(Severity.SUGGESTION)

    @property
    def clean(self) -> bool:
        return not any(
            d.severity in (Severity.ERROR, Severity.WARNING)
            for d in self.diagnostics
        )

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)
