"""STLlint: high-level static checking against library specifications
(Section 3.1), plus the concept-level optimization advice of Section 3.2.

Quick use::

    from repro.stllint import check_source

    report = check_source('''
    def extract_fails(students: "vector", fails: "vector"):
        it = students.begin()
        while not it.equals(students.end()):
            if fgrade(it.deref()):
                fails.push_back(it.deref())
                students.erase(it)
            else:
                it.increment()
    ''')
    print(report.render())
    # Warning: attempt to dereference a singular iterator
    #     if fgrade(it.deref()):
"""

from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    Position,
    Validity,
)
from .archetype_check import (
    MultiPassSequence,
    MultipassViolation,
    SinglePassIterator,
    SinglePassSequence,
    check_traversal_requirement,
)
from .dataflow import FixpointChecker, FixpointStats
from .dataflow import install_stats_report as install_fixpoint_stats_report
from .dataflow import report as fixpoint_report
from .dataflow import reset_stats as reset_fixpoint_stats
from .dataflow import stats as fixpoint_stats
from .diagnostics import Diagnostic, DiagnosticSink, Severity
from .facts_collection import collect_facts
from .interpreter import (
    DEFAULT_ENGINE,
    ENGINES,
    MAX_INLINE_DEPTH,
    Checker,
    Env,
    check_function,
    check_source,
    make_checker,
    module_function_table,
)
from .summaries import Summary, SummaryTable
from .specs import (
    ALGORITHM_SPECS,
    CONTAINER_SPECS,
    MSG_CROSS_CONTAINER,
    MSG_MAYBE_END_DEREF,
    MSG_NOT_A_HEAP,
    MSG_PAST_END_DEREF,
    MSG_SINGULAR_ADVANCE,
    MSG_SINGULAR_DEREF,
    MSG_SORTED_LINEAR_FIND,
    MSG_UNINLINED_CALL,
    MSG_UNMODELED_STMT,
    MSG_UNSORTED_LOWER_BOUND,
    MSG_UNSTABLE_LOOP,
    SORTED,
    ContainerSpec,
    InvalidationRule,
    register_algorithm_spec,
    unregister_algorithm_spec,
)

__all__ = [
    "AbstractBool", "AbstractContainer", "AbstractIterator", "AbstractValue",
    "Position", "Validity",
    "Diagnostic", "DiagnosticSink", "Severity",
    "Checker", "Env", "check_function", "check_source",
    "collect_facts",
    "module_function_table", "MAX_INLINE_DEPTH",
    "DEFAULT_ENGINE", "ENGINES", "make_checker",
    "FixpointChecker", "FixpointStats", "Summary", "SummaryTable",
    "fixpoint_stats", "reset_fixpoint_stats", "fixpoint_report",
    "install_fixpoint_stats_report",
    "ALGORITHM_SPECS", "CONTAINER_SPECS", "ContainerSpec",
    "InvalidationRule", "register_algorithm_spec",
    "unregister_algorithm_spec", "SORTED",
    "MSG_CROSS_CONTAINER", "MSG_MAYBE_END_DEREF", "MSG_NOT_A_HEAP",
    "MSG_PAST_END_DEREF", "MSG_SINGULAR_ADVANCE",
    "MSG_SINGULAR_DEREF", "MSG_SORTED_LINEAR_FIND",
    "MSG_UNINLINED_CALL", "MSG_UNMODELED_STMT",
    "MSG_UNSORTED_LOWER_BOUND", "MSG_UNSTABLE_LOOP",
    "SinglePassSequence", "SinglePassIterator", "MultiPassSequence",
    "MultipassViolation", "check_traversal_requirement",
]
