"""A small statement-level IR with an explicit control-flow graph.

The legacy interpreter (:mod:`repro.stllint.interpreter`) walks the AST
recursively, approximating ``break``/``continue``/``return`` with signal
exceptions and loops with bounded re-execution.  This module is the
structured alternative: :mod:`repro.stllint.cfg` lowers one function's
AST into a :class:`FunctionCFG` of :class:`BasicBlock`\\ s whose
*instructions* are either original AST statements (executed by the same
transfer functions the legacy interpreter uses) or small pseudo-ops for
the constructs the recursive walker handled implicitly — ``for``-loop
iterator-protocol desugaring, ``try`` epoch snapshots and exception-edge
havoc.  Each block ends in exactly one :class:`Terminator`, so every
``break``, ``continue``, ``return``, ``raise``, and loop back-edge is an
explicit CFG edge the worklist engine (:mod:`repro.stllint.dataflow`)
can iterate to a true fixpoint.

Nothing here evaluates anything: the IR is pure structure.  All abstract
semantics stay in the interpreter's transfer functions and in
:mod:`repro.stllint.specs`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Instructions (straight-line, non-branching)
# ---------------------------------------------------------------------------


class Instr:
    """Base class for straight-line IR instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class SimpleStmt(Instr):
    """An AST statement with no control flow of its own (assignment,
    expression statement, assert, delete, pass, unmodeled statements) —
    executed verbatim by the interpreter's statement transfer."""

    node: ast.stmt


@dataclass(frozen=True)
class WithEnter(Instr):
    """Evaluate a ``with`` item's context expression and bind its
    ``as``-name opaquely; the body is lowered inline after it."""

    context_expr: ast.expr
    optional_var: Optional[str]


@dataclass(frozen=True)
class ForInit(Instr):
    """Evaluate a ``for`` loop's iterable; when it is a tracked container
    (and the target is a plain name), bind the hidden protocol iterator
    ``it_name`` at BEGIN — the desugaring the legacy ``_exec_for`` did
    inline."""

    iter_expr: ast.expr
    it_name: str
    target_is_name: bool
    line: int


@dataclass(frozen=True)
class ForEnter(Instr):
    """Loop-body entry for a ``for`` loop: in container mode, apply the
    implicit ``not it.equals(c.end())`` refinement, check/deref the
    hidden iterator, and bind the loop target to the element; otherwise
    bind the target(s) opaquely."""

    it_name: str
    target: ast.expr
    line: int


@dataclass(frozen=True)
class ForAdvance(Instr):
    """The implicit ``it.increment()`` at the end of a container-mode
    ``for`` body (skipped by ``break``/``return`` edges, reached by
    ``continue`` — exactly Python's semantics)."""

    it_name: str
    line: int


@dataclass(frozen=True)
class DropVar(Instr):
    """Remove a hidden binding (protocol iterator, epoch snapshot) from
    the state so it cannot leak past its scope."""

    name: str


@dataclass(frozen=True)
class SnapshotEpochs(Instr):
    """Record every live container's mutation epoch under a hidden name
    at ``try`` entry (consumed by :class:`HavocSince` on the handler
    edge)."""

    key: str


@dataclass(frozen=True)
class HavocSince(Instr):
    """Exception-edge havoc: every iterator over a container mutated
    since the :class:`SnapshotEpochs` keyed ``key`` may have been
    invalidated part-way through the protected region; container
    properties are likewise unreliable."""

    key: str


@dataclass(frozen=True)
class BindHandler(Instr):
    """Evaluate an ``except`` clause's type expression and bind its
    ``as``-name opaquely on handler entry."""

    type_expr: Optional[ast.expr]
    name: Optional[str]


@dataclass(frozen=True)
class EvalExpr(Instr):
    """Evaluate an expression for its effects/diagnostics only (e.g. the
    operand of a ``raise``)."""

    node: ast.expr


@dataclass(frozen=True)
class StoreReturn(Instr):
    """Evaluate a ``return`` statement's value into the hidden slot
    ``slot`` *before* any ``finally`` blocks run, so the eventual
    :class:`Return` terminator can hand back the already-computed
    value."""

    value: Optional[ast.expr]
    slot: str


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Goto:
    """Unconditional edge."""

    target: int


@dataclass(frozen=True)
class Branch:
    """Two-way conditional edge with path-sensitive refinement on each
    side.  ``respect_constant`` distinguishes ``if`` (a definitely-true
    test kills the else edge) from loop heads, where the legacy engine
    always explored the body — parity the fixpoint engine keeps."""

    test: ast.expr
    then_target: int
    else_target: int
    respect_constant: bool = True


@dataclass(frozen=True)
class ForTest:
    """A ``for`` loop head: both the body edge and the exit edge are
    always feasible (the range may be empty)."""

    it_name: str
    body_target: int
    exit_target: int
    line: int


@dataclass(frozen=True)
class Return:
    """Function exit.  Either evaluates ``value`` directly or, when the
    return crossed ``finally`` blocks, reads the value a
    :class:`StoreReturn` stashed in ``slot``."""

    value: Optional[ast.expr] = None
    slot: Optional[str] = None


@dataclass(frozen=True)
class Unreachable:
    """Terminator of blocks with no successors that never fall through
    (placed on dead blocks the lowering keeps for simplicity)."""


Terminator = Union[Goto, Branch, ForTest, Return, Unreachable]


# ---------------------------------------------------------------------------
# Blocks and the function CFG
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """One straight-line run of instructions plus a terminator."""

    bid: int
    instrs: list[Instr] = field(default_factory=list)
    term: Terminator = field(default_factory=Unreachable)
    is_loop_head: bool = False
    line: int = 0
    label: str = ""

    def successors(self) -> list[int]:
        t = self.term
        if isinstance(t, Goto):
            return [t.target]
        if isinstance(t, Branch):
            # Deduplicate self-edges like `if c: pass` collapsing.
            out = [t.then_target]
            if t.else_target != t.then_target:
                out.append(t.else_target)
            return out
        if isinstance(t, ForTest):
            out = [t.body_target]
            if t.exit_target != t.body_target:
                out.append(t.exit_target)
            return out
        return []


@dataclass
class FunctionCFG:
    """The lowered function: blocks, the entry id, and the id of the
    virtual exit block every ``Return`` conceptually feeds."""

    name: str
    blocks: list[BasicBlock]
    entry: int

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {b.bid: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.successors():
                preds[s].append(b.bid)
        return preds

    def loop_heads(self) -> list[int]:
        return [b.bid for b in self.blocks if b.is_loop_head]

    def reverse_postorder(self) -> list[int]:
        """Deterministic worklist priority: process blocks roughly in
        control-flow order so states reach loop heads before widening."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].successors()))]
            seen.add(bid)
            while stack:
                cur, succs = stack[-1]
                advanced = False
                for s in succs:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.blocks[s].successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        # Unreachable blocks (dead code after return) keep a stable
        # position at the end; the engine never executes them anyway.
        for b in self.blocks:
            if b.bid not in seen:
                order.append(b.bid)
        order.reverse()
        return order

    def render(self) -> str:
        """Debug dump of the CFG shape."""
        lines = [f"cfg {self.name}: entry B{self.entry}"]
        for b in self.blocks:
            head = " (loop head)" if b.is_loop_head else ""
            lines.append(f"  B{b.bid}{head} [{b.label}]")
            for i in b.instrs:
                lines.append(f"    {type(i).__name__}")
            lines.append(
                f"    -> {type(b.term).__name__} {b.successors()}"
            )
        return "\n".join(lines)
