"""collect_facts: STLlint as a *producer* of queryable semantic facts.

The same symbolic interpretation that powers ``check_source`` — entry/exit
handlers, loop fixpoints, bounded inlining — here records what it learned
about container properties into a :class:`~repro.facts.records.FactTable`
instead of keeping it interpreter-private.  This is the producer half of
the paper's Section 3.2 integration: "STLlint-derived flow facts" feed
Simplicissimus's property-guarded rewrites and the ``repro.optimize``
pipeline, which ask the table questions like "is ``v`` known sorted on
every path reaching the ``find`` call at line 7?".
"""

from __future__ import annotations

import ast
import textwrap

from typing import Any, Optional

from ..facts.records import FactRecorder, FactTable
from ..trace import core as _trace
from .interpreter import DEFAULT_ENGINE, make_checker, module_function_table


def collect_facts(
    source: str, *, interprocedural: bool = True,
    engine: Optional[str] = None,
) -> FactTable:
    """Analyze every function in ``source`` and return the facts learned.

    Diagnostics are still produced internally (the analysis is identical
    to ``check_source``) but discarded here; callers wanting both should
    lint separately — the runs are cheap and independent.

    With ``interprocedural=True`` (the default), calls between functions
    defined in ``source`` are analyzed across function boundaries — via
    memoized summaries under the default ``fixpoint`` engine, or by
    bounded inlining under ``engine="inline"`` — so a helper's ``sort``
    establishes sortedness visible at the caller's ``find``.
    """
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    lines = source.splitlines()
    functions = module_function_table(tree) if interprocedural else {}
    recorder = FactRecorder()
    resolved = engine or DEFAULT_ENGINE
    summaries: Any = None
    if resolved == "fixpoint":
        from .summaries import SummaryTable

        summaries = SummaryTable()

    def run() -> None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                make_checker(
                    resolved, node, lines, module_functions=functions,
                    facts=recorder, summaries=summaries,
                ).run()

    tr = _trace.ACTIVE
    if tr is None:
        run()
    else:
        with tr.span("facts.collect", cat="facts", engine=resolved) as sp:
            run()
            sp.set("call_sites", len(recorder.calls))
            sp.set("facts", len(recorder.facts))
    return recorder.table()
