"""The STLlint symbolic interpreter.

Programs to check are written in a small Python subset (parsed with
:mod:`ast`, so diagnostics carry real line numbers): assignments, ``if``,
``while``, ``return``, method calls on containers/iterators, and calls to
the specified generic algorithms.  Container parameters are declared with
string annotations naming the container kind::

    def extract_fails(students: "vector", fails: "vector"):
        it = students.begin()
        while not it.equals(students.end()):
            if fgrade(it.deref()):
                fails.push_back(it.deref())
                students.erase(it)          # invalidates it (vector rule)
            else:
                it.increment()

Analysis is a may-analysis: branches on unknown conditions execute both
ways and join; loops run to an abstract fixpoint (joined states) so effects
of iteration *k* are visible in iteration *k+1* — which is exactly how the
Fig. 4 bug surfaces: the erase branch leaves ``it`` singular, the join taints
it, and the next iteration's ``it.deref()`` fires the paper's warning.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Any, Optional

from ..facts.properties import invalidate as _invalidate_props
from ..facts.records import FactRecorder
from ..trace import core as _trace
from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    Position,
    Validity,
    join_values,
    same_state,
)
from .diagnostics import Diagnostic, DiagnosticSink, Severity
from .specs import (
    ALGORITHM_SPECS,
    CONTAINER_SPECS,
    MSG_CROSS_CONTAINER,
    MSG_MAYBE_END_DEREF,
    MSG_PAST_END_ADVANCE,
    MSG_PAST_END_DEREF,
    MSG_SINGULAR_ADVANCE,
    MSG_SINGULAR_DEREF,
    MSG_UNINLINED_CALL,
    MSG_UNMODELED_STMT,
    MSG_UNSTABLE_LOOP,
    AlgorithmContext,
)

#: Engine used by :func:`check_source`/:func:`check_function` when none is
#: named: "fixpoint" (CFG + worklist, :mod:`repro.stllint.dataflow`) or
#: "inline" (this module's legacy bounded re-execution, kept as the
#: differential-testing oracle).
DEFAULT_ENGINE = "fixpoint"

ENGINES = ("fixpoint", "inline")

MAX_LOOP_ITERATIONS = 6

#: Bound on the dynamic inlining chain for interprocedural analysis: a
#: call to a same-module function is analyzed in the caller's abstract
#: state up to this depth; past it (or on recursion) the call is treated
#: as opaque and an explicit Note records the lost precision.
MAX_INLINE_DEPTH = 4


class Env:
    """Variable environment with container-identity-preserving copying."""

    def __init__(self) -> None:
        self.vars: dict[str, Any] = {}

    def copy(self) -> "Env":
        out = Env()
        cloned: dict[int, AbstractContainer] = {}

        def clone_container(c: AbstractContainer) -> AbstractContainer:
            if c.cid not in cloned:
                cloned[c.cid] = c.copy()
            return cloned[c.cid]

        for name, v in self.vars.items():
            if isinstance(v, AbstractContainer):
                out.vars[name] = clone_container(v)
            elif isinstance(v, AbstractIterator):
                it = v.copy()
                it.container = clone_container(v.container)
                out.vars[name] = it
            elif isinstance(v, AbstractValue):
                out.vars[name] = v.copy()
            else:
                out.vars[name] = v
        return out

    def join(self, other: "Env") -> "Env":
        out = Env()
        for name in set(self.vars) | set(other.vars):
            a = self.vars.get(name)
            b = other.vars.get(name)
            if a is None or b is None:
                out.vars[name] = a if a is not None else b
            else:
                out.vars[name] = join_values(a, b)
        # Re-point iterators at the joined container objects so state stays
        # consistent.
        containers: dict[int, AbstractContainer] = {
            v.cid: v for v in out.vars.values()
            if isinstance(v, AbstractContainer)
        }
        for v in out.vars.values():
            if isinstance(v, AbstractIterator) and v.container.cid in containers:
                v.container = containers[v.container.cid]
        return out

    def same_state(self, other: "Env") -> bool:
        if set(self.vars) != set(other.vars):
            return False
        return all(same_state(self.vars[k], other.vars[k]) for k in self.vars)


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Checker:
    """Checks one function's body against the library specifications.

    ``module_functions`` maps names of functions defined in the same
    module to their ASTs; calls to them are analyzed interprocedurally by
    bounded inlining (the whole-program mode of Section 3.1, where
    invalidation effects propagate across helper functions).
    """

    def __init__(
        self,
        tree: ast.FunctionDef,
        source_lines: list[str],
        module_functions: Optional[dict[str, ast.FunctionDef]] = None,
        facts: Optional[FactRecorder] = None,
    ) -> None:
        self.tree = tree
        self.sink = DiagnosticSink(source_lines, tree.name)
        self.env = Env()
        self.module_functions = module_functions or {}
        self.facts = facts
        self._inline_stack: list[str] = [tree.name]

    # -- entry ----------------------------------------------------------------

    def run(self) -> DiagnosticSink:
        for arg in self.tree.args.args:
            kind = self._annotation_kind(arg)
            if kind in CONTAINER_SPECS:
                self.env.vars[arg.arg] = AbstractContainer(kind, arg.arg)
            else:
                self.env.vars[arg.arg] = AbstractValue(arg.arg)
        try:
            self._exec_block(self.tree.body, self.env)
        except _ReturnSignal:
            pass
        return self.sink

    @staticmethod
    def _annotation_kind(arg: ast.arg) -> Optional[str]:
        ann = arg.annotation
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value.lower()
        if isinstance(ann, ast.Name):
            return ann.id.lower()
        return None

    # -- statements --------------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: Env) -> None:
        for s in stmts:
            self._exec_stmt(s, env)

    def _exec_stmt(self, node: ast.stmt, env: Env) -> None:
        if isinstance(node, ast.Assign):
            self._exec_assign(node, env)
            return
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = None
            if isinstance(node.annotation, ast.Constant):
                kind = str(node.annotation.value).lower()
            if node.value is not None:
                env.vars[node.target.id] = self._eval(node.value, env)
            elif kind in CONTAINER_SPECS:
                env.vars[node.target.id] = AbstractContainer(kind, node.target.id)
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value, env)
            return
        if isinstance(node, ast.If):
            self._exec_if(node, env)
            return
        if isinstance(node, ast.While):
            self._exec_while(node, env)
            return
        if isinstance(node, ast.For):
            self._exec_for(node, env)
            return
        if isinstance(node, ast.Try):
            self._exec_try(node, env)
            return
        if isinstance(node, ast.With):
            for item in node.items:
                self._eval(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env.vars[item.optional_vars.id] = AbstractValue(
                        item.optional_vars.id
                    )
            self._exec_block(node.body, env)
            return
        if isinstance(node, ast.Assert):
            self._eval(node.test, env)
            if node.msg is not None:
                self._eval(node.msg, env)
            return
        if isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    env.vars.pop(t.id, None)
            return
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc, env)
            # An exception ends this path (for this function's analysis).
            raise _ReturnSignal(None)
        if isinstance(node, ast.Return):
            value = None
            if node.value is not None:
                value = self._eval(node.value, env)
            raise _ReturnSignal(value)
        if isinstance(node, ast.Break):
            raise _BreakSignal()
        if isinstance(node, ast.Continue):
            raise _ContinueSignal()
        if isinstance(node, ast.Pass):
            return
        # Unmodeled statements are evaluated for their subexpressions only.
        # If one mentions tracked container state, say so out loud rather
        # than silently losing soundness.
        self._note_unmodeled(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)

    def _exec_assign(self, node: ast.Assign, env: Env) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], (ast.Tuple, ast.List))
        ):
            target = node.targets[0]
            if (
                isinstance(node.value, (ast.Tuple, ast.List))
                and len(node.value.elts) == len(target.elts)
            ):
                # Elementwise binding (a, b = x, y) — evaluate the whole
                # right-hand side first, so swaps behave.
                values = [self._eval(v, env) for v in node.value.elts]
            else:
                self._eval(node.value, env)
                values = [AbstractValue() for _ in target.elts]
            for elt, value in zip(target.elts, values):
                if isinstance(elt, ast.Name):
                    env.vars[elt.id] = value
            return
        value = self._eval(node.value, env)
        for t in node.targets:
            if isinstance(t, ast.Name):
                env.vars[t.id] = value

    def _note_unmodeled(self, node: ast.stmt, env: Env) -> None:
        names = {
            n.id for n in ast.walk(node) if isinstance(n, ast.Name)
        }
        if any(
            isinstance(env.vars.get(n), (AbstractContainer, AbstractIterator))
            for n in names
        ):
            self.sink.note(
                f"{type(node).__name__} {MSG_UNMODELED_STMT}",
                getattr(node, "lineno", 0),
            )

    def _exec_if(self, node: ast.If, env: Env) -> None:
        cond = self._eval(node.test, env)
        if cond is AbstractBool.TRUE:
            self._refine(node.test, env, True)
            self._exec_block(node.body, env)
            return
        if cond is AbstractBool.FALSE:
            self._refine(node.test, env, False)
            self._exec_block(node.orelse, env)
            return
        then_env = env.copy()
        else_env = env.copy()
        self._refine(node.test, then_env, True)
        self._refine(node.test, else_env, False)
        then_returned = else_returned = False
        try:
            self._exec_block(node.body, then_env)
        except _ReturnSignal:
            then_returned = True
        try:
            self._exec_block(node.orelse, else_env)
        except _ReturnSignal:
            else_returned = True
        if then_returned and else_returned:
            raise _ReturnSignal(None)
        if then_returned:
            joined = else_env
        elif else_returned:
            joined = then_env
        else:
            joined = then_env.join(else_env)
        env.vars = joined.vars

    def _exec_while(self, node: ast.While, env: Env) -> None:
        state = env
        for _ in range(MAX_LOOP_ITERATIONS):
            # Evaluate the condition (may emit diagnostics).
            self._eval(node.test, state)
            body_env = state.copy()
            self._refine(node.test, body_env, True)
            try:
                self._exec_block(node.body, body_env)
            except (_BreakSignal, _ContinueSignal):
                pass
            except _ReturnSignal:
                # A returning path ends the loop on that path; keep joining.
                pass
            new_state = state.join(body_env)
            if new_state.same_state(state):
                state = new_state
                break
            state = new_state
        else:
            self._note_loop_bound(node.lineno)
        self._refine(node.test, state, False)
        env.vars = state.vars

    def _exec_for(self, node: ast.For, env: Env) -> None:
        """Desugar ``for x in c`` into the begin/end/increment iterator
        protocol when ``c`` is a tracked container, so invalidation-in-loop
        bugs (Fig. 4) are caught in idiomatic Python loops too::

            it = c.begin()
            while not it.equals(c.end()):
                x = it.deref()
                <body>
                it.increment()

        Other iterables run the body to an abstract fixpoint with opaque
        loop variables, so container effects inside the body still join.
        """
        line = node.lineno
        iterable = self._eval(node.iter, env)
        container_loop = (
            isinstance(iterable, AbstractContainer)
            and isinstance(node.target, ast.Name)
        )
        # "<...>" cannot collide with a user identifier.
        it_name = f"<for@{line}>"
        if container_loop:
            env.vars[it_name] = AbstractIterator(
                iterable, Position.BEGIN, Validity.VALID, iterable.epoch,
                may_be_end=True, origin_line=line,
            )
        state = env
        for _ in range(MAX_LOOP_ITERATIONS):
            body_env = state.copy()
            if container_loop:
                it = body_env.vars[it_name]
                # Loop entry implies the implicit `not it.equals(c.end())`.
                if isinstance(it, AbstractIterator):
                    it.may_be_end = False
                    if it.position is Position.END:
                        it.position = Position.UNKNOWN
                    it.container.maybe_empty = False
                    self._iterator_op(it, "deref", [], line)
                body_env.vars[node.target.id] = AbstractValue(node.target.id)
            else:
                self._bind_loop_target(node.target, body_env)
            advance = container_loop
            try:
                self._exec_block(node.body, body_env)
            except (_BreakSignal, _ReturnSignal):
                # Neither path reaches the implicit increment.
                advance = False
            except _ContinueSignal:
                pass
            if advance:
                it = body_env.vars.get(it_name)
                if isinstance(it, AbstractIterator):
                    self._iterator_op(it, "increment", [], line)
            new_state = state.join(body_env)
            if new_state.same_state(state):
                state = new_state
                break
            state = new_state
        else:
            self._note_loop_bound(node.lineno)
        if node.orelse:
            self._exec_block(node.orelse, state)
        state.vars.pop(it_name, None)
        env.vars = state.vars

    def _note_loop_bound(self, line: int) -> None:
        """The loop exhausted ``MAX_LOOP_ITERATIONS`` without the joined
        state stabilizing: effects of further iterations are invisible to
        this (legacy) engine.  Say so instead of pretending convergence."""
        tr = _trace.ACTIVE
        if tr is not None:
            tr.event(
                "stllint.loop_bound", cat="lint", engine="inline",
                function=self._inline_stack[0], line=line,
                bound=MAX_LOOP_ITERATIONS,
            )
        self.sink.note(MSG_UNSTABLE_LOOP, line)

    def _bind_loop_target(self, target: ast.expr, env: Env) -> None:
        if isinstance(target, ast.Name):
            env.vars[target.id] = AbstractValue(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, env)

    def _exec_try(self, node: ast.Try, env: Env) -> None:
        """May-analysis over exceptional control flow.  The handler entry
        state is the join of the states before and after the ``try`` body —
        an exception may fire anywhere inside it — and every iterator over
        a container the body *mutated* is conservatively havocked (it may
        have been invalidated part-way through)."""
        pre_epochs = {
            v.cid: v.epoch for v in env.vars.values()
            if isinstance(v, AbstractContainer)
        }
        body_env = env.copy()
        body_returned = False
        try:
            self._exec_block(node.body, body_env)
            if node.orelse:
                self._exec_block(node.orelse, body_env)
        except _ReturnSignal:
            body_returned = True
        result: Optional[Env] = None if body_returned else body_env
        for handler in node.handlers:
            h_env = env.join(body_env)
            self._havoc_mutated(h_env, pre_epochs)
            if handler.type is not None:
                self._eval(handler.type, h_env)
            if handler.name:
                h_env.vars[handler.name] = AbstractValue(handler.name)
            try:
                self._exec_block(handler.body, h_env)
            except _ReturnSignal:
                continue
            result = h_env if result is None else result.join(h_env)
        if result is None:
            # Every path returned (or raised); run finally, end this path.
            if node.finalbody:
                f_env = env.join(body_env)
                self._exec_block(node.finalbody, f_env)
            raise _ReturnSignal(None)
        if node.finalbody:
            self._exec_block(node.finalbody, result)
        env.vars = result.vars

    def _havoc_mutated(self, env: Env, pre_epochs: dict[int, int]) -> None:
        mutated = {
            v.cid for v in env.vars.values()
            if isinstance(v, AbstractContainer)
            and v.epoch != pre_epochs.get(v.cid, v.epoch)
        }
        tr = _trace.ACTIVE
        if tr is not None and mutated:
            tr.event(
                "stllint.havoc", cat="lint",
                function=self._inline_stack[0],
                containers=len(mutated),
            )
        for v in env.vars.values():
            if isinstance(v, AbstractIterator) and v.container.cid in mutated:
                v.invalidate(definitely=False)
            elif isinstance(v, AbstractContainer) and v.cid in mutated:
                v.properties.clear()
                v.maybe_empty = True

    # -- condition refinement ------------------------------------------------------

    def _refine(self, test: ast.expr, env: Env, taken: bool) -> None:
        """Path-sensitive refinement for the `it.equals(end)` idiom."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._refine(test.operand, env, not taken)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            # it == other / it != other sugar
            is_eq = isinstance(test.ops[0], ast.Eq)
            is_ne = isinstance(test.ops[0], ast.NotEq)
            if is_eq or is_ne:
                self._refine_equals(
                    test.left, test.comparators[0], env,
                    taken if is_eq else not taken,
                )
            return
        if (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Attribute)
            and test.func.attr == "equals"
            and len(test.args) == 1
        ):
            self._refine_equals(test.func.value, test.args[0], env, taken)

    def _refine_equals(
        self, left: ast.expr, right: ast.expr, env: Env, equal: bool
    ) -> None:
        lv = self._peek(left, env)
        rv = self._peek(right, env)
        if not isinstance(lv, AbstractIterator):
            lv, rv = rv, lv
            left, right = right, left
        if not isinstance(lv, AbstractIterator):
            return
        right_is_end = (
            isinstance(rv, AbstractIterator) and rv.position is Position.END
        ) or self._is_end_call(right)
        if not right_is_end:
            return
        if equal:
            lv.position = Position.END
            lv.may_be_end = False
        else:
            if lv.position is Position.END:
                lv.position = Position.UNKNOWN
            lv.may_be_end = False
            lv.container.maybe_empty = False

    @staticmethod
    def _is_end_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "end"
        )

    def _peek(self, node: ast.expr, env: Env) -> Any:
        """Evaluate without side effects where possible (names only)."""
        if isinstance(node, ast.Name):
            return env.vars.get(node.id)
        return None

    # -- expressions ------------------------------------------------------------------

    def _eval(self, node: ast.expr, env: Env) -> Any:
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Name):
            return env.vars.get(node.id, AbstractValue(node.id))
        if isinstance(node, ast.Constant):
            return AbstractValue(repr(node.value))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            inner = self._eval(node.operand, env)
            if isinstance(inner, AbstractBool):
                return inner.negate()
            return AbstractBool.UNKNOWN
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v, env)
            return AbstractBool.UNKNOWN
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for c in node.comparators:
                self._eval(c, env)
            return self._compare(node, env)
        if isinstance(node, ast.BinOp):
            self._eval(node.left, env)
            self._eval(node.right, env)
            return AbstractValue()
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            return AbstractValue(node.attr)
        # Anything else: evaluate children, return opaque.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return AbstractValue()

    def _compare(self, node: ast.Compare, env: Env) -> AbstractBool:
        lv = self._peek(node.left, env)
        rv = self._peek(node.comparators[0], env) if node.comparators else None
        if isinstance(lv, AbstractIterator) and isinstance(rv, AbstractIterator):
            return self._iterator_equals(lv, rv, node.lineno)
        return AbstractBool.UNKNOWN

    def _eval_call(self, node: ast.Call, env: Env) -> Any:
        line = node.lineno
        args = [self._eval(a, env) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value, env)
        if isinstance(node.func, ast.Attribute):
            recv = self._eval(node.func.value, env)
            return self._method_call(recv, node.func.attr, args, line, env)
        if isinstance(node.func, ast.Name):
            name = node.func.id
            handler = ALGORITHM_SPECS.get(name)
            if handler is not None:
                ctx = AlgorithmContext(self, args, line, name=name)
                if self.facts is None:
                    return handler(ctx)
                c = self._primary_container(args)
                before = frozenset(c.properties) if c is not None else None
                result = handler(ctx)
                if c is not None:
                    self.facts.record_call(
                        name, line, self._inline_stack[-1],
                        c.name or "?", c.kind, before,
                        frozenset(c.properties),
                    )
                return result
            callee = self.module_functions.get(name)
            if callee is not None and not node.keywords:
                return self._inline_call(name, callee, args, env, line)
            # Unknown free function: opaque result; arguments were already
            # evaluated (so a singular deref inside them is reported).
            return AbstractValue(f"{name}()")
        self._eval(node.func, env)
        return AbstractValue()

    # -- interprocedural analysis ------------------------------------------------

    def _inline_call(
        self, name: str, callee: ast.FunctionDef, args: list[Any],
        env: Env, line: int,
    ) -> Any:
        """Analyze a same-module callee with the caller's abstract
        arguments (bounded inlining).

        The callee runs in a child environment that carries every caller
        binding under a mangled name, so invalidation — which scans the
        active environment by container identity — reaches the caller's
        iterators exactly as it would have had the callee's body been
        written inline.  On return the (possibly joined/copied) caller
        bindings are written back.
        """
        a = callee.args
        if (
            a.vararg is not None or a.kwarg is not None or a.kwonlyargs
            or a.posonlyargs or len(args) != len(a.args)
        ):
            self._note_uninlined(name, args, line)
            return AbstractValue(f"{name}()")
        if name in self._inline_stack or len(self._inline_stack) > MAX_INLINE_DEPTH:
            self._note_uninlined(name, args, line)
            return AbstractValue(f"{name}()")
        # "<...>" cannot collide with user identifiers or nested prefixes
        # from a different depth.
        tr = _trace.ACTIVE
        if tr is not None:
            tr.event(
                "stllint.inline", cat="lint", callee=name, line=line,
                caller=self._inline_stack[-1],
                depth=len(self._inline_stack),
            )
        prefix = f"<inline{len(self._inline_stack)}:{name}>"
        callee_env = Env()
        for outer, value in env.vars.items():
            callee_env.vars[prefix + outer] = value
        for param, value in zip(a.args, args):
            callee_env.vars[param.arg] = value
        self._inline_stack.append(name)
        result: Any = AbstractValue(f"{name}()")
        try:
            self._exec_block(callee.body, callee_env)
        except _ReturnSignal as sig:
            if sig.value is not None:
                result = sig.value
        except (_BreakSignal, _ContinueSignal):
            pass
        finally:
            self._inline_stack.pop()
        for key, value in callee_env.vars.items():
            if key.startswith(prefix):
                env.vars[key[len(prefix):]] = value
        return result

    def _note_uninlined(self, name: str, args: list[Any], line: int) -> None:
        if any(
            isinstance(v, (AbstractContainer, AbstractIterator)) for v in args
        ):
            tr = _trace.ACTIVE
            if tr is not None:
                tr.event(
                    "stllint.uninlined", cat="lint", callee=name, line=line,
                    caller=self._inline_stack[-1],
                )
            self.sink.note(f"{name}(): {MSG_UNINLINED_CALL}", line)

    # -- container/iterator operations --------------------------------------------------

    @staticmethod
    def _primary_container(args: list[Any]) -> Optional[AbstractContainer]:
        """The container an algorithm call is 'about': the first container
        argument, else the first iterator argument's container."""
        for a in args:
            if isinstance(a, AbstractContainer):
                return a
        for a in args:
            if isinstance(a, AbstractIterator):
                return a.container
        return None

    def _mutate_properties(
        self, c: AbstractContainer, kind: str, line: int
    ) -> None:
        """Route a container mutation through the facts layer's
        data-driven invalidation tables instead of per-operation property
        discards, recording what was destroyed when facts are on."""
        survived = _invalidate_props(c.properties, kind)
        if self.facts is not None:
            for p in sorted(set(c.properties) - set(survived)):
                self.facts.record(
                    c.name or "?", p, line, "destroys", source=kind,
                    function=self._inline_stack[-1],
                )
        c.properties.clear()
        c.properties.update(survived)

    def _method_call(self, recv: Any, name: str, args: list[Any],
                     line: int, env: Env) -> Any:
        if isinstance(recv, AbstractContainer):
            return self._container_op(recv, name, args, line, env)
        if isinstance(recv, AbstractIterator):
            return self._iterator_op(recv, name, args, line)
        return AbstractValue(f".{name}()")

    def _container_op(
        self, c: AbstractContainer, name: str, args: list[Any], line: int,
        env: Env,
    ) -> Any:
        spec = CONTAINER_SPECS[c.kind]
        if name == "begin":
            return AbstractIterator(c, Position.BEGIN, Validity.VALID,
                                    c.epoch, origin_line=line)
        if name == "end":
            return AbstractIterator(c, Position.END, Validity.VALID,
                                    c.epoch, origin_line=line)
        if name in ("size", "empty"):
            return AbstractValue(f"{c.name}.{name}()")
        if name == "erase":
            target = args[0] if args else None
            if isinstance(target, AbstractIterator):
                self.check_iterator_use(
                    target, line, "attempt to erase through a singular iterator"
                )
                if target.position is Position.END:
                    self.sink.warning(
                        "attempt to erase at the past-the-end position", line
                    )
            self._apply_invalidation(c, spec.erase, target, env)
            c.mutate()
            self._mutate_properties(c, "erase", line)
            return AbstractIterator(c, Position.UNKNOWN, Validity.VALID,
                                    c.epoch, may_be_end=True, origin_line=line)
        if name == "insert":
            target = args[0] if args else None
            if isinstance(target, AbstractIterator):
                self.check_iterator_use(
                    target, line, "attempt to insert through a singular iterator"
                )
            self._apply_invalidation(c, spec.insert, target, env)
            c.mutate()
            self._mutate_properties(c, "insert", line)
            c.maybe_empty = False
            return AbstractIterator(c, Position.UNKNOWN, Validity.VALID,
                                    c.epoch, origin_line=line)
        if name in ("push_back", "push_front"):
            rule = spec.push_back if name == "push_back" else spec.push_front
            if rule is None:
                self.sink.warning(
                    f"container kind '{c.kind}' does not support {name}", line
                )
            else:
                self._apply_invalidation(c, rule, None, env)
            c.mutate()
            # The property tables know appending to a heap leaves
            # "heap except the last element" — push_heap's precondition.
            self._mutate_properties(c, "append", line)
            c.maybe_empty = False
            return AbstractValue()
        if name in ("pop_back", "pop_front"):
            self._apply_invalidation(c, spec.erase, None, env)  # conservative
            c.mutate()
            self._mutate_properties(c, "pop", line)
            return AbstractValue()
        if name == "remove":
            # Erase-by-value (the idiomatic Python spelling): same
            # invalidation behaviour as erase at an unknown position.
            self._apply_invalidation(c, spec.erase, None, env)
            c.mutate()
            self._mutate_properties(c, "remove", line)
            return AbstractValue()
        if name == "clear":
            self._invalidate_all(c, env, definitely=True)
            c.mutate()
            self._mutate_properties(c, "clear", line)
            c.maybe_empty = True
            return AbstractValue()
        return AbstractValue(f"{c.name}.{name}()")

    def _apply_invalidation(self, c: AbstractContainer, rule, target,
                            env: Env) -> None:
        if rule.others == "maybe":
            self._invalidate_all(c, env, definitely=False, skip=target)
        elif rule.others == "singular":
            self._invalidate_all(c, env, definitely=True, skip=target)
        if isinstance(target, AbstractIterator) and rule.target == "singular":
            target.invalidate(definitely=True)

    def _invalidate_all(
        self, c: AbstractContainer, env: Env, definitely: bool,
        skip: Any = None,
    ) -> None:
        # Invalidate through the *active* environment — during branch
        # execution that is a copy of the function-level env.
        for v in env.vars.values():
            if isinstance(v, AbstractIterator) and v.container.cid == c.cid \
                    and v is not skip:
                v.invalidate(definitely)

    def _iterator_op(
        self, it: AbstractIterator, name: str, args: list[Any], line: int
    ) -> Any:
        if name == "deref":
            self._check_deref(it, line)
            return AbstractValue("*it")
        if name == "set":
            self._check_deref(it, line)
            return AbstractValue()
        if name == "increment":
            self.check_iterator_use(it, line, MSG_SINGULAR_ADVANCE)
            if it.position is Position.END:
                self.sink.warning(MSG_PAST_END_ADVANCE, line)
            it.position = (
                Position.INTERIOR if it.position is Position.BEGIN
                else it.position if it.position is not Position.END
                else Position.UNKNOWN
            )
            it.may_be_end = True
            return AbstractValue()
        if name == "decrement":
            self.check_iterator_use(it, line, MSG_SINGULAR_ADVANCE)
            it.position = Position.UNKNOWN
            it.may_be_end = False
            return AbstractValue()
        if name == "advance":
            self.check_iterator_use(it, line, MSG_SINGULAR_ADVANCE)
            it.position = Position.UNKNOWN
            it.may_be_end = True
            return AbstractValue()
        if name == "clone":
            self.check_iterator_use(
                it, line, "attempt to copy a singular iterator"
            )
            return it.copy()
        if name == "equals":
            other = args[0] if args else None
            if isinstance(other, AbstractIterator):
                return self._iterator_equals(it, other, line)
            return AbstractBool.UNKNOWN
        if name == "distance":
            self.check_iterator_use(it, line, MSG_SINGULAR_ADVANCE)
            return AbstractValue("distance")
        return AbstractValue(f"it.{name}()")

    def _iterator_equals(
        self, a: AbstractIterator, b: AbstractIterator, line: int
    ) -> AbstractBool:
        if a.container.cid != b.container.cid:
            self.sink.warning(MSG_CROSS_CONTAINER, line)
            return AbstractBool.UNKNOWN
        if a.position is Position.END and b.position is Position.END:
            return AbstractBool.TRUE
        return AbstractBool.UNKNOWN

    # -- shared checks ---------------------------------------------------------------------

    def _check_deref(self, it: AbstractIterator, line: int) -> None:
        if it.validity is not Validity.VALID:
            # Fig. 4's message, at Warning severity exactly as the paper
            # reports it (a may-analysis cannot always prove the path is
            # taken, and STLlint reports the first tainted *use*).
            self.sink.warning(MSG_SINGULAR_DEREF, line)
            return
        if it.position is Position.END:
            self.sink.warning(MSG_PAST_END_DEREF, line)
            return
        if it.may_be_end:
            self.sink.warning(MSG_MAYBE_END_DEREF, line)

    def check_iterator_use(
        self, it: AbstractIterator, line: int, message: str
    ) -> None:
        if it.validity is not Validity.VALID:
            self.sink.warning(message, line)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def module_function_table(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Top-level functions of a module, for interprocedural analysis."""
    return {
        node.name: node for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def make_checker(
    engine: Optional[str],
    tree: ast.FunctionDef,
    source_lines: list[str],
    *,
    module_functions: Optional[dict[str, ast.FunctionDef]] = None,
    facts: Optional[FactRecorder] = None,
    summaries: Any = None,
) -> Checker:
    """Construct the checker for ``engine`` (None means
    :data:`DEFAULT_ENGINE`).  ``summaries`` is only meaningful for the
    fixpoint engine: share one table across a module's functions so
    interprocedural summaries are computed once per shape."""
    engine = engine or DEFAULT_ENGINE
    if engine == "inline":
        return Checker(tree, source_lines, module_functions=module_functions,
                       facts=facts)
    if engine == "fixpoint":
        from .dataflow import FixpointChecker

        return FixpointChecker(
            tree, source_lines, module_functions=module_functions,
            facts=facts, summaries=summaries,
        )
    raise ValueError(
        f"unknown analysis engine {engine!r}; expected one of {ENGINES}"
    )


def check_source(
    source: str, *, interprocedural: bool = True,
    engine: Optional[str] = None,
) -> DiagnosticSink:
    """Check every function in ``source``; returns a combined sink.

    With ``interprocedural=True`` (the default), calls between functions
    defined in ``source`` are analyzed across function boundaries —
    via memoized summaries under the default ``fixpoint`` engine, or by
    bounded inlining under ``engine="inline"`` (the legacy oracle).
    """
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    lines = source.splitlines()
    functions = module_function_table(tree) if interprocedural else {}
    combined = DiagnosticSink(lines)
    summaries: Any = None
    if (engine or DEFAULT_ENGINE) == "fixpoint":
        from .summaries import SummaryTable

        summaries = SummaryTable()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            sink = make_checker(
                engine, node, lines, module_functions=functions,
                summaries=summaries,
            ).run()
            for d in sink.diagnostics:
                combined.emit(d.severity, d.message, d.line)
    return combined


def check_function(
    fn_or_source: Any, *, engine: Optional[str] = None
) -> DiagnosticSink:
    """Check a single function given as source text or a Python function
    object (its source is retrieved with :mod:`inspect`)."""
    if isinstance(fn_or_source, str):
        return check_source(fn_or_source, engine=engine)
    import inspect

    return check_source(inspect.getsource(fn_or_source), engine=engine)
