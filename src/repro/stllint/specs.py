"""Library specifications: the behaviour summaries STLlint analyzes against.

"By analyzing the behavior of abstractions at a high level and ignoring the
implementation of the abstractions, STLlint is able to detect errors in the
use of libraries that could not be detected with traditional language-level
checking."  Concretely:

- :data:`CONTAINER_SPECS` gives each container kind its invalidation rule —
  the semantic iterator concept's per-model behaviour (Section 3.1: "the
  invalidation behavior of operations varies greatly across domains").
- :data:`ALGORITHM_SPECS` gives each generic algorithm its entry handler
  (precondition checks: sortedness for ``lower_bound``/``binary_search``),
  exit handler (postconditions: ``sort`` establishes sortedness), and
  result summary — the "algorithm specification extensions ... introduced
  via entry/exit handlers" of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    Position,
    Validity,
)
from .diagnostics import DiagnosticSink

SORTED = "sorted"
UNIQUE = "unique"
HEAP = "heap"
HEAP_TAIL = "heap-except-last"  # a heap plus one appended element


@dataclass(frozen=True)
class InvalidationRule:
    """What a mutating operation does to outstanding iterators.

    ``target``: effect on the iterator passed to the operation
    (``"singular"`` or ``"keep"``); ``others``: effect on every other
    iterator of the same container (``"keep"``, ``"maybe"``, ``"singular"``).
    """

    target: str
    others: str


@dataclass(frozen=True)
class ContainerSpec:
    """Invalidation semantics for one container kind (ISO C++ rules,
    matching the dynamic behaviour of :mod:`repro.sequences`)."""

    kind: str
    erase: InvalidationRule
    insert: InvalidationRule
    push_back: Optional[InvalidationRule] = None
    push_front: Optional[InvalidationRule] = None


CONTAINER_SPECS: dict[str, ContainerSpec] = {
    # vector: erase/insert invalidate at-or-after (abstractly: the target
    # definitely, the rest maybe); push_back maybe-invalidates everything
    # (reallocation).
    "vector": ContainerSpec(
        "vector",
        erase=InvalidationRule(target="singular", others="maybe"),
        insert=InvalidationRule(target="singular", others="maybe"),
        push_back=InvalidationRule(target="keep", others="maybe"),
    ),
    # list: erase invalidates only the erased position; nothing else ever.
    "list": ContainerSpec(
        "list",
        erase=InvalidationRule(target="singular", others="keep"),
        insert=InvalidationRule(target="keep", others="keep"),
        push_back=InvalidationRule(target="keep", others="keep"),
        push_front=InvalidationRule(target="keep", others="keep"),
    ),
    # deque: any insert/erase invalidates all iterators.
    "deque": ContainerSpec(
        "deque",
        erase=InvalidationRule(target="singular", others="singular"),
        insert=InvalidationRule(target="singular", others="singular"),
        push_back=InvalidationRule(target="keep", others="maybe"),
        push_front=InvalidationRule(target="keep", others="maybe"),
    ),
}

#: Messages, worded as the paper reports them.
MSG_SINGULAR_DEREF = "attempt to dereference a singular iterator"
MSG_MAYBE_SINGULAR_DEREF = "attempt to dereference a singular iterator"
MSG_SINGULAR_ADVANCE = "attempt to advance a singular iterator"
MSG_PAST_END_DEREF = "attempt to dereference a past-the-end iterator"
MSG_PAST_END_ADVANCE = "attempt to advance an iterator past the end"
MSG_MAYBE_END_DEREF = (
    "iterator may be past-the-end; compare it against end() before "
    "dereferencing"
)
MSG_CROSS_CONTAINER = "comparing iterators into two different containers"
MSG_UNSORTED_LOWER_BOUND = (
    "the incoming sequence [first, last) may not be sorted, but this "
    "algorithm requires a sorted sequence"
)
MSG_NOT_A_HEAP = (
    "the container may not satisfy the heap property required by this "
    "algorithm (establish it with make_heap)"
)
MSG_SORTED_LINEAR_FIND = (
    "potential optimization: the incoming sequence [first, last) is sorted, "
    "but will be searched linearly with this algorithm. Consider replacing "
    "this algorithm with one specialized for sorted sequences "
    "(e.g., lower_bound)"
)
MSG_UNMODELED_STMT = (
    "statement is not modeled by the checker but mentions a tracked "
    "container or iterator; analysis may be incomplete here"
)
MSG_UNINLINED_CALL = (
    "call passes tracked container state to a function the checker cannot "
    "inline (recursion or depth limit); its effects are not analyzed"
)


class AlgorithmContext:
    """What an algorithm spec handler gets to work with."""

    def __init__(self, interp: Any, args: list[Any], line: int) -> None:
        self.interp = interp
        self.args = args
        self.line = line
        self.sink: DiagnosticSink = interp.sink

    def iterator_args(self) -> list[AbstractIterator]:
        return [a for a in self.args if isinstance(a, AbstractIterator)]

    def range_container(self) -> Optional[AbstractContainer]:
        its = self.iterator_args()
        if len(its) >= 2 and its[0].container.cid != its[1].container.cid:
            self.sink.warning(MSG_CROSS_CONTAINER, self.line)
        return its[0].container if its else None

    def check_use(self, it: AbstractIterator) -> None:
        self.interp.check_iterator_use(it, self.line, MSG_SINGULAR_ADVANCE)


AlgorithmHandler = Callable[[AlgorithmContext], Any]


def _spec_find(ctx: AlgorithmContext) -> Any:
    """find(first, last, value): linear search.  Exit: result may be end.
    Flow-sensitive suggestion (Section 3.2): linear search over a range
    known to be sorted should be lower_bound."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        return AbstractValue("find-result")
    if SORTED in c.properties:
        ctx.sink.suggestion(MSG_SORTED_LINEAR_FIND, ctx.line)
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_sort(ctx: AlgorithmContext) -> Any:
    """sort(first, last) or sort(c): exit handler establishes sortedness —
    "sorting algorithms introduce a sortedness property" (Section 3.1)."""
    c: Optional[AbstractContainer] = None
    for a in ctx.args:
        if isinstance(a, AbstractContainer):
            c = a
        elif isinstance(a, AbstractIterator):
            ctx.check_use(a)
            c = a.container
    if c is not None:
        c.properties.add(SORTED)
    return AbstractValue()


def _spec_lower_bound(ctx: AlgorithmContext) -> Any:
    """lower_bound(first, last, value): entry handler checks the sortedness
    precondition."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None and SORTED not in c.properties:
        ctx.sink.warning(MSG_UNSORTED_LOWER_BOUND, ctx.line)
    if c is None:
        return AbstractValue("lower-bound-result")
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_binary_search(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None and SORTED not in c.properties:
        ctx.sink.warning(MSG_UNSORTED_LOWER_BOUND, ctx.line)
    return AbstractBool.UNKNOWN


def _spec_max_element(ctx: AlgorithmContext) -> Any:
    """max_element(first, last): returns an iterator that is end for an
    empty range — dereferencing it unchecked is a range violation."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        return AbstractValue("max-element-result")
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_copy(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    its = ctx.iterator_args()
    if len(its) >= 3:
        out = its[2]
        return AbstractIterator(
            out.container, Position.UNKNOWN, Validity.VALID,
            out.container.epoch, origin_line=ctx.line,
        )
    return AbstractValue()


def _spec_reverse(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None:
        c.properties.discard(SORTED)
    return AbstractValue()


def _spec_is_sorted(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None and SORTED in c.properties:
        return AbstractBool.TRUE
    return AbstractBool.UNKNOWN


def _container_arg(ctx: AlgorithmContext):
    for a in ctx.args:
        if isinstance(a, AbstractContainer):
            return a
    its = ctx.iterator_args()
    return its[0].container if its else None


def _spec_make_heap(ctx: AlgorithmContext) -> Any:
    """Exit handler: establishes the heap property (and destroys
    sortedness — a heap is not a sorted sequence)."""
    c = _container_arg(ctx)
    if c is not None:
        c.properties.add(HEAP)
        c.properties.discard(SORTED)
    return AbstractValue()


def _spec_push_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires a heap, or a heap with one appended element (the
    state push_back leaves).  Exit: full heap property restored."""
    c = _container_arg(ctx)
    if c is not None:
        if HEAP not in c.properties and HEAP_TAIL not in c.properties:
            ctx.sink.warning(MSG_NOT_A_HEAP, ctx.line)
        c.properties.discard(HEAP_TAIL)
        c.properties.add(HEAP)
    return AbstractValue()


def _spec_pop_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires the heap property; the prefix remains a heap."""
    c = _container_arg(ctx)
    if c is not None and HEAP not in c.properties:
        ctx.sink.warning(MSG_NOT_A_HEAP, ctx.line)
    return AbstractValue()


def _spec_sort_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires heap.  Exit: sorted, no longer a heap."""
    c = _container_arg(ctx)
    if c is not None:
        if HEAP not in c.properties:
            ctx.sink.warning(MSG_NOT_A_HEAP, ctx.line)
        c.properties.discard(HEAP)
        c.properties.add(SORTED)
    return AbstractValue()


ALGORITHM_SPECS: dict[str, AlgorithmHandler] = {
    "find": _spec_find,
    "find_if": _spec_find,
    "sort": _spec_sort,
    "stable_sort": _spec_sort,
    "lower_bound": _spec_lower_bound,
    "upper_bound": _spec_lower_bound,
    "binary_search": _spec_binary_search,
    "max_element": _spec_max_element,
    "min_element": _spec_max_element,
    "copy": _spec_copy,
    "reverse": _spec_reverse,
    "is_sorted": _spec_is_sorted,
    "make_heap": _spec_make_heap,
    "push_heap": _spec_push_heap,
    "pop_heap": _spec_pop_heap,
    "sort_heap": _spec_sort_heap,
}


def register_algorithm_spec(
    name: str, handler: AlgorithmHandler, *, override: bool = False
) -> None:
    """Extension point: libraries ship specifications for their own
    algorithms ("library-supplied semantic specifications").

    Registering a name that already has a spec (including the built-in
    ones) raises :class:`ValueError` unless ``override=True`` — silently
    replacing a specification would silently change every subsequent
    analysis.
    """
    if not override and name in ALGORITHM_SPECS:
        raise ValueError(
            f"algorithm spec {name!r} is already registered; pass "
            f"override=True to replace it"
        )
    ALGORITHM_SPECS[name] = handler


def unregister_algorithm_spec(name: str) -> Optional[AlgorithmHandler]:
    """Remove a registered spec (returns it, or None if absent).  Calls to
    an unregistered name are treated as opaque: arguments are still
    evaluated, but no container effects are assumed."""
    return ALGORITHM_SPECS.pop(name, None)
