"""Library specifications: the behaviour summaries STLlint analyzes against.

"By analyzing the behavior of abstractions at a high level and ignoring the
implementation of the abstractions, STLlint is able to detect errors in the
use of libraries that could not be detected with traditional language-level
checking."  Concretely:

- :data:`CONTAINER_SPECS` gives each container kind its invalidation rule —
  the semantic iterator concept's per-model behaviour (Section 3.1: "the
  invalidation behavior of operations varies greatly across domains").
- :data:`ALGORITHM_SPECS` gives each generic algorithm its entry handler
  (precondition checks: sortedness for ``lower_bound``/``binary_search``),
  exit handler (postconditions: ``sort`` establishes sortedness), and
  result summary — the "algorithm specification extensions ... introduced
  via entry/exit handlers" of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..facts.properties import (
    DISTINCT,
    HEAP,
    HEAP_TAIL,
    SORTED,
    STRICTLY_SORTED,
    closure,
    invalidate,
)
from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    Position,
    Validity,
)
from .diagnostics import DiagnosticSink

# Historical alias: the spec layer called the no-duplicates property
# UNIQUE before it moved into repro.facts.
UNIQUE = DISTINCT


@dataclass(frozen=True)
class InvalidationRule:
    """What a mutating operation does to outstanding iterators.

    ``target``: effect on the iterator passed to the operation
    (``"singular"`` or ``"keep"``); ``others``: effect on every other
    iterator of the same container (``"keep"``, ``"maybe"``, ``"singular"``).
    """

    target: str
    others: str


@dataclass(frozen=True)
class ContainerSpec:
    """Invalidation semantics for one container kind (ISO C++ rules,
    matching the dynamic behaviour of :mod:`repro.sequences`)."""

    kind: str
    erase: InvalidationRule
    insert: InvalidationRule
    push_back: Optional[InvalidationRule] = None
    push_front: Optional[InvalidationRule] = None


CONTAINER_SPECS: dict[str, ContainerSpec] = {
    # vector: erase/insert invalidate at-or-after (abstractly: the target
    # definitely, the rest maybe); push_back maybe-invalidates everything
    # (reallocation).
    "vector": ContainerSpec(
        "vector",
        erase=InvalidationRule(target="singular", others="maybe"),
        insert=InvalidationRule(target="singular", others="maybe"),
        push_back=InvalidationRule(target="keep", others="maybe"),
    ),
    # list: erase invalidates only the erased position; nothing else ever.
    "list": ContainerSpec(
        "list",
        erase=InvalidationRule(target="singular", others="keep"),
        insert=InvalidationRule(target="keep", others="keep"),
        push_back=InvalidationRule(target="keep", others="keep"),
        push_front=InvalidationRule(target="keep", others="keep"),
    ),
    # deque: any insert/erase invalidates all iterators.
    "deque": ContainerSpec(
        "deque",
        erase=InvalidationRule(target="singular", others="singular"),
        insert=InvalidationRule(target="singular", others="singular"),
        push_back=InvalidationRule(target="keep", others="maybe"),
        push_front=InvalidationRule(target="keep", others="maybe"),
    ),
    # Storage backends behind the Vector façade: the invalidation rules
    # are a property of the container *interface*, not the
    # representation, so the contiguous (array/mmap) and sqlite-backed
    # kinds follow the vector rules verbatim.
    "contig": ContainerSpec(
        "contig",
        erase=InvalidationRule(target="singular", others="maybe"),
        insert=InvalidationRule(target="singular", others="maybe"),
        push_back=InvalidationRule(target="keep", others="maybe"),
    ),
    "sqlite": ContainerSpec(
        "sqlite",
        erase=InvalidationRule(target="singular", others="maybe"),
        insert=InvalidationRule(target="singular", others="maybe"),
        push_back=InvalidationRule(target="keep", others="maybe"),
    ),
}

#: Messages, worded as the paper reports them.
MSG_SINGULAR_DEREF = "attempt to dereference a singular iterator"
MSG_MAYBE_SINGULAR_DEREF = "attempt to dereference a singular iterator"
MSG_SINGULAR_ADVANCE = "attempt to advance a singular iterator"
MSG_PAST_END_DEREF = "attempt to dereference a past-the-end iterator"
MSG_PAST_END_ADVANCE = "attempt to advance an iterator past the end"
MSG_MAYBE_END_DEREF = (
    "iterator may be past-the-end; compare it against end() before "
    "dereferencing"
)
MSG_CROSS_CONTAINER = "comparing iterators into two different containers"
MSG_UNSORTED_LOWER_BOUND = (
    "the incoming sequence [first, last) may not be sorted, but this "
    "algorithm requires a sorted sequence"
)
MSG_NOT_A_HEAP = (
    "the container may not satisfy the heap property required by this "
    "algorithm (establish it with make_heap)"
)
MSG_SORTED_LINEAR_FIND = (
    "potential optimization: the incoming sequence [first, last) is sorted, "
    "but will be searched linearly with this algorithm. Consider replacing "
    "this algorithm with one specialized for sorted sequences "
    "(e.g., lower_bound)"
)
MSG_UNMODELED_STMT = (
    "statement is not modeled by the checker but mentions a tracked "
    "container or iterator; analysis may be incomplete here"
)
MSG_UNINLINED_CALL = (
    "call passes tracked container state to a function the checker cannot "
    "inline (recursion or depth limit); its effects are not analyzed"
)
MSG_UNSTABLE_LOOP = (
    "loop analysis hit the iteration bound before the abstract state "
    "stabilized; effects of later iterations may be missed (re-run with "
    "--engine fixpoint for a sound result)"
)


class AlgorithmContext:
    """What an algorithm spec handler gets to work with.

    Besides argument plumbing, the context is the handlers' interface to
    the :mod:`repro.facts` layer: :meth:`establish`, :meth:`destroy`,
    :meth:`require`, and :meth:`apply_mutation` both update the abstract
    container state and (when the interpreter carries a
    :class:`~repro.facts.records.FactRecorder`) record what happened, so
    entry/exit handlers *produce* queryable facts instead of mutating
    interpreter-private sets.
    """

    def __init__(
        self, interp: Any, args: list[Any], line: int, name: str = ""
    ) -> None:
        self.interp = interp
        self.args = args
        self.line = line
        self.name = name
        self.sink: DiagnosticSink = interp.sink

    def iterator_args(self) -> list[AbstractIterator]:
        return [a for a in self.args if isinstance(a, AbstractIterator)]

    def range_container(self) -> Optional[AbstractContainer]:
        its = self.iterator_args()
        if len(its) >= 2 and its[0].container.cid != its[1].container.cid:
            self.sink.warning(MSG_CROSS_CONTAINER, self.line)
        return its[0].container if its else None

    def check_use(self, it: AbstractIterator) -> None:
        self.interp.check_iterator_use(it, self.line, MSG_SINGULAR_ADVANCE)

    # -- property/fact interface ------------------------------------------

    def holds(self, c: AbstractContainer, prop: str) -> bool:
        """Does ``prop`` hold (under implication closure) on ``c``?"""
        return str(prop) in closure(c.properties)

    def establish(self, c: AbstractContainer, *props: str) -> None:
        for p in props:
            c.properties.add(p)

    def destroy(self, c: AbstractContainer, *props: str) -> None:
        for p in props:
            c.properties.discard(p)

    def apply_mutation(self, c: AbstractContainer, kind: str) -> None:
        """Data-driven invalidation: drop/weaken ``c``'s properties per
        the :data:`repro.facts.properties.MUTATIONS` tables."""
        survived = invalidate(c.properties, kind)
        c.properties.clear()
        c.properties.update(survived)

    def require(self, c: AbstractContainer, prop: str, message: str) -> bool:
        """Entry-handler precondition check: warn (and record a
        ``requires-missing`` fact) when ``prop`` cannot be assumed."""
        ok = self.holds(c, prop)
        rec = getattr(self.interp, "facts", None)
        if rec is not None:
            rec.record(
                c.name or "?", prop, self.line,
                "requires" if ok else "requires-missing",
                source=self.name,
                function=self.interp._inline_stack[-1],
            )
        if not ok:
            self.sink.warning(message, self.line)
        return ok


AlgorithmHandler = Callable[[AlgorithmContext], Any]


def _spec_find(ctx: AlgorithmContext) -> Any:
    """find(first, last, value): linear search.  Exit: result may be end.
    Flow-sensitive suggestion (Section 3.2): linear search over a range
    known to be sorted should be lower_bound."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        return AbstractValue("find-result")
    if ctx.holds(c, SORTED):
        ctx.sink.suggestion(MSG_SORTED_LINEAR_FIND, ctx.line)
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_sort(ctx: AlgorithmContext) -> Any:
    """sort(first, last) or sort(c): exit handler establishes sortedness —
    "sorting algorithms introduce a sortedness property" (Section 3.1)."""
    c: Optional[AbstractContainer] = None
    for a in ctx.args:
        if isinstance(a, AbstractContainer):
            c = a
        elif isinstance(a, AbstractIterator):
            ctx.check_use(a)
            c = a.container
    if c is not None:
        ctx.destroy(c, HEAP, HEAP_TAIL)
        ctx.establish(c, SORTED)
    return AbstractValue()


def _spec_lower_bound(ctx: AlgorithmContext) -> Any:
    """lower_bound(first, last, value): entry handler checks the sortedness
    precondition."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None:
        ctx.require(c, SORTED, MSG_UNSORTED_LOWER_BOUND)
    if c is None:
        return AbstractValue("lower-bound-result")
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_indexed_find(ctx: AlgorithmContext) -> Any:
    """indexed_find(c, value) or indexed_find(first, last, value): search
    through a persistent backend's value index.  Entry handler checks the
    same sortedness precondition as lower_bound — the fact that licenses
    the optimizer's rewrite must still hold when the rewritten code is
    re-analyzed."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        for a in ctx.args:
            if isinstance(a, AbstractContainer):
                c = a
                break
    if c is not None:
        ctx.require(c, SORTED, MSG_UNSORTED_LOWER_BOUND)
    if c is None:
        return AbstractValue("indexed-find-result")
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_binary_search(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None:
        ctx.require(c, SORTED, MSG_UNSORTED_LOWER_BOUND)
    return AbstractBool.UNKNOWN


def _spec_max_element(ctx: AlgorithmContext) -> Any:
    """max_element(first, last): returns an iterator that is end for an
    empty range — dereferencing it unchecked is a range violation."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        return AbstractValue("max-element-result")
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _spec_copy(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    its = ctx.iterator_args()
    if len(its) >= 3:
        out = its[2]
        return AbstractIterator(
            out.container, Position.UNKNOWN, Validity.VALID,
            out.container.epoch, origin_line=ctx.line,
        )
    return AbstractValue()


def _spec_reverse(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None:
        ctx.apply_mutation(c, "reverse")
    return AbstractValue()


def _spec_is_sorted(ctx: AlgorithmContext) -> Any:
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is not None and ctx.holds(c, SORTED):
        return AbstractBool.TRUE
    return AbstractBool.UNKNOWN


def _spec_unique(ctx: AlgorithmContext) -> Any:
    """unique(first, last): removes adjacent duplicates.  Exit: on a
    sorted range no two remaining elements compare equal, so the range is
    strictly sorted; on an arbitrary range only adjacent-distinctness is
    known, which we do not model."""
    for it in ctx.iterator_args():
        ctx.check_use(it)
    c = ctx.range_container()
    if c is None:
        return AbstractValue("unique-result")
    if ctx.holds(c, SORTED):
        ctx.establish(c, STRICTLY_SORTED, DISTINCT)
    return AbstractIterator(
        c, Position.UNKNOWN, Validity.VALID, c.epoch,
        may_be_end=True, origin_line=ctx.line,
    )


def _container_arg(ctx: AlgorithmContext):
    for a in ctx.args:
        if isinstance(a, AbstractContainer):
            return a
    its = ctx.iterator_args()
    return its[0].container if its else None


def _spec_make_heap(ctx: AlgorithmContext) -> Any:
    """Exit handler: establishes the heap property.  The reordering is a
    "make-heap" mutation — sortedness is destroyed by the property
    tables, not by an explicit discard here."""
    c = _container_arg(ctx)
    if c is not None:
        ctx.apply_mutation(c, "make-heap")
        ctx.establish(c, HEAP)
    return AbstractValue()


def _spec_push_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires a heap, or a heap with one appended element (the
    state push_back leaves).  Exit: full heap property restored."""
    c = _container_arg(ctx)
    if c is not None:
        if not (ctx.holds(c, HEAP) or ctx.holds(c, HEAP_TAIL)):
            ctx.require(c, HEAP, MSG_NOT_A_HEAP)
        ctx.destroy(c, HEAP_TAIL)
        ctx.establish(c, HEAP)
    return AbstractValue()


def _spec_pop_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires the heap property; the prefix remains a heap."""
    c = _container_arg(ctx)
    if c is not None:
        ctx.require(c, HEAP, MSG_NOT_A_HEAP)
    return AbstractValue()


def _spec_sort_heap(ctx: AlgorithmContext) -> Any:
    """Entry: requires heap.  Exit: sorted, no longer a heap."""
    c = _container_arg(ctx)
    if c is not None:
        ctx.require(c, HEAP, MSG_NOT_A_HEAP)
        ctx.destroy(c, HEAP)
        ctx.establish(c, SORTED)
    return AbstractValue()


ALGORITHM_SPECS: dict[str, AlgorithmHandler] = {
    "find": _spec_find,
    "find_if": _spec_find,
    "sort": _spec_sort,
    "stable_sort": _spec_sort,
    "lower_bound": _spec_lower_bound,
    "upper_bound": _spec_lower_bound,
    "indexed_find": _spec_indexed_find,
    "binary_search": _spec_binary_search,
    "max_element": _spec_max_element,
    "min_element": _spec_max_element,
    "copy": _spec_copy,
    "reverse": _spec_reverse,
    "is_sorted": _spec_is_sorted,
    "unique": _spec_unique,
    "make_heap": _spec_make_heap,
    "push_heap": _spec_push_heap,
    "pop_heap": _spec_pop_heap,
    "sort_heap": _spec_sort_heap,
}


#: Monomorphized spellings the optimizer's OPT-MONO pass may rewrite a
#: generic call site to, keyed by (algorithm, container kind).  Each
#: spelling is a module-level trampoline in repro.sequences.algorithms
#: with the SAME semantic specification as the base algorithm, so the
#: verify stage's re-lint sees identical container effects (a rewritten
#: ``sort`` still establishes SORTED for the downstream find ->
#: lower_bound chain).
MONO_ALGORITHM_SPELLINGS: dict[tuple[str, str], str] = {
    ("sort", "vector"): "sort__vector",
    ("sort", "list"): "sort__list",
    ("sort", "deque"): "sort__deque",
}

for _mono_key, _mono_name in MONO_ALGORITHM_SPELLINGS.items():
    ALGORITHM_SPECS[_mono_name] = ALGORITHM_SPECS[_mono_key[0]]
del _mono_key, _mono_name


#: Backend-optimal spellings the cost-aware pass may rewrite a generic
#: call on a persistent container kind to, keyed by (algorithm, kind).
#: Like the monomorphized spellings, each aliases the base algorithm's
#: semantic specification where the container effects are identical —
#: ``backend_sort`` still establishes SORTED, so a verified rewrite keeps
#: the facts every downstream selection relied on.  ``indexed_find`` is
#: NOT an alias: it acquires lower_bound's sortedness *pre*condition
#: (spec above), which the verify re-lint then actually checks.
BACKEND_ALGORITHM_SPELLINGS: dict[tuple[str, str], str] = {
    ("find", "sqlite"): "indexed_find",
    ("sort", "sqlite"): "backend_sort",
}

ALGORITHM_SPECS["backend_sort"] = ALGORITHM_SPECS["sort"]


def register_algorithm_spec(
    name: str, handler: AlgorithmHandler, *, override: bool = False
) -> None:
    """Extension point: libraries ship specifications for their own
    algorithms ("library-supplied semantic specifications").

    Registering a name that already has a spec (including the built-in
    ones) raises :class:`ValueError` unless ``override=True`` — silently
    replacing a specification would silently change every subsequent
    analysis.
    """
    if not override and name in ALGORITHM_SPECS:
        raise ValueError(
            f"algorithm spec {name!r} is already registered; pass "
            f"override=True to replace it"
        )
    ALGORITHM_SPECS[name] = handler


def unregister_algorithm_spec(name: str) -> Optional[AlgorithmHandler]:
    """Remove a registered spec (returns it, or None if absent).  Calls to
    an unregistered name are treated as opaque: arguments are still
    evaluated, but no container effects are assumed."""
    return ALGORITHM_SPECS.pop(name, None)
