"""Semantic archetypes (Section 3.1).

"STLlint extends the notion of concept archetypes ... to *semantic*
archetypes, which emulate the behavior of the most restrictive model of a
particular concept. ... STLlint can detect the semantic errors resulting
from mischaracterizing the concept requirements of max_element using a
semantic archetype of an Input Iterator, which permits only one traversal
of the sequence."

:class:`SinglePassSequence` is that most-restrictive Input Iterator model:
a real, runnable container whose iterators share one traversal token —
advancing *any* iterator past a position revokes every other iterator at or
before it.  Algorithms that honour the single-pass contract (``find``,
``for_each``, ``accumulate``) run fine; algorithms that quietly rely on the
Forward Iterator multipass property (``max_element`` keeps an iterator to
the best element while scanning on) trip a :class:`MultipassViolation`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..concepts.builtins import ForwardIterator, InputIterator
from ..concepts.errors import ArchetypeViolation


class MultipassViolation(ArchetypeViolation):
    """An algorithm used an Input Iterator as if it were multipass."""

    def __init__(self, detail: str) -> None:
        # ArchetypeViolation(operation, concept, detail)
        super().__init__("multipass traversal", "Input Iterator", detail)


class SinglePassIterator:
    """An iterator over a :class:`SinglePassSequence`.

    Concept interface: ``deref``/``increment``/``equals``/``clone`` — so it
    is *syntactically* a Forward Iterator; the restriction is purely
    semantic, which is why only a semantic archetype can expose the bug.
    """

    value_type: type = object

    def __init__(self, seq: "SinglePassSequence", index: int) -> None:
        self._seq = seq
        self._index = index

    @property
    def container(self) -> "SinglePassSequence":
        return self._seq

    def _check_live(self, what: str) -> None:
        if self._index < self._seq.consumed_up_to and not self._at_end():
            raise MultipassViolation(
                f"{what} of an input-iterator position that was already "
                f"passed (position {self._index}, sequence consumed up to "
                f"{self._seq.consumed_up_to}); Input Iterator permits only "
                f"one traversal"
            )

    def _at_end(self) -> bool:
        return self._index >= len(self._seq.items)

    def deref(self) -> Any:
        self._check_live("dereference")
        if self._at_end():
            raise IndexError("dereference of past-the-end input iterator")
        return self._seq.items[self._index]

    def increment(self) -> None:
        self._check_live("increment")
        if self._at_end():
            raise IndexError("increment past the end")
        self._index += 1
        # Consuming: every copy at an earlier position is now dead.
        self._seq.consumed_up_to = max(self._seq.consumed_up_to, self._index)

    def equals(self, other: "SinglePassIterator") -> bool:
        return self._seq is other._seq and self._index == other._index

    def clone(self) -> "SinglePassIterator":
        self._check_live("copy")
        return type(self)(self._seq, self._index)

    def __repr__(self) -> str:
        return f"<single-pass iter @{self._index}>"


class SinglePassSequence:
    """The semantic archetype of a single-pass (Input Iterator) range —
    think ``istream_iterator``: once read past, gone."""

    value_type: type = object
    iterator: type = SinglePassIterator

    def __init__(self, items: Iterable[Any]) -> None:
        self.items = list(items)
        self.consumed_up_to = 0

    def begin(self) -> SinglePassIterator:
        return SinglePassIterator(self, 0)

    def end(self) -> SinglePassIterator:
        return SinglePassIterator(self, len(self.items))

    def size(self) -> int:
        return len(self.items)


class MultiPassSequence(SinglePassSequence):
    """The corresponding Forward Iterator semantic archetype: identical
    interface, no consumption — the *minimal* strengthening max_element
    actually needs."""

    def __init__(self, items: Iterable[Any]) -> None:
        super().__init__(items)

    class _It(SinglePassIterator):
        def _check_live(self, what: str) -> None:
            pass

        def increment(self) -> None:
            if self._at_end():
                raise IndexError("increment past the end")
            self._index += 1

    iterator = _It

    def begin(self):
        return MultiPassSequence._It(self, 0)

    def end(self):
        return MultiPassSequence._It(self, len(self.items))


def check_traversal_requirement(
    algorithm: Callable[..., Any],
    items: Sequence[Any] = (3, 1, 4, 1, 5, 9, 2, 6),
    extra_args: tuple = (),
) -> str:
    """Classify an algorithm's minimal traversal concept by running it
    against the two semantic archetypes.

    Returns ``"input iterator"`` when the algorithm honours single-pass,
    ``"forward iterator"`` when it needs multipass, or raises whatever
    non-traversal error the algorithm produced.
    """
    mp = MultiPassSequence(items)
    algorithm(mp.begin(), mp.end(), *extra_args)  # must work at all
    sp = SinglePassSequence(items)
    try:
        algorithm(sp.begin(), sp.end(), *extra_args)
    except MultipassViolation:
        return "forward iterator"
    return "input iterator"
