"""Summary-based interprocedural analysis for the fixpoint engine.

The legacy interpreter analyzed same-module calls by *bounded inlining*:
re-run the callee's body inside the caller's abstract state, up to
``MAX_INLINE_DEPTH``, losing all effects past the bound.  This module
replaces that with the classic separate-analysis discipline (the
"analyze each component once against its specification" idea the paper's
generic-programming methodology is built on): each callee is analyzed
**once per abstract argument shape**, producing an input→output
:class:`Summary` that is memoized and replayed at every call site.

A *shape* captures what the transfer functions can observe about an
argument: container kind, closed property set, emptiness, iterator
position/validity, and — crucially — the *aliasing pattern* (which
arguments share a container), via per-class indices.  Two call sites
passing arguments with equal shapes provably drive the callee's abstract
execution identically, so the memoization is exact, not heuristic.

Effects on the *caller* are captured without seeing the caller's
environment by planting one hidden **sentinel iterator** per container
class before analyzing the callee: the sentinel models "some iterator
the caller holds into this container", and its final validity is
precisely the invalidation the callee inflicts on every such iterator
(the per-kind ``others`` rules of ``CONTAINER_SPECS``, transitively
through any helpers the callee itself calls).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Optional

from ..trace import core as _trace
from .abstract_values import (
    AbstractBool,
    AbstractContainer,
    AbstractIterator,
    AbstractValue,
    Position,
    Validity,
)
from .diagnostics import Severity
from .interpreter import Env


@dataclass(frozen=True)
class ClassEffect:
    """Net effect of one call on one container alias class."""

    mutated: bool
    properties_after: frozenset[str]
    maybe_empty_after: bool
    others: str  # "keep" | "maybe" | "singular" — effect on caller iterators


@dataclass
class Summary:
    """One callee's input→output behaviour for one argument shape."""

    name: str
    diagnostics: list[tuple[Severity, str, int]] = field(default_factory=list)
    class_effects: dict[int, ClassEffect] = field(default_factory=dict)
    #: arg index -> (position, validity, may_be_end) final state of an
    #: iterator argument, or None when the callee rebound the parameter
    #: (fall back to the class-level invalidation only).
    iter_arg_effects: dict[int, Optional[tuple]] = field(default_factory=dict)
    ret: tuple = ("none",)
    converged: bool = True


def arg_shapes(args: list[Any]) -> tuple[tuple, dict[int, int]]:
    """Abstract shapes for a call's arguments plus the cid→alias-class
    mapping used to build them."""
    classes: dict[int, int] = {}

    def class_of(c: AbstractContainer) -> int:
        if c.cid not in classes:
            classes[c.cid] = len(classes)
        return classes[c.cid]

    shapes: list[tuple] = []
    for v in args:
        if isinstance(v, AbstractContainer):
            shapes.append((
                "C", class_of(v), v.kind, frozenset(v.properties),
                v.maybe_empty,
            ))
        elif isinstance(v, AbstractIterator):
            c = v.container
            shapes.append((
                "I", class_of(c), c.kind, frozenset(c.properties),
                c.maybe_empty, v.position, v.validity, v.may_be_end,
            ))
        elif isinstance(v, AbstractBool):
            shapes.append(("B", v))
        else:
            shapes.append(("V",))
    return tuple(shapes), classes


#: Hidden caller-proxy iterator names ("<...>" cannot collide with user
#: identifiers).
def _sentinel_name(k: int) -> str:
    return f"<sentinel:{k}>"


class SummaryTable:
    """Memoized function summaries, shared across one analysis run
    (one ``check_source``/``collect_facts``/lint-file invocation)."""

    def __init__(self) -> None:
        self._cache: dict[tuple, Summary] = {}
        #: Names currently being summarized — any call back into one of
        #: these is (mutual) recursion and bails out like the legacy
        #: engine did, with an explicit note.
        self._computing: set[str] = set()

    def __len__(self) -> int:
        return len(self._cache)

    # -- persistence accessors ----------------------------------------------
    # The analysis service serializes tables to disk keyed by file
    # content hash (:mod:`repro.analysis.schema`); these two methods are
    # its stable seam into the memo so the cache never reaches into
    # ``_cache`` directly.

    def export_items(self):
        """Iterate ``((callee_name, shapes), Summary)`` pairs."""
        return self._cache.items()

    def insert(self, key: tuple, summary: "Summary") -> None:
        """Pre-seed one memoized summary (deserialized from disk).  Only
        sound when ``key`` was computed for the *same* module content —
        the cache guarantees that by keying tables on the file hash."""
        self._cache[key] = summary

    # -- call-site entry ----------------------------------------------------

    def apply(
        self, caller: Any, name: str, callee: ast.FunctionDef,
        args: list[Any], env: Env, line: int,
    ) -> Any:
        """Memoize-or-compute ``callee``'s summary for these argument
        shapes and apply it to the caller's state; returns the call's
        abstract result."""
        from .dataflow import STATS

        if name in self._computing:
            STATS.summary_recursion_bails += 1
            caller._note_uninlined(name, args, line)
            return AbstractValue(f"{name}()")

        shapes, classes = arg_shapes(args)
        key = (name, shapes)
        summary = self._cache.get(key)
        tr = _trace.ACTIVE
        if summary is None:
            STATS.summary_misses += 1
            self._computing.add(name)
            try:
                summary = self._compute(caller, name, callee, shapes)
            finally:
                self._computing.discard(name)
            self._cache[key] = summary
            if tr is not None:
                tr.event("stllint.summary", cat="lint", callee=name,
                         caller=caller.tree.name, line=line, cache="miss")
        else:
            STATS.summary_hits += 1
            if tr is not None:
                tr.event("stllint.summary", cat="lint", callee=name,
                         caller=caller.tree.name, line=line, cache="hit")
        return self._apply_summary(caller, summary, args, classes, env, line)

    # -- computation --------------------------------------------------------

    def _compute(
        self, caller: Any, name: str, callee: ast.FunctionDef,
        shapes: tuple,
    ) -> Summary:
        from .dataflow import FixpointChecker

        # One synthetic container per alias class, seeded from the first
        # shape that mentions the class (all mentions agree on kind and,
        # via joins at the call site, on observable state).
        class_containers: dict[int, AbstractContainer] = {}

        def ensure(k: int, kind: str, props: frozenset,
                   maybe_empty: bool) -> AbstractContainer:
            c = class_containers.get(k)
            if c is None:
                c = AbstractContainer(kind, f"<arg:{k}>")
                c.properties = set(props)
                c.maybe_empty = maybe_empty
                class_containers[k] = c
            return c

        syn_args: list[Any] = []
        for shape in shapes:
            if shape[0] == "C":
                syn_args.append(ensure(shape[1], shape[2], shape[3],
                                       shape[4]))
            elif shape[0] == "I":
                c = ensure(shape[1], shape[2], shape[3], shape[4])
                syn_args.append(AbstractIterator(
                    c, shape[5], shape[6], c.epoch, may_be_end=shape[7],
                ))
            elif shape[0] == "B":
                syn_args.append(shape[1])
            else:
                syn_args.append(AbstractValue())

        env = Env()
        for k, c in class_containers.items():
            env.vars[_sentinel_name(k)] = AbstractIterator(
                c, Position.UNKNOWN, Validity.VALID, c.epoch,
            )
        for param, value in zip(callee.args.args, syn_args):
            env.vars[param.arg] = value

        checker = FixpointChecker(
            callee, caller.sink.source_lines,
            module_functions=caller.module_functions,
            facts=caller.facts, summaries=self,
        )
        checker.analyze(env)

        summary = Summary(name=name, converged=checker.converged)
        summary.diagnostics = [
            (d.severity, d.message, d.line)
            for d in checker.sink.diagnostics
        ]

        exit_env = checker.exit_env
        if exit_env is None or not checker.converged:
            # No normal exit state (safety cap fired): assume the worst —
            # every class mutated, all properties lost, all caller
            # iterators maybe-invalidated.
            for k in class_containers:
                summary.class_effects[k] = ClassEffect(
                    mutated=True, properties_after=frozenset(),
                    maybe_empty_after=True, others="maybe",
                )
            summary.ret = ("opaque",)
            return summary

        cid_to_class = {c.cid: k for k, c in class_containers.items()}

        def exit_container(cid: int) -> Optional[AbstractContainer]:
            for v in exit_env.vars.values():
                if isinstance(v, AbstractContainer) and v.cid == cid:
                    return v
                if isinstance(v, AbstractIterator) and v.container.cid == cid:
                    return v.container
            return None

        for k, c in class_containers.items():
            out_c = exit_container(c.cid)
            sentinel = exit_env.vars.get(_sentinel_name(k))
            if isinstance(sentinel, AbstractIterator):
                others = {
                    Validity.VALID: "keep",
                    Validity.MAYBE_SINGULAR: "maybe",
                    Validity.SINGULAR: "singular",
                }[sentinel.validity]
            else:
                others = "maybe"  # sentinel lost: be conservative
            if out_c is not None:
                summary.class_effects[k] = ClassEffect(
                    mutated=out_c.epoch > 0,
                    properties_after=frozenset(out_c.properties),
                    maybe_empty_after=out_c.maybe_empty,
                    others=others,
                )
            else:
                summary.class_effects[k] = ClassEffect(
                    mutated=True, properties_after=frozenset(),
                    maybe_empty_after=True, others=others,
                )

        for idx, shape in enumerate(shapes):
            if shape[0] != "I":
                continue
            param = callee.args.args[idx].arg
            v = exit_env.vars.get(param)
            k = shape[1]
            if (
                isinstance(v, AbstractIterator)
                and v.container.cid == class_containers[k].cid
            ):
                summary.iter_arg_effects[idx] = (
                    v.position, v.validity, v.may_be_end,
                )
            else:
                summary.iter_arg_effects[idx] = None

        summary.ret = self._classify_return(
            checker.return_value, cid_to_class)
        return summary

    @staticmethod
    def _classify_return(rv: Any, cid_to_class: dict[int, int]) -> tuple:
        if rv is None:
            return ("none",)
        if isinstance(rv, AbstractIterator):
            k = cid_to_class.get(rv.container.cid)
            if k is not None:
                return ("iter", k, rv.position, rv.validity, rv.may_be_end)
            c = rv.container
            return ("newiter", c.kind, frozenset(c.properties),
                    c.maybe_empty, rv.position, rv.validity, rv.may_be_end)
        if isinstance(rv, AbstractContainer):
            k = cid_to_class.get(rv.cid)
            if k is not None:
                return ("cont", k)
            return ("newcont", rv.kind, frozenset(rv.properties),
                    rv.maybe_empty)
        if isinstance(rv, AbstractBool):
            return ("bool", rv)
        if isinstance(rv, AbstractValue):
            return ("value", rv.note)
        return ("opaque",)

    # -- application --------------------------------------------------------

    def _apply_summary(
        self, caller: Any, summary: Summary, args: list[Any],
        classes: dict[int, int], env: Env, line: int,
    ) -> Any:
        # Alias class -> the caller's actual container object.
        class_cont: dict[int, AbstractContainer] = {}
        for v in args:
            c = (
                v if isinstance(v, AbstractContainer)
                else v.container if isinstance(v, AbstractIterator)
                else None
            )
            if c is not None:
                class_cont.setdefault(classes[c.cid], c)

        # 1. Invalidation of every caller-held iterator per class (what
        #    the sentinel experienced), then container state updates.
        for k, eff in summary.class_effects.items():
            c = class_cont.get(k)
            if c is None:
                continue
            if eff.others == "maybe":
                caller._invalidate_all(c, env, definitely=False)
            elif eff.others == "singular":
                caller._invalidate_all(c, env, definitely=True)
            if eff.mutated:
                c.mutate()
            c.properties.clear()
            c.properties.update(eff.properties_after)
            c.maybe_empty = eff.maybe_empty_after

        # 2. Strong updates on the iterator arguments themselves (their
        #    final state was tracked precisely through the callee).
        for idx, eff in summary.iter_arg_effects.items():
            if eff is None or idx >= len(args):
                continue
            v = args[idx]
            if isinstance(v, AbstractIterator):
                v.position, v.validity, v.may_be_end = eff
                v.epoch = v.container.epoch

        # 3. Replay the callee-internal diagnostics (lines are valid —
        #    same module source; the sink dedups repeats across sites).
        for severity, message, dline in summary.diagnostics:
            caller.sink.emit(severity, message, dline)

        # 4. Materialize the return value in the caller's world.
        ret = summary.ret
        tag = ret[0]
        if tag == "iter":
            c = class_cont.get(ret[1])
            if c is not None:
                return AbstractIterator(
                    c, ret[2], ret[3], c.epoch, may_be_end=ret[4],
                    origin_line=line,
                )
        elif tag == "newiter":
            c = AbstractContainer(ret[1], f"{summary.name}()")
            c.properties = set(ret[2])
            c.maybe_empty = ret[3]
            return AbstractIterator(
                c, ret[4], ret[5], c.epoch, may_be_end=ret[6],
                origin_line=line,
            )
        elif tag == "cont":
            c = class_cont.get(ret[1])
            if c is not None:
                return c
        elif tag == "newcont":
            c = AbstractContainer(ret[1], f"{summary.name}()")
            c.properties = set(ret[2])
            c.maybe_empty = ret[3]
            return c
        elif tag == "bool":
            return ret[1]
        elif tag == "value":
            return AbstractValue(ret[1])
        return AbstractValue(f"{summary.name}()")
