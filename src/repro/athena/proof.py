"""The assumption base and the primitive deduction methods.

"Athena has proof language constructs similar to those for ordinary
computation, including first-class *methods* ... whose purpose is to carry
out proofs, updating the *assumption base*, an associative memory of
propositions that have been asserted or proved in a proof session.  The
assumption base is fundamental to Athena's approach to deduction; all proof
activity centers around it.  ...  Proper deductions (ones which correctly
use primitive or programmed inference methods) produce theorems and add
them to the assumption base; improper deductions result in an error
condition."

:class:`Proof` is a proof session.  Every primitive method validates its
premises against the assumption base and either *returns the conclusion*
(now in the base) or raises :class:`ProofError` — checking, never searching.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional, Sequence

from .props import (
    And,
    Atom,
    Exists,
    Falsity,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Prop,
)
from .terms import App, Term, Var, replace_subterm

_fresh = itertools.count(1)


class ProofError(Exception):
    """An improper deduction: a premise missing from the assumption base,
    a malformed rule application, a non-fresh generalization variable."""


class AssumptionBase:
    """An associative memory of propositions."""

    def __init__(self, props: Iterable[Prop] = ()) -> None:
        self._props: set[Prop] = set(props)

    def holds(self, p: Prop) -> bool:
        return p in self._props

    def add(self, p: Prop) -> None:
        self._props.add(p)

    def extend(self, props: Iterable[Prop]) -> None:
        self._props.update(props)

    def child(self, extra: Iterable[Prop] = ()) -> "AssumptionBase":
        out = AssumptionBase(self._props)
        out.extend(extra)
        return out

    def free_variables(self) -> set[str]:
        out: set[str] = set()
        for p in self._props:
            out |= p.free_variables()
        return out

    def __len__(self) -> int:
        return len(self._props)

    def __iter__(self):
        return iter(self._props)

    def __contains__(self, p: Prop) -> bool:
        return self.holds(p)


class Proof:
    """A proof session over an assumption base.

    Every method is a *deduction*: its return value is a theorem that has
    been added to the base.  ``trace`` records the deduction steps so tests
    and benches can inspect proof sizes.
    """

    def __init__(self, assumptions: Iterable[Prop] = (),
                 base: Optional[AssumptionBase] = None) -> None:
        self.base = base if base is not None else AssumptionBase()
        self.base.extend(assumptions)
        self.trace: list[str] = []
        self.steps = 0

    # -- internal ---------------------------------------------------------------

    def _require(self, p: Prop, why: str) -> None:
        if not self.base.holds(p):
            raise ProofError(f"{why}: {p} is not in the assumption base")

    def _conclude(self, p: Prop, rule: str) -> Prop:
        self.base.add(p)
        self.steps += 1
        self.trace.append(f"{rule}: {p}")
        return p

    # -- structural primitives ------------------------------------------------------

    def claim(self, p: Prop) -> Prop:
        """Reiterate a proposition already in the base."""
        self._require(p, "claim")
        return self._conclude(p, "claim")

    def both(self, p: Prop, q: Prop) -> Prop:
        """∧-introduction."""
        self._require(p, "both (left)")
        self._require(q, "both (right)")
        return self._conclude(And(p, q), "both")

    def left_and(self, conj: Prop) -> Prop:
        """∧-elimination (left)."""
        self._require(conj, "left-and")
        if not isinstance(conj, And):
            raise ProofError(f"left-and: {conj} is not a conjunction")
        return self._conclude(conj.left, "left-and")

    def right_and(self, conj: Prop) -> Prop:
        self._require(conj, "right-and")
        if not isinstance(conj, And):
            raise ProofError(f"right-and: {conj} is not a conjunction")
        return self._conclude(conj.right, "right-and")

    def modus_ponens(self, implication: Prop, antecedent: Prop) -> Prop:
        """→-elimination."""
        self._require(implication, "modus-ponens (implication)")
        self._require(antecedent, "modus-ponens (antecedent)")
        if not isinstance(implication, Implies):
            raise ProofError(f"modus-ponens: {implication} is not an implication")
        if implication.antecedent != antecedent:
            raise ProofError(
                f"modus-ponens: antecedent mismatch — implication expects "
                f"{implication.antecedent}, got {antecedent}"
            )
        return self._conclude(implication.consequent, "modus-ponens")

    def assume(self, hypothesis: Prop,
               body: Callable[["Proof"], Prop]) -> Prop:
        """→-introduction: run ``body`` in a child session whose base also
        holds ``hypothesis``; discharge to an implication.  This is Athena's
        ``assume`` deduction form."""
        child = Proof(base=self.base.child([hypothesis]))
        conclusion = body(child)
        if not child.base.holds(conclusion):
            raise ProofError(
                "assume: the body's return value was never established"
            )
        self.steps += child.steps
        self.trace.extend("  " + t for t in child.trace)
        return self._conclude(Implies(hypothesis, conclusion), "assume")

    def either(self, p: Prop, other: Prop, left: bool = True) -> Prop:
        """∨-introduction."""
        self._require(p, "either")
        return self._conclude(Or(p, other) if left else Or(other, p), "either")

    def cases(self, disjunction: Prop,
              left_body: Callable[["Proof"], Prop],
              right_body: Callable[["Proof"], Prop]) -> Prop:
        """∨-elimination: both branches must derive the same conclusion."""
        self._require(disjunction, "cases")
        if not isinstance(disjunction, Or):
            raise ProofError(f"cases: {disjunction} is not a disjunction")
        lchild = Proof(base=self.base.child([disjunction.left]))
        lconc = left_body(lchild)
        if not lchild.base.holds(lconc):
            raise ProofError("cases: left branch conclusion not established")
        rchild = Proof(base=self.base.child([disjunction.right]))
        rconc = right_body(rchild)
        if not rchild.base.holds(rconc):
            raise ProofError("cases: right branch conclusion not established")
        if lconc != rconc:
            raise ProofError(
                f"cases: branches disagree ({lconc} vs {rconc})"
            )
        self.steps += lchild.steps + rchild.steps
        return self._conclude(lconc, "cases")

    def absurd(self, p: Prop, not_p: Prop) -> Prop:
        """¬-elimination: p and ¬p yield falsity."""
        self._require(p, "absurd")
        self._require(not_p, "absurd")
        if not_p != Not(p):
            raise ProofError(f"absurd: {not_p} is not the negation of {p}")
        return self._conclude(Falsity(), "absurd")

    def by_contradiction(self, goal: Prop,
                         body: Callable[["Proof"], Prop]) -> Prop:
        """¬-introduction / classical reductio: assume ¬goal, derive false."""
        hypothesis = goal.operand if isinstance(goal, Not) else Not(goal)
        child = Proof(base=self.base.child([hypothesis]))
        conclusion = body(child)
        if conclusion != Falsity() or not child.base.holds(Falsity()):
            raise ProofError("by-contradiction: body did not derive falsity")
        self.steps += child.steps
        return self._conclude(goal, "by-contradiction")

    def double_negation(self, p: Prop) -> Prop:
        self._require(p, "double-negation")
        if not (isinstance(p, Not) and isinstance(p.operand, Not)):
            raise ProofError(f"double-negation: {p} is not doubly negated")
        return self._conclude(p.operand.operand, "double-negation")

    # -- iff ---------------------------------------------------------------------------

    def equiv(self, forward: Prop, backward: Prop) -> Prop:
        """↔-introduction from the two implications."""
        self._require(forward, "equiv")
        self._require(backward, "equiv")
        if not (isinstance(forward, Implies) and isinstance(backward, Implies)):
            raise ProofError("equiv: both premises must be implications")
        if (
            forward.antecedent != backward.consequent
            or forward.consequent != backward.antecedent
        ):
            raise ProofError("equiv: implications are not mutual")
        return self._conclude(Iff(forward.antecedent, forward.consequent), "equiv")

    def left_iff(self, iff: Prop) -> Prop:
        self._require(iff, "left-iff")
        if not isinstance(iff, Iff):
            raise ProofError(f"left-iff: {iff} is not a biconditional")
        return self._conclude(Implies(iff.left, iff.right), "left-iff")

    def right_iff(self, iff: Prop) -> Prop:
        self._require(iff, "right-iff")
        if not isinstance(iff, Iff):
            raise ProofError(f"right-iff: {iff} is not a biconditional")
        return self._conclude(Implies(iff.right, iff.left), "right-iff")

    # -- quantifiers -------------------------------------------------------------------

    def uspec(self, universal: Prop, term: Term) -> Prop:
        """∀-elimination (universal specialization)."""
        self._require(universal, "uspec")
        if not isinstance(universal, Forall):
            raise ProofError(f"uspec: {universal} is not universal")
        return self._conclude(universal.instantiate(term), "uspec")

    def pick_any(self, body: Callable[["Proof", Var], Prop],
                 hint: str = "a") -> Prop:
        """∀-introduction (universal generalization): run ``body`` with a
        fresh variable; generalize its conclusion.  Freshness is enforced —
        the variable cannot already occur free in the base."""
        name = f"{hint}{next(_fresh)}"
        if name in self.base.free_variables():  # pragma: no cover - counter
            name = f"{name}_{next(_fresh)}"
        v = Var(name)
        child = Proof(base=self.base.child())
        conclusion = body(child, v)
        if not child.base.holds(conclusion):
            raise ProofError("pick-any: conclusion not established")
        self.steps += child.steps
        self.trace.extend("  " + t for t in child.trace)
        generalized = Forall(name, conclusion)
        return self._conclude(generalized, "pick-any")

    def egen(self, existential: Exists, witness: Term, instance: Prop) -> Prop:
        """∃-introduction from a witness."""
        self._require(instance, "egen")
        if existential.instantiate(witness) != instance:
            raise ProofError(
                f"egen: {instance} is not {existential} at witness {witness}"
            )
        return self._conclude(existential, "egen")

    # -- equality ---------------------------------------------------------------------

    def reflexivity(self, t: Term) -> Prop:
        return self._conclude(Atom("=", (t, t)), "reflexivity")

    def symmetry(self, eq: Prop) -> Prop:
        self._require(eq, "symmetry")
        if not (isinstance(eq, Atom) and eq.pred == "=" and len(eq.args) == 2):
            raise ProofError(f"symmetry: {eq} is not an equality")
        return self._conclude(Atom("=", (eq.args[1], eq.args[0])), "symmetry")

    def transitivity(self, eq1: Prop, eq2: Prop) -> Prop:
        self._require(eq1, "transitivity")
        self._require(eq2, "transitivity")
        for eq in (eq1, eq2):
            if not (isinstance(eq, Atom) and eq.pred == "="):
                raise ProofError(f"transitivity: {eq} is not an equality")
        if eq1.args[1] != eq2.args[0]:
            raise ProofError(
                f"transitivity: {eq1} and {eq2} do not chain"
            )
        return self._conclude(
            Atom("=", (eq1.args[0], eq2.args[1])), "transitivity"
        )

    def congruence(self, eq: Prop, context: Term, hole: Var) -> Prop:
        """Leibniz/congruence: from ``a = b`` conclude
        ``context[hole := a] = context[hole := b]``."""
        self._require(eq, "congruence")
        if not (isinstance(eq, Atom) and eq.pred == "=" and len(eq.args) == 2):
            raise ProofError(f"congruence: {eq} is not an equality")
        a, b = eq.args
        left = context.substitute({hole.name: a})
        right = context.substitute({hole.name: b})
        return self._conclude(Atom("=", (left, right)), "congruence")

    def rewrite(self, target: Prop, eq: Prop) -> Prop:
        """Leibniz on propositions: rewrite occurrences of the equality's
        left side in an established proposition."""
        self._require(target, "rewrite")
        self._require(eq, "rewrite")
        if not (isinstance(eq, Atom) and eq.pred == "=" and len(eq.args) == 2):
            raise ProofError(f"rewrite: {eq} is not an equality")
        a, b = eq.args
        out = _rewrite_prop(target, a, b)
        if out == target:
            raise ProofError(f"rewrite: {a} does not occur in {target}")
        return self._conclude(out, "rewrite")

    def chain(self, *equalities: Prop) -> Prop:
        """Transitivity over a whole calculational chain."""
        if len(equalities) < 2:
            raise ProofError("chain: need at least two equalities")
        out = equalities[0]
        for nxt in equalities[1:]:
            out = self.transitivity(out, nxt)
        return out


def _rewrite_prop(p: Prop, old: Term, new: Term) -> Prop:
    if isinstance(p, Atom):
        return Atom(p.pred, tuple(replace_subterm(a, old, new) for a in p.args))
    if isinstance(p, Not):
        return Not(_rewrite_prop(p.operand, old, new))
    if isinstance(p, And):
        return And(_rewrite_prop(p.left, old, new), _rewrite_prop(p.right, old, new))
    if isinstance(p, Or):
        return Or(_rewrite_prop(p.left, old, new), _rewrite_prop(p.right, old, new))
    if isinstance(p, Implies):
        return Implies(
            _rewrite_prop(p.antecedent, old, new),
            _rewrite_prop(p.consequent, old, new),
        )
    if isinstance(p, Iff):
        return Iff(_rewrite_prop(p.left, old, new), _rewrite_prop(p.right, old, new))
    if isinstance(p, (Forall, Exists)):
        if p.var in old.variables() | new.variables():
            return p
        body = _rewrite_prop(p.body, old, new)
        return type(p)(p.var, body)
    return p
