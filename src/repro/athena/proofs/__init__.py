"""Generic proofs: written once, instantiated for every model.

"In such a system, proofs can themselves be generic components, in the
sense that one can express a proof once and subsequently instantiate it
many times to prove more specific cases, in much the same way as one does
with generic algorithms."
"""

from .strict_weak_order import (
    prove_equivalence_properties,
    prove_equiv_reflexive,
    prove_equiv_symmetric,
)
from .group_theory import (
    prove_group_theorems,
    prove_inverse_involution,
    prove_left_identity,
    prove_left_inverse,
)
from .ring_theory import prove_mul_zero, prove_ring_theorems, ring_session
from .range_theory import prove_reaches_kth_successor, range_session

__all__ = [
    "prove_equiv_reflexive",
    "prove_equiv_symmetric",
    "prove_equivalence_properties",
    "prove_left_inverse",
    "prove_left_identity",
    "prove_inverse_involution",
    "prove_group_theorems",
    "prove_mul_zero",
    "prove_ring_theorems",
    "ring_session",
    "prove_reaches_kth_successor",
    "range_session",
]
