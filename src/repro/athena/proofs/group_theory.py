"""Generic equational proofs over the Group theory.

The Group theory (:func:`repro.athena.theories.group_axioms`) states only
associativity, *right* identity, and *right* inverse; the classical
theorems below — left inverse, left identity, involution of inverse — are
derived once, generically, and then instantiated for every declared Group
model (ints under +, rationals under *, invertible matrices under @, ...).

These theorems are exactly what justifies Simplicissimus's
``LeftInverseRule`` and ``DoubleInverseRule``: rewrite rules "directly
related to and derivable from the axioms governing the Monoid and Group
concepts" (Fig. 5).
"""

from __future__ import annotations

from ..proof import Proof
from ..props import Forall, Prop, equals
from ..terms import App, Term, Var
from ..theories import GroupSig, group_axioms

HOLE = Var("HOLE")


def group_session(sig: GroupSig) -> Proof:
    return Proof(group_axioms(sig))


def _axioms(sig: GroupSig) -> tuple[Prop, Prop, Prop]:
    assoc, right_id, right_inv = group_axioms(sig)
    return assoc, right_id, right_inv


def prove_left_inverse(pf: Proof, sig: GroupSig) -> Prop:
    """Theorem: ∀x. inv(x)·x = e   (from right inverse + right identity +
    associativity; the textbook eight-step calculational chain)."""
    assoc, right_id, right_inv = _axioms(sig)
    e = sig.identity()

    def body(p: Proof, x: Var) -> Prop:
        ix = sig.inverse(x)            # inv(x)
        iix = sig.inverse(ix)          # inv(inv(x))
        t = sig.ap(ix, x)              # inv(x)·x

        # 1. inv(x)·x = (inv(x)·x)·e                     [right id, reversed]
        s1 = p.symmetry(p.uspec(right_id, t))
        # 2. (inv(x)·x)·e = (inv(x)·x)·(inv(x)·inv(inv(x)))
        #    [right inv at inv(x), reversed, in context t·HOLE]
        rv_ix = p.uspec(right_inv, ix)                 # inv(x)·inv(inv(x)) = e
        s2 = p.congruence(p.symmetry(rv_ix), sig.ap(t, HOLE), HOLE)
        # 3. (inv(x)·x)·(inv(x)·iix) = inv(x)·(x·(inv(x)·iix))   [assoc]
        a3 = p.uspec(p.uspec(p.uspec(assoc, ix), x), sig.ap(ix, iix))
        # 4. inv(x)·(x·(inv(x)·iix)) = inv(x)·((x·inv(x))·iix)
        #    [assoc at (x, inv(x), iix), reversed, in context inv(x)·HOLE]
        a4_inner = p.uspec(p.uspec(p.uspec(assoc, x), ix), iix)
        s4 = p.congruence(p.symmetry(a4_inner), sig.ap(ix, HOLE), HOLE)
        # 5. inv(x)·((x·inv(x))·iix) = inv(x)·(e·iix)
        #    [right inv at x, in context inv(x)·(HOLE·iix)]
        rv_x = p.uspec(right_inv, x)                   # x·inv(x) = e
        s5 = p.congruence(rv_x, sig.ap(ix, sig.ap(HOLE, iix)), HOLE)
        # 6. inv(x)·(e·iix) = (inv(x)·e)·iix            [assoc reversed]
        a6 = p.uspec(p.uspec(p.uspec(assoc, ix), e), iix)
        s6 = p.symmetry(a6)
        # 7. (inv(x)·e)·iix = inv(x)·iix                [right id at inv(x),
        #    in context HOLE·iix]
        ri_ix = p.uspec(right_id, ix)                  # inv(x)·e = inv(x)
        s7 = p.congruence(ri_ix, sig.ap(HOLE, iix), HOLE)
        # 8. inv(x)·iix = e                             [right inv at inv(x)]
        s8 = p.claim(rv_ix)

        return p.chain(s1, s2, a3, s4, s5, s6, s7, s8)

    return pf.pick_any(body, hint="x")


def prove_left_identity(pf: Proof, sig: GroupSig) -> Prop:
    """Theorem: ∀x. e·x = x  (uses the left-inverse theorem)."""
    assoc, right_id, right_inv = _axioms(sig)
    left_inv = prove_left_inverse(pf, sig)

    def body(p: Proof, x: Var) -> Prop:
        ix = sig.inverse(x)
        e = sig.identity()
        # 1. e·x = (x·inv(x))·x          [right inv reversed, context HOLE·x]
        rv_x = p.uspec(right_inv, x)
        s1 = p.congruence(p.symmetry(rv_x), sig.ap(HOLE, x), HOLE)
        # 2. (x·inv(x))·x = x·(inv(x)·x) [assoc]
        s2 = p.uspec(p.uspec(p.uspec(assoc, x), ix), x)
        # 3. x·(inv(x)·x) = x·e          [left inverse thm, context x·HOLE]
        li_x = p.uspec(left_inv, x)
        s3 = p.congruence(li_x, sig.ap(x, HOLE), HOLE)
        # 4. x·e = x                     [right id]
        s4 = p.uspec(right_id, x)
        return p.chain(s1, s2, s3, s4)

    return pf.pick_any(body, hint="x")


def prove_inverse_involution(pf: Proof, sig: GroupSig) -> Prop:
    """Theorem: ∀x. inv(inv(x)) = x  (justifies Simplicissimus's
    double-inverse rule)."""
    assoc, right_id, right_inv = _axioms(sig)
    left_id = prove_left_identity(pf, sig)

    def body(p: Proof, x: Var) -> Prop:
        ix = sig.inverse(x)
        iix = sig.inverse(ix)
        # 1. iix = e·iix                  [left identity thm reversed]
        s1 = p.symmetry(p.uspec(left_id, iix))
        # 2. e·iix = (x·inv(x))·iix       [right inv reversed, ctx HOLE·iix]
        rv_x = p.uspec(right_inv, x)
        s2 = p.congruence(p.symmetry(rv_x), sig.ap(HOLE, iix), HOLE)
        # 3. (x·inv(x))·iix = x·(inv(x)·iix)   [assoc]
        s3 = p.uspec(p.uspec(p.uspec(assoc, x), ix), iix)
        # 4. x·(inv(x)·iix) = x·e         [right inv at inv(x), ctx x·HOLE]
        rv_ix = p.uspec(right_inv, ix)
        s4 = p.congruence(rv_ix, sig.ap(x, HOLE), HOLE)
        # 5. x·e = x                      [right id]
        s5 = p.uspec(right_id, x)
        return p.chain(s1, s2, s3, s4, s5)

    return pf.pick_any(body, hint="x")


def prove_group_theorems(sig: GroupSig) -> tuple[Proof, dict[str, Prop]]:
    """Run all three derivations in one session."""
    pf = group_session(sig)
    theorems = {
        "left inverse": prove_left_inverse(pf, sig),
        "left identity": prove_left_identity(pf, sig),
        "inverse involution": prove_inverse_involution(pf, sig),
    }
    return pf, theorems
