"""Ring theory: the annihilation theorem ``x * 0 = 0``.

A showcase of cross-theory generic proof: the derivation uses the
*distributivity* axiom of the Ring together with group reasoning in the
additive component (cancellation via the additive inverse) — two theories
packaged as functions, composed by passing their operator mappings around,
exactly the organization Section 3.3 describes.
"""

from __future__ import annotations

from ..proof import Proof
from ..props import Forall, Prop, equals
from ..terms import App, Term, Var
from ..theories import RingSig, ring_axioms

HOLE = Var("HOLE")


def ring_session(sig: RingSig) -> Proof:
    return Proof(ring_axioms(sig))


def prove_mul_zero(pf: Proof, sig: RingSig) -> Prop:
    """Theorem: ∀x. x·0 = 0.

    Chain: x·0 = x·(0+0) = x·0 + x·0, then cancel one x·0 using the
    additive inverse.
    """
    a, m = sig.add, sig.mul
    axioms = ring_axioms(sig)
    # Locate the axioms we need by shape (the theory function's order is
    # stable, but matching by content keeps this robust to extension).
    add_right_id = _find_axiom(pf, axioms, "additive right identity",
                               lambda p: _is_right_identity(p, a))
    add_right_inv = _find_axiom(pf, axioms, "additive right inverse",
                                lambda p: _is_right_inverse(p, a))
    add_assoc = _find_axiom(pf, axioms, "additive associativity",
                            lambda p: _is_associativity(p, a))
    left_distrib = _find_axiom(pf, axioms, "left distributivity",
                               lambda p: _is_left_distributivity(p, sig))

    zero = a.identity()

    def body(p: Proof, x: Var) -> Prop:
        t = m.ap(x, zero)                       # x*0
        # 1. t = x*(0+0)   [0 = 0+0 in context x*HOLE]
        zz = p.uspec(add_right_id, zero)        # 0+0 = 0
        s1 = p.congruence(p.symmetry(zz), m.ap(x, HOLE), HOLE)
        # 2. x*(0+0) = x*0 + x*0    [distributivity at (x, 0, 0)]
        s2 = p.uspec(p.uspec(p.uspec(left_distrib, x), zero), zero)
        # 3. t = t + t
        doubled = p.chain(s1, s2)
        # 4. 0 = t + neg(t)          [right inverse at t, reversed]
        rv_t = p.uspec(add_right_inv, t)        # t + neg(t) = 0
        s4 = p.symmetry(rv_t)
        nt = a.inverse(t)
        # 5. t + neg(t) = (t+t) + neg(t)   [doubled in context HOLE + neg(t)]
        s5 = p.congruence(doubled, a.ap(HOLE, nt), HOLE)
        # 6. (t+t) + neg(t) = t + (t + neg(t))   [associativity]
        s6 = p.uspec(p.uspec(p.uspec(add_assoc, t), t), nt)
        # 7. t + (t+neg(t)) = t + 0    [right inverse in context t + HOLE]
        s7 = p.congruence(rv_t, a.ap(t, HOLE), HOLE)
        # 8. t + 0 = t                 [right identity at t]
        s8 = p.uspec(add_right_id, t)
        # 0 = t, flip to t = 0.
        zero_is_t = p.chain(s4, s5, s6, s7, s8)
        return p.symmetry(zero_is_t)

    return pf.pick_any(body, hint="x")


def prove_ring_theorems(sig: RingSig) -> tuple[Proof, dict[str, Prop]]:
    pf = ring_session(sig)
    return pf, {"annihilation": prove_mul_zero(pf, sig)}


# -- axiom shape matchers ------------------------------------------------------


def _strip(p: Prop) -> Prop:
    while isinstance(p, Forall):
        p = p.body
    return p


def _is_right_identity(p: Prop, g) -> bool:
    body = _strip(p)
    if not (hasattr(body, "pred") and body.pred == "="):
        return False
    lhs, rhs = body.args
    return (
        isinstance(lhs, App) and lhs.fsym == g.op
        and lhs.args[1] == g.identity() and lhs.args[0] == rhs
    )


def _is_right_inverse(p: Prop, g) -> bool:
    body = _strip(p)
    if not (hasattr(body, "pred") and body.pred == "="):
        return False
    lhs, rhs = body.args
    return (
        isinstance(lhs, App) and lhs.fsym == g.op
        and isinstance(lhs.args[1], App) and lhs.args[1].fsym == g.inv
        and rhs == g.identity()
    )


def _is_associativity(p: Prop, g) -> bool:
    body = _strip(p)
    if not (hasattr(body, "pred") and body.pred == "="):
        return False
    lhs, rhs = body.args
    return (
        isinstance(lhs, App) and lhs.fsym == g.op
        and isinstance(lhs.args[0], App) and lhs.args[0].fsym == g.op
        and isinstance(rhs, App) and rhs.fsym == g.op
        and isinstance(rhs.args[1], App) and rhs.args[1].fsym == g.op
    )


def _is_left_distributivity(p: Prop, sig: RingSig) -> bool:
    body = _strip(p)
    if not (hasattr(body, "pred") and body.pred == "="):
        return False
    lhs, rhs = body.args
    return (
        isinstance(lhs, App) and lhs.fsym == sig.mul.op
        and isinstance(lhs.args[1], App) and lhs.args[1].fsym == sig.add.op
        and isinstance(rhs, App) and rhs.fsym == sig.add.op
    )


def _find_axiom(pf: Proof, axioms, label: str, matcher) -> Prop:
    for ax in axioms:
        if matcher(ax) and pf.base.holds(ax):
            return ax
    from ..proof import ProofError

    raise ProofError(f"required axiom not in the assumption base: {label}")
