"""Range/iterator theory proofs: the "sequential computation concepts
(container, iterator, range)" the paper says were formalized and used in
proofs.

From the two range axioms — every position reaches itself, and
reachability extends through the successor — derive that any position
reaches its k-th successor.  This is the deductive backbone of STLlint's
range validity reasoning: ``[first, advance(first, k))`` is a valid range.
"""

from __future__ import annotations

from ..proof import Proof
from ..props import Prop
from ..terms import Term, Var
from ..theories import RangeSig, range_axioms


def range_session(sig: RangeSig) -> Proof:
    return Proof(range_axioms(sig))


def prove_reaches_kth_successor(pf: Proof, sig: RangeSig, k: int) -> Prop:
    """Theorem: ∀i. reaches(i, next^k(i)) — proved by k chained
    modus-ponens steps through the extension axiom (a *computed* proof:
    the deduction's length depends on k, which is exactly the 'proofs as
    ordinary computation' interplay DPLs are built for)."""
    if k < 0:
        raise ValueError("k must be nonnegative")
    reflexive, extend = range_axioms(sig)

    def body(p: Proof, i: Var) -> Prop:
        fact = p.uspec(reflexive, i)         # reaches(i, i)
        j: Term = i
        for _ in range(k):
            step = p.uspec(p.uspec(extend, i), j)
            fact = p.modus_ponens(step, fact)
            j = sig.nxt(j)
        return fact

    return pf.pick_any(body, hint="i")
