"""Fig. 6's derived theorems, proved generically.

"From these axioms two additional properties of E, symmetry and
reflexivity, can be derived as theorems, showing that E is in fact an
equivalence relation."

The proofs are *generic*: they take an :class:`OrderSig` operator mapping,
so the same deduction text proves the theorems for ``<`` on ints, on
strings, on a user type — "one can express a proof once and subsequently
instantiate it many times".
"""

from __future__ import annotations

from ..proof import Proof
from ..props import And, Forall, Implies, Not, Prop
from ..terms import Term, Var
from ..theories import OrderSig, strict_weak_order_axioms


def swo_session(sig: OrderSig) -> Proof:
    """A proof session whose assumption base holds the Fig. 6 axioms."""
    return Proof(strict_weak_order_axioms(sig))


def prove_equiv_reflexive(pf: Proof, sig: OrderSig) -> Prop:
    """Theorem: ∀x. E(x, x).

    Deduction: for any a, specialize irreflexivity to get ~(a < a), then
    conjoin it with itself — that conjunction *is* E(a, a).
    """
    irreflexivity = strict_weak_order_axioms(sig)[0]

    def body(p: Proof, a: Var) -> Prop:
        not_lt = p.uspec(irreflexivity, a)         # ~(a < a)
        return p.both(not_lt, not_lt)              # E(a, a)

    return pf.pick_any(body, hint="x")


def prove_equiv_symmetric(pf: Proof, sig: OrderSig) -> Prop:
    """Theorem: ∀x, y. E(x, y) ==> E(y, x).

    Deduction: assume E(a, b) = ~(a<b) & ~(b<a); its two conjuncts,
    re-conjoined in the opposite order, are E(b, a).
    """

    def inner(p: Proof, a: Var) -> Prop:
        def innermost(p2: Proof, b: Var) -> Prop:
            e_ab = sig.equiv(a, b)

            def discharge(p3: Proof) -> Prop:
                left = p3.left_and(e_ab)            # ~(a < b)
                right = p3.right_and(e_ab)          # ~(b < a)
                return p3.both(right, left)         # E(b, a)

            return p2.assume(e_ab, discharge)

        return p.pick_any(innermost, hint="y")

    return pf.pick_any(inner, hint="x")


def prove_equivalence_properties(sig: OrderSig) -> tuple[Proof, list[Prop]]:
    """Run both Fig. 6 derivations in one session; returns the session and
    the theorems [reflexivity of E, symmetry of E, transitivity of E].
    (Transitivity of E is an axiom of the Strict Weak Order concept, so the
    three together establish that E is an equivalence relation.)"""
    pf = swo_session(sig)
    reflexive = prove_equiv_reflexive(pf, sig)
    symmetric = prove_equiv_symmetric(pf, sig)
    transitivity_axiom = strict_weak_order_axioms(sig)[2]
    pf.claim(transitivity_axiom)
    return pf, [reflexive, symmetric, transitivity_axiom]


def instance_of(theorem: Prop, *terms: Term) -> Prop:
    """Instantiate a (possibly nested) universal theorem at concrete terms —
    how callers consume a generic theorem, and how the tests verify it has
    the expected shape regardless of bound-variable names."""
    out = theorem
    for t in terms:
        assert isinstance(out, Forall), f"{out} is not universal"
        out = out.instantiate(t)
    return out
