"""Athena-style Denotational Proof Language (Section 3.3): assumption base,
primitive deductions, first-class methods, theories as operator-mapped
functions, and generic proofs instantiated per model.

Quick use::

    from repro.athena import OrderSig, prove_equivalence_properties

    pf, theorems = prove_equivalence_properties(OrderSig("<"))
    # theorems: E reflexive, E symmetric (derived), E transitive (axiom)
"""

from .instantiation import (
    InstanceReport,
    check_axioms_empirically,
    eval_equation,
    eval_term,
    instantiate_group_proofs,
    sig_for_structure,
)
from .methods import (
    Method,
    conj_idem,
    conj_swap,
    forward_chaining_search,
    hypothetical_syllogism,
    method,
)
from .proof import AssumptionBase, Proof, ProofError
from .proofs import (
    prove_equivalence_properties,
    prove_mul_zero,
    prove_ring_theorems,
    prove_equiv_reflexive,
    prove_equiv_symmetric,
    prove_group_theorems,
    prove_inverse_involution,
    prove_left_identity,
    prove_left_inverse,
)
from .proofs.range_theory import prove_reaches_kth_successor, range_session
from .proofs.strict_weak_order import instance_of, swo_session
from .proofs.group_theory import group_session
from .props import (
    And,
    Atom,
    Exists,
    Falsity,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Prop,
    equals,
    forall,
)
from .terms import App, Term, Var, const, replace_subterm
from .theories import (
    THEORIES,
    GroupSig,
    OrderSig,
    RangeSig,
    RingSig,
    abelian_axioms,
    group_axioms,
    monoid_axioms,
    range_axioms,
    ring_axioms,
    semigroup_axioms,
    strict_partial_order_axioms,
    strict_weak_order_axioms,
    total_order_axioms,
)

__all__ = [
    "App", "Term", "Var", "const", "replace_subterm",
    "And", "Atom", "Exists", "Falsity", "Forall", "Iff", "Implies", "Not",
    "Or", "Prop", "equals", "forall",
    "AssumptionBase", "Proof", "ProofError",
    "Method", "method", "conj_swap", "conj_idem", "hypothetical_syllogism",
    "forward_chaining_search",
    "OrderSig", "GroupSig", "RingSig", "RangeSig", "THEORIES",
    "strict_weak_order_axioms", "strict_partial_order_axioms",
    "total_order_axioms", "semigroup_axioms", "monoid_axioms",
    "group_axioms", "abelian_axioms", "ring_axioms", "range_axioms",
    "prove_equiv_reflexive", "prove_equiv_symmetric",
    "prove_equivalence_properties", "prove_left_inverse",
    "prove_left_identity", "prove_inverse_involution",
    "prove_group_theorems", "prove_mul_zero", "prove_ring_theorems",
    "swo_session", "group_session", "range_session", "instance_of",
    "prove_reaches_kth_successor",
    "InstanceReport", "instantiate_group_proofs", "sig_for_structure",
    "eval_term", "eval_equation", "check_axioms_empirically",
]
