"""Propositions for the Athena-style proof language.

Atoms over terms, the usual connectives, and quantifiers with
capture-avoiding instantiation.  Equality is the distinguished atom ``'='``
so the equational deduction rules can recognize it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from .terms import App, Term, Var

_fresh_counter = itertools.count(1)


class Prop:
    """Base class of propositions."""

    def variables(self) -> set[str]:
        raise NotImplementedError

    def free_variables(self) -> set[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, Term]) -> "Prop":
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(Prop):
    """``pred(t1, ..., tn)``; ``Atom('=', (a, b))`` is equality."""

    pred: str
    args: tuple[Term, ...] = ()

    def variables(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.variables()
        return out

    free_variables = variables

    def substitute(self, mapping: Mapping[str, Term]) -> "Atom":
        return Atom(self.pred, tuple(a.substitute(mapping) for a in self.args))

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        if len(self.args) == 2 and not self.pred.isalnum():
            return f"({self.args[0]} {self.pred} {self.args[1]})"
        return f"{self.pred}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Falsity(Prop):
    """The absurd proposition (target of proofs by contradiction)."""

    def variables(self) -> set[str]:
        return set()

    free_variables = variables

    def substitute(self, mapping: Mapping[str, Term]) -> "Falsity":
        return self

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not(Prop):
    operand: Prop

    def variables(self) -> set[str]:
        return self.operand.variables()

    def free_variables(self) -> set[str]:
        return self.operand.free_variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "Not":
        return Not(self.operand.substitute(mapping))

    def __str__(self) -> str:
        return f"~{self.operand}"


@dataclass(frozen=True)
class And(Prop):
    left: Prop
    right: Prop

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "And":
        return And(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Prop):
    left: Prop
    right: Prop

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "Or":
        return Or(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Prop):
    antecedent: Prop
    consequent: Prop

    def variables(self) -> set[str]:
        return self.antecedent.variables() | self.consequent.variables()

    def free_variables(self) -> set[str]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "Implies":
        return Implies(
            self.antecedent.substitute(mapping),
            self.consequent.substitute(mapping),
        )

    def __str__(self) -> str:
        return f"({self.antecedent} ==> {self.consequent})"


@dataclass(frozen=True)
class Iff(Prop):
    left: Prop
    right: Prop

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, mapping: Mapping[str, Term]) -> "Iff":
        return Iff(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} <==> {self.right})"


@dataclass(frozen=True)
class Forall(Prop):
    var: str
    body: Prop

    def variables(self) -> set[str]:
        return self.body.variables() | {self.var}

    def free_variables(self) -> set[str]:
        return self.body.free_variables() - {self.var}

    def substitute(self, mapping: Mapping[str, Term]) -> "Forall":
        mapping = {k: v for k, v in mapping.items() if k != self.var}
        # Capture avoidance: rename the bound variable if a substituted term
        # mentions it.
        if any(self.var in t.variables() for t in mapping.values()):
            fresh = f"{self.var}_{next(_fresh_counter)}"
            renamed = self.body.substitute({self.var: Var(fresh)})
            return Forall(fresh, renamed.substitute(mapping))
        return Forall(self.var, self.body.substitute(mapping))

    def instantiate(self, term: Term) -> Prop:
        return self.body.substitute({self.var: term})

    def __str__(self) -> str:
        return f"(forall {self.var} . {self.body})"


@dataclass(frozen=True)
class Exists(Prop):
    var: str
    body: Prop

    def variables(self) -> set[str]:
        return self.body.variables() | {self.var}

    def free_variables(self) -> set[str]:
        return self.body.free_variables() - {self.var}

    def substitute(self, mapping: Mapping[str, Term]) -> "Exists":
        mapping = {k: v for k, v in mapping.items() if k != self.var}
        if any(self.var in t.variables() for t in mapping.values()):
            fresh = f"{self.var}_{next(_fresh_counter)}"
            renamed = self.body.substitute({self.var: Var(fresh)})
            return Exists(fresh, renamed.substitute(mapping))
        return Exists(self.var, self.body.substitute(mapping))

    def instantiate(self, term: Term) -> Prop:
        return self.body.substitute({self.var: term})

    def __str__(self) -> str:
        return f"(exists {self.var} . {self.body})"


def forall(variables: str | list[str], body: Prop) -> Prop:
    """``forall('x y z', body)`` — nested universal closure."""
    if isinstance(variables, str):
        variables = variables.split()
    out = body
    for v in reversed(variables):
        out = Forall(v, out)
    return out


def equals(a: Term, b: Term) -> Atom:
    return Atom("=", (a, b))
