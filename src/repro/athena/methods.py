"""First-class methods and the check-vs-search comparison.

"Athena has ... first-class *methods*, the analog of ordinary functions,
whose purpose is to carry out proofs" — a :class:`Method` is a named,
composable proof procedure you can pass around like any value.

:func:`forward_chaining_search` is the counterpoint for the paper's
efficiency claim ("it is much more efficient to check a given proof than it
is to search for an a priori unknown proof"): a small breadth-first
forward-chaining prover that *searches* for a proposition instead of
checking a supplied deduction.  The proof-reuse bench times both.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .proof import Proof, ProofError
from .props import And, Forall, Implies, Not, Prop
from .terms import Term, Var


@dataclass
class Method:
    """A named proof procedure: ``body(proof, *args) -> theorem``."""

    name: str
    body: Callable[..., Prop]
    doc: str = ""

    def __call__(self, pf: Proof, *args) -> Prop:
        return self.body(pf, *args)

    def then(self, other: "Method") -> "Method":
        """Sequential composition: run self, feed its theorem to other."""

        def composed(pf: Proof, *args) -> Prop:
            theorem = self.body(pf, *args)
            return other.body(pf, theorem)

        return Method(f"{self.name};{other.name}", composed)

    def __repr__(self) -> str:
        return f"Method({self.name})"


def method(name: str, doc: str = "") -> Callable[[Callable], Method]:
    """Decorator form: ``@method('conj-swap')``."""

    def deco(fn: Callable[..., Prop]) -> Method:
        return Method(name, fn, doc)

    return deco


# -- standard programmed methods -------------------------------------------


@method("conj-swap", "A & B |- B & A")
def conj_swap(pf: Proof, conj: Prop) -> Prop:
    left = pf.left_and(conj)
    right = pf.right_and(conj)
    return pf.both(right, left)


@method("conj-idem", "A |- A & A")
def conj_idem(pf: Proof, p: Prop) -> Prop:
    pf.claim(p)
    return pf.both(p, p)


@method("hypothetical-syllogism", "A==>B, B==>C |- A==>C")
def hypothetical_syllogism(pf: Proof, ab: Prop, bc: Prop) -> Prop:
    assert isinstance(ab, Implies) and isinstance(bc, Implies)

    def body(p: Proof) -> Prop:
        b = p.modus_ponens(ab, p.claim(ab.antecedent))
        return p.modus_ponens(bc, b)

    return pf.assume(ab.antecedent, body)


# -- forward-chaining search (the expensive alternative) ---------------------


def forward_chaining_search(
    axioms: Iterable[Prop],
    goal: Prop,
    instantiation_terms: Iterable[Term] = (),
    max_rounds: int = 6,
    max_facts: int = 20_000,
) -> Optional[int]:
    """Breadth-first proof *search*: saturate the fact set with ∧-intro/elim,
    modus ponens, and universal specialization over ``instantiation_terms``
    until the goal appears.  Returns the number of facts generated (the
    search cost) or None on failure within bounds.

    Deliberately naive — it is the baseline demonstrating why DPL-style
    *checking* scales where search does not.
    """
    facts: set[Prop] = set(axioms)
    terms = list(instantiation_terms)
    generated = 0
    for _ in range(max_rounds):
        if goal in facts:
            return generated
        new: set[Prop] = set()

        def emit(p: Prop) -> None:
            nonlocal generated
            if p not in facts and p not in new:
                new.add(p)

        for p in facts:
            if isinstance(p, And):
                emit(p.left)
                emit(p.right)
            if isinstance(p, Forall):
                for t in terms:
                    emit(p.instantiate(t))
            if isinstance(p, Implies) and p.antecedent in facts:
                emit(p.consequent)
        # Conjunction introduction over a bounded frontier (quadratic!).
        frontier = list(facts)[:60]
        for a, b in itertools.product(frontier, frontier):
            emit(And(a, b))
            if len(new) + len(facts) > max_facts:
                break
        generated += len(new)
        if not new:
            break
        facts |= new
        if len(facts) > max_facts:
            break
    return generated if goal in facts else None
