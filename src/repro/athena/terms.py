"""First-order terms for the Athena-style proof language.

Terms are variables and function applications (constants are nullary
applications).  Everything is immutable and structurally hashable — the
assumption base is "an associative memory of propositions", which needs
structural identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping


class Term:
    """Base class of first-order terms."""

    def variables(self) -> set[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Term"]) -> "Term":
        raise NotImplementedError

    def subterms(self) -> Iterator["Term"]:
        yield self


@dataclass(frozen=True)
class Var(Term):
    """A term variable."""

    name: str

    def variables(self) -> set[str]:
        return {self.name}

    def substitute(self, mapping: Mapping[str, Term]) -> Term:
        return mapping.get(self.name, self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class App(Term):
    """Application of a function symbol: ``App('op', (x, y))`` renders as
    ``op(x, y)``; nullary applications are constants (``App('e')`` is the
    identity element)."""

    fsym: str
    args: tuple[Term, ...] = ()

    def variables(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.variables()
        return out

    def substitute(self, mapping: Mapping[str, Term]) -> Term:
        return App(self.fsym, tuple(a.substitute(mapping) for a in self.args))

    def subterms(self) -> Iterator[Term]:
        yield self
        for a in self.args:
            yield from a.subterms()

    def __str__(self) -> str:
        if not self.args:
            return self.fsym
        if len(self.args) == 2 and not self.fsym.isalnum():
            return f"({self.args[0]} {self.fsym} {self.args[1]})"
        return f"{self.fsym}({', '.join(map(str, self.args))})"


def const(name: str) -> App:
    """A constant symbol."""
    return App(name)


def replace_subterm(term: Term, old: Term, new: Term) -> Term:
    """Replace every occurrence of ``old`` inside ``term`` with ``new`` —
    the term-side workhorse of equational rewriting."""
    if term == old:
        return new
    if isinstance(term, App):
        return App(
            term.fsym,
            tuple(replace_subterm(a, old, new) for a in term.args),
        )
    return term
