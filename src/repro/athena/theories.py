"""Theories as first-class functions parameterized by operator mappings.

"We package up sets of axioms into functions, pass them around to other
functions and methods that need them ... Furthermore, we simulate
type-parameterization simply by parameterizing functions and methods by
functions that carry operator mappings.  This approach is illustrated in
the way we have already formalized — and used in proofs — numerous
properties of ordering concepts (such as partial ordering, strict weak
ordering, total ordering) [and] algebraic concepts (such as monoid, group,
ring, integral domain, field)."

A *signature* (:class:`OrderSig`, :class:`GroupSig`) is the operator
mapping; each ``*_axioms`` function produces the axiom set for any mapping.
Instantiating a theory for ``(int, +)`` vs ``(Fraction, *)`` is just calling
the function with a different signature — the same one generic proof then
checks against each instance (see :mod:`repro.athena.proofs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .props import And, Atom, Forall, Iff, Implies, Not, Prop, equals, forall
from .terms import App, Term, Var


# ---------------------------------------------------------------------------
# Ordering theories
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OrderSig:
    """Operator mapping for an ordering theory: the name of the strict
    comparison predicate (``'<'``, ``'lex<'``, ``'int.<'``, ...)."""

    less: str = "<"

    def lt(self, a: Term, b: Term) -> Atom:
        return Atom(self.less, (a, b))

    def equiv(self, a: Term, b: Term) -> Prop:
        """Fig. 6's induced equivalence: E(a, b) := ~(a<b) & ~(b<a)."""
        return And(Not(self.lt(a, b)), Not(self.lt(b, a)))


def strict_weak_order_axioms(sig: OrderSig) -> list[Prop]:
    """Fig. 6: the axioms of a Strict Weak Order — "the minimal
    requirements on < for correctness of many search or sorting-related
    algorithms, including STL's max_element, binary_search, sort"."""
    x, y, z = Var("x"), Var("y"), Var("z")
    return [
        # Irreflexivity: ~(x < x)
        forall("x", Not(sig.lt(x, x))),
        # Transitivity of <
        forall("x y z", Implies(And(sig.lt(x, y), sig.lt(y, z)), sig.lt(x, z))),
        # Transitivity of the induced equivalence E
        forall("x y z", Implies(And(sig.equiv(x, y), sig.equiv(y, z)),
                                sig.equiv(x, z))),
    ]


def strict_partial_order_axioms(sig: OrderSig) -> list[Prop]:
    x, y, z = Var("x"), Var("y"), Var("z")
    return [
        forall("x", Not(sig.lt(x, x))),
        forall("x y z", Implies(And(sig.lt(x, y), sig.lt(y, z)), sig.lt(x, z))),
    ]


def total_order_axioms(sig: OrderSig) -> list[Prop]:
    """Strict weak order + totality (x<y | x=y | y<x)."""
    from .props import Or

    x, y = Var("x"), Var("y")
    return strict_weak_order_axioms(sig) + [
        forall("x y", Or(sig.lt(x, y), Or(equals(x, y), sig.lt(y, x)))),
    ]


# ---------------------------------------------------------------------------
# Algebraic theories
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupSig:
    """Operator mapping for monoid/group theories: binary operation symbol,
    identity constant, inverse symbol."""

    op: str = "*"
    e: str = "e"
    inv: str = "inv"

    def ap(self, a: Term, b: Term) -> App:
        return App(self.op, (a, b))

    def identity(self) -> App:
        return App(self.e)

    def inverse(self, a: Term) -> App:
        return App(self.inv, (a,))


def semigroup_axioms(sig: GroupSig) -> list[Prop]:
    x, y, z = Var("x"), Var("y"), Var("z")
    return [
        forall("x y z",
               equals(sig.ap(sig.ap(x, y), z), sig.ap(x, sig.ap(y, z)))),
    ]


def monoid_axioms(sig: GroupSig) -> list[Prop]:
    x = Var("x")
    return semigroup_axioms(sig) + [
        forall("x", equals(sig.ap(x, sig.identity()), x)),   # right identity
        forall("x", equals(sig.ap(sig.identity(), x), x)),   # left identity
    ]


def group_axioms(sig: GroupSig) -> list[Prop]:
    """Associativity + right identity + right inverse.  (Left identity and
    left inverse are *theorems*, derived in
    :mod:`repro.athena.proofs.group_theory` — a classic showpiece for proof
    reuse across instances.)"""
    x = Var("x")
    return semigroup_axioms(sig) + [
        forall("x", equals(sig.ap(x, sig.identity()), x)),           # right id
        forall("x", equals(sig.ap(x, sig.inverse(x)), sig.identity())),  # right inv
    ]


def abelian_axioms(sig: GroupSig) -> list[Prop]:
    x, y = Var("x"), Var("y")
    return group_axioms(sig) + [
        forall("x y", equals(sig.ap(x, y), sig.ap(y, x))),
    ]


@dataclass(frozen=True)
class RingSig:
    """Operator mapping for ring-like theories."""

    add: GroupSig = GroupSig(op="+", e="0", inv="neg")
    mul: GroupSig = GroupSig(op="*", e="1", inv="recip")


def ring_axioms(sig: RingSig) -> list[Prop]:
    x, y, z = Var("x"), Var("y"), Var("z")
    a, m = sig.add, sig.mul
    return abelian_axioms(a) + semigroup_axioms(m) + [
        forall("x", equals(m.ap(x, m.identity()), x)),
        forall("x", equals(m.ap(m.identity(), x), x)),
        # Distributivity (both sides).
        forall("x y z", equals(m.ap(x, a.ap(y, z)),
                               a.ap(m.ap(x, y), m.ap(x, z)))),
        forall("x y z", equals(m.ap(a.ap(x, y), z),
                               a.ap(m.ap(x, z), m.ap(y, z)))),
    ]


# ---------------------------------------------------------------------------
# Sequence/iterator theory (container, iterator, range concepts)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeSig:
    """Operator mapping for the sequential-computation concepts the paper
    lists (container, iterator, range): successor function and a
    reachability predicate."""

    succ: str = "next"
    reaches: str = "reaches"

    def nxt(self, i: Term) -> App:
        return App(self.succ, (i,))

    def reach(self, a: Term, b: Term) -> Atom:
        return Atom(self.reaches, (a, b))


def range_axioms(sig: RangeSig) -> list[Prop]:
    """Reachability axioms for valid ranges: [i, i) is a valid (empty)
    range, and reachability extends through successor — the facts STLlint's
    range checks rest on."""
    i, j = Var("i"), Var("j")
    return [
        forall("i", sig.reach(i, i)),
        forall("i j", Implies(sig.reach(i, j), sig.reach(i, sig.nxt(j)))),
    ]


TheoryFn = Callable[..., list[Prop]]

#: Name -> theory function, the library's "numerous properties ... already
#: formalized".
THEORIES: dict[str, TheoryFn] = {
    "strict partial order": strict_partial_order_axioms,
    "strict weak order": strict_weak_order_axioms,
    "total order": total_order_axioms,
    "semigroup": semigroup_axioms,
    "monoid": monoid_axioms,
    "group": group_axioms,
    "abelian group": abelian_axioms,
    "ring": ring_axioms,
    "range": range_axioms,
}
