"""Instantiating generic theories and proofs for concrete models.

This is the bridge between the proof layer and the modeling layer: an
:class:`~repro.concepts.algebra.AlgebraicStructure` (say, ``(int, +)``)
gets its own operator-mapping signature (symbols ``int.+``, ``int.e``,
``int.inv``), the generic group proofs are *checked* against the
instantiated axioms, and the resulting theorems are additionally evaluated
on the structure's sample values — so a declared model gets both a
deductive certificate (the theorem follows from the axioms) and an
empirical one (the axioms, hence the theorem, hold on the samples).

"The proofs needed in semantic concept-checking are thus supplied by
library component developers along with the specified concept requirements
of the components.  Therefore the language processor must only do proof
checking, not proof search."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..concepts.algebra import AlgebraicStructure
from .proof import Proof, ProofError
from .proofs.group_theory import prove_group_theorems
from .props import Atom, Forall, Prop
from .terms import App, Term, Var
from .theories import GroupSig, group_axioms, monoid_axioms


def sig_for_structure(s: AlgebraicStructure) -> GroupSig:
    """A per-instance operator mapping: symbols are tagged with the model
    so different instances' theorems cannot be confused."""
    tag = f"{s.typ.__name__}.{s.op_symbol}"
    return GroupSig(op=tag, e=f"{tag}.e", inv=f"{tag}.inv")


def eval_term(term: Term, sig: GroupSig, s: AlgebraicStructure,
              env: Mapping[str, Any]) -> Any:
    """Evaluate a term over the concrete structure."""
    if isinstance(term, Var):
        return env[term.name]
    assert isinstance(term, App)
    if term.fsym == sig.op:
        return s.apply(
            eval_term(term.args[0], sig, s, env),
            eval_term(term.args[1], sig, s, env),
        )
    if term.fsym == sig.e:
        like = next(iter(env.values()), None)
        return s.identity_for(like)
    if term.fsym == sig.inv:
        if s.inverse is None:
            raise ValueError(f"structure {s.typ.__name__} has no inverse")
        return s.inverse(eval_term(term.args[0], sig, s, env))
    raise ValueError(f"unknown function symbol {term.fsym}")


def eval_equation(p: Prop, sig: GroupSig, s: AlgebraicStructure,
                  env: Mapping[str, Any]) -> bool:
    """Evaluate a (possibly universally quantified) equation on one
    variable assignment."""
    while isinstance(p, Forall):
        p = p.body
    assert isinstance(p, Atom) and p.pred == "=", f"not an equation: {p}"
    lhs = eval_term(p.args[0], sig, s, env)
    rhs = eval_term(p.args[1], sig, s, env)
    try:
        return bool(lhs == rhs)
    except Exception:  # noqa: BLE001 - foreign __eq__
        return False


def _assignments(p: Prop, values: tuple) -> list[dict[str, Any]]:
    names: list[str] = []
    while isinstance(p, Forall):
        names.append(p.var)
        p = p.body
    if not names:
        return [{}]
    out = []
    for sample in values:
        vs = sample if isinstance(sample, tuple) else (sample,)
        vs = (vs * 3)[: len(names)] if len(vs) < len(names) else vs
        out.append(dict(zip(names, vs)))
    return out


@dataclass
class InstanceReport:
    """Result of instantiating the group theory for one model."""

    structure: AlgebraicStructure
    theorems: dict[str, Prop]
    proof_steps: int
    samples_checked: int
    empirical_ok: bool

    def render(self) -> str:
        name = f"({self.structure.typ.__name__}, '{self.structure.op_symbol}')"
        lines = [f"instance {name}: {self.proof_steps} checked deduction steps"]
        for title, thm in self.theorems.items():
            lines.append(f"  theorem [{title}]: {thm}")
        lines.append(
            f"  empirical check on {self.samples_checked} sample "
            f"assignment(s): {'ok' if self.empirical_ok else 'FAILED'}"
        )
        return "\n".join(lines)


def instantiate_group_proofs(s: AlgebraicStructure) -> InstanceReport:
    """The paper's reuse story in one call: the generic proofs are checked
    against this instance's axioms, then the theorems are evaluated on the
    instance's samples."""
    if s.inverse is None:
        raise ValueError(
            f"({s.typ.__name__}, '{s.op_symbol}') declares no inverse; "
            f"the group proofs do not apply"
        )
    sig = sig_for_structure(s)
    pf, theorems = prove_group_theorems(sig)
    checked = 0
    ok = True
    for thm in theorems.values():
        for env in _assignments(thm, s.samples):
            checked += 1
            if not eval_equation(thm, sig, s, env):
                ok = False
    return InstanceReport(s, theorems, pf.steps, checked, ok)


def check_axioms_empirically(s: AlgebraicStructure,
                             level: str = "group") -> bool:
    """Evaluate the instantiated theory axioms on the structure's samples —
    the sampling analogue of concept-map checking, phrased deductively."""
    sig = sig_for_structure(s)
    axioms = group_axioms(sig) if level == "group" else monoid_axioms(sig)
    for ax in axioms:
        for env in _assignments(ax, s.samples):
            if not eval_equation(ax, sig, s, env):
                return False
    return True
