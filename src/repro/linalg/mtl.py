"""MTL-style matrix concepts and concept-dispatched kernels.

The paper's reference 38 is the authors' Matrix Template Library: "a generic
programming approach to high performance numerical linear algebra".  Its
core move is the one Section 2.1 describes for sort: one generic operation
(`matvec`), several implementations selected by the *concept* the matrix
type models — dense, banded, diagonal — each with a different complexity
guarantee.  This module rebuilds that story:

=================  ===================  =================
matrix concept     matvec kernel        time
=================  ===================  =================
DenseMatrix        full GEMV            O(n·m)
BandedMatrix       band-limited GEMV    O(n·b)
DiagonalMatrixC    elementwise scale    O(n)
=================  ===================  =================

The refinement chain DiagonalMatrixC ⊂ BandedMatrix ⊂ DenseMatrix mirrors
capability: every diagonal matrix *could* be multiplied densely; dispatch
picks the cheapest kernel the type's concept permits.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..concepts import (
    AssociatedType,
    ComplexityGuarantee,
    Concept,
    Exact,
    GenericFunction,
    Param,
    method,
    models as _models,
)
from ..concepts.complexity import linear, parse
from .vectors import FVector

M = Param("M")

DenseMatrixConcept = Concept(
    "Dense Matrix",
    params=("M",),
    requirements=[
        method("m.rows()", "rows", [M], Exact(int)),
        method("m.cols()", "cols", [M], Exact(int)),
        method("m.entry(i, j)", "entry", [M, Exact(int), Exact(int)]),
        ComplexityGuarantee("entry", parse("1")),
        ComplexityGuarantee("matvec", parse("n m")),
    ],
    doc="Every entry individually addressable; the most general (and most "
        "expensive) multiplication applies.",
)

BandedMatrixConcept = Concept(
    "Banded Matrix",
    params=("M",),
    refines=[DenseMatrixConcept],
    requirements=[
        method("m.bandwidth()", "bandwidth", [M], Exact(int)),
        ComplexityGuarantee("matvec", parse("n b")),
    ],
    doc="Nonzeros confined within `bandwidth` of the diagonal; matvec "
        "needs only the band.",
)

DiagonalMatrixConcept = Concept(
    "Diagonal Matrix",
    params=("M",),
    refines=[BandedMatrixConcept],
    requirements=[
        method("m.diagonal()", "diagonal", [M]),
        ComplexityGuarantee("matvec", linear()),
    ],
    doc="Bandwidth zero: matvec is an elementwise scale.",
)


class DenseMatrixMTL:
    """Row-major dense matrix, entry-addressable."""

    def __init__(self, data) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2:
            raise ValueError("matrix data must be 2-D")

    def rows(self) -> int:
        return int(self.data.shape[0])

    def cols(self) -> int:
        return int(self.data.shape[1])

    def entry(self, i: int, j: int) -> float:
        return float(self.data[i, j])

    def __repr__(self) -> str:
        return f"DenseMatrixMTL({self.rows()}x{self.cols()})"


class BandedMatrixMTL(DenseMatrixMTL):
    """Square banded matrix: stored as (2b+1) diagonals.

    ``bands[k]`` holds diagonal offset ``k - b`` (LAPACK band storage,
    simplified): entry(i, j) is bands[j - i + b][min(i, j)] within the band,
    0 outside.
    """

    def __init__(self, n: int, bandwidth: int, bands=None) -> None:
        self.n = n
        self._b = bandwidth
        width = 2 * bandwidth + 1
        if bands is None:
            self.bands = np.zeros((width, n), dtype=np.float64)
        else:
            self.bands = np.asarray(bands, dtype=np.float64)
            if self.bands.shape != (width, n):
                raise ValueError(
                    f"band storage must be {(width, n)}, got {self.bands.shape}"
                )

    @classmethod
    def random(cls, n: int, bandwidth: int, seed: int = 0) -> "BandedMatrixMTL":
        rng = np.random.default_rng(seed)
        out = cls(n, bandwidth)
        out.bands = rng.standard_normal(out.bands.shape)
        return out

    def rows(self) -> int:
        return self.n

    def cols(self) -> int:
        return self.n

    def bandwidth(self) -> int:
        return self._b

    def entry(self, i: int, j: int) -> float:
        off = j - i
        if abs(off) > self._b:
            return 0.0
        return float(self.bands[off + self._b][min(i, j)])

    def to_dense(self) -> DenseMatrixMTL:
        out = np.zeros((self.n, self.n))
        for i in range(self.n):
            for j in range(max(0, i - self._b), min(self.n, i + self._b + 1)):
                out[i, j] = self.entry(i, j)
        return DenseMatrixMTL(out)

    @property
    def data(self):  # type: ignore[override]
        return self.to_dense().data

    def __repr__(self) -> str:
        return f"BandedMatrixMTL(n={self.n}, b={self._b})"


class DiagonalMatrixMTL(BandedMatrixMTL):
    """Diagonal matrix stored as its diagonal."""

    def __init__(self, diagonal) -> None:
        diag = np.asarray(diagonal, dtype=np.float64)
        super().__init__(len(diag), 0, bands=diag.reshape(1, -1))

    def diagonal(self) -> np.ndarray:
        return self.bands[0]

    def __repr__(self) -> str:
        return f"DiagonalMatrixMTL(n={self.n})"


# -- the concept-dispatched kernel -------------------------------------------

matvec = GenericFunction("matvec")


@matvec.overload(requires=[(DenseMatrixConcept, 0)],
                 name="matvec<DenseMatrix> (full GEMV)")
def _matvec_dense(m, x: FVector) -> FVector:
    """O(n·m): touch every entry."""
    if m.cols() != len(x):
        raise ValueError(f"shape mismatch: {m.cols()} cols vs {len(x)}")
    return FVector.from_array(m.data @ x.data)


@matvec.overload(requires=[(BandedMatrixConcept, 0)],
                 name="matvec<BandedMatrix> (band GEMV)")
def _matvec_banded(m, x: FVector) -> FVector:
    """O(n·b): one pass per stored diagonal."""
    if m.cols() != len(x):
        raise ValueError(f"shape mismatch: {m.cols()} cols vs {len(x)}")
    n, b = m.rows(), m.bandwidth()
    y = np.zeros(n)
    for k in range(-b, b + 1):
        diag = m.bands[k + b]
        if k >= 0:
            # entries (i, i+k) for i in [0, n-k): y[i] += a * x[i+k]
            length = n - k
            y[:length] += diag[:length] * x.data[k:k + length]
        else:
            length = n + k
            y[-k:] += diag[:length] * x.data[:length]
    return FVector.from_array(y)


@matvec.overload(requires=[(DiagonalMatrixConcept, 0)],
                 name="matvec<DiagonalMatrix> (scale)")
def _matvec_diagonal(m, x: FVector) -> FVector:
    """O(n): elementwise."""
    if m.cols() != len(x):
        raise ValueError(f"shape mismatch: {m.cols()} cols vs {len(x)}")
    return FVector.from_array(m.diagonal() * x.data)


def matvec_with_fallback(m, x: FVector) -> FVector:
    """Dispatch ``matvec`` by concept; fall back to a plain dense product
    for matrix-likes that model none of the MTL concepts but expose
    ``.data`` (e.g. ad-hoc test doubles).

    The fallback path is why :class:`NoMatchingOverloadError` builds its
    per-overload explanation lazily: catching the error here costs three
    cheap table probes, not a re-walk of every overload's requirements to
    render diagnostics nobody reads.
    """
    from ..concepts import NoMatchingOverloadError

    try:
        return matvec(m, x)
    except NoMatchingOverloadError:
        return FVector.from_array(np.asarray(m.data) @ x.data)


def _declare() -> None:
    _models.declare(DenseMatrixConcept, DenseMatrixMTL)
    _models.declare(BandedMatrixConcept, BandedMatrixMTL)
    _models.declare(DiagonalMatrixConcept, DiagonalMatrixMTL)


_declare()
