"""Dense vectors over real and complex scalars.

These are the ``V`` types of Fig. 3's Vector Space concept.  The scalar type
is deliberately *not* an associated type of the vector type: ``CVector``
forms a vector space over ``complex`` **and** over ``float`` — the two
models ``(CVector, complex)`` and ``(CVector, float)`` declared in
:mod:`repro.linalg` are the paper's Section 2.4 argument in executable form.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

Scalar = Union[int, float, complex]


class _DenseVector:
    """Shared implementation over a numpy array of a fixed dtype."""

    dtype: type = np.float64

    def __init__(self, data: Iterable[Scalar]) -> None:
        self.data = np.asarray(list(data) if not isinstance(data, np.ndarray) else data,
                               dtype=self.dtype)
        if self.data.ndim != 1:
            raise ValueError("vector data must be one-dimensional")

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "_DenseVector":
        out = cls.__new__(cls)
        out.data = np.asarray(arr, dtype=cls.dtype)
        return out

    @classmethod
    def zeros(cls, n: int) -> "_DenseVector":
        return cls.from_array(np.zeros(n, dtype=cls.dtype))

    def zeros_like(self) -> "_DenseVector":
        return type(self).zeros(len(self.data))

    # -- Additive Abelian Group ----------------------------------------------

    def __add__(self, other: "_DenseVector") -> "_DenseVector":
        self._check_peer(other)
        return type(self).from_array(self.data + other.data)

    def __sub__(self, other: "_DenseVector") -> "_DenseVector":
        self._check_peer(other)
        return type(self).from_array(self.data - other.data)

    def __neg__(self) -> "_DenseVector":
        return type(self).from_array(-self.data)

    # -- Vector Space: mult(v, s) and mult(s, v) -------------------------------

    def scale(self, s: Scalar) -> "_DenseVector":
        return type(self).from_array(self.data * s)

    def __mul__(self, s: Scalar) -> "_DenseVector":
        return self.scale(s)

    def __rmul__(self, s: Scalar) -> "_DenseVector":
        return self.scale(s)

    # -- misc -------------------------------------------------------------------

    def dot(self, other: "_DenseVector") -> Scalar:
        self._check_peer(other)
        return complex(np.dot(np.conj(self.data), other.data)) \
            if np.iscomplexobj(self.data) else float(np.dot(self.data, other.data))

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def _check_peer(self, other: "_DenseVector") -> None:
        if not isinstance(other, _DenseVector):
            raise TypeError(f"expected a vector, got {type(other).__name__}")
        if len(self.data) != len(other.data):
            raise ValueError(
                f"dimension mismatch: {len(self.data)} vs {len(other.data)}"
            )

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _DenseVector):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.allclose(self.data, other.data)
        )

    def __hash__(self) -> int:  # vectors are mutable via .data; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.data.tolist()!r})"


class FVector(_DenseVector):
    """Real (float64) vector; with ``float`` it models Fig. 3's
    Vector Space."""

    dtype = np.float64


class CVector(_DenseVector):
    """Complex (complex128) vector; models Vector Space over ``complex``
    *and* over ``float`` — the scalar type is not determined by the vector
    type (Section 2.4)."""

    dtype = np.complex128
