"""Dense matrices: the ``A · I -> A`` and ``A · A^{-1} -> I`` instances of
Fig. 5, and the operands of the CLA-CRM mixed-precision kernels."""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

Scalar = Union[int, float, complex]


class SingularMatrixError(ValueError):
    """Inverse of a (numerically) singular matrix was requested — the
    witness that square matrices under multiplication form a Monoid but not
    a Group; only the invertible ones (GL(n)) have inverses."""


class Matrix:
    """A real (float64) dense matrix."""

    dtype: type = np.float64

    def __init__(self, rows: Iterable[Iterable[Scalar]]) -> None:
        self.data = np.asarray(
            rows if isinstance(rows, np.ndarray) else [list(r) for r in rows],
            dtype=self.dtype,
        )
        if self.data.ndim != 2:
            raise ValueError("matrix data must be two-dimensional")

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Matrix":
        out = cls.__new__(cls)
        out.data = np.asarray(arr, dtype=cls.dtype)
        return out

    @classmethod
    def identity(cls, n: int) -> "Matrix":
        return cls.from_array(np.eye(n, dtype=cls.dtype))

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "Matrix":
        return cls.from_array(np.zeros((rows, cols), dtype=cls.dtype))

    def identity_like(self) -> "Matrix":
        if not self.is_square():
            raise ValueError("identity_like requires a square matrix")
        return type(self).identity(self.data.shape[0])

    # -- ring-ish operations -----------------------------------------------------

    def __add__(self, other: "Matrix") -> "Matrix":
        return type(self).from_array(self.data + self._peer(other))

    def __sub__(self, other: "Matrix") -> "Matrix":
        return type(self).from_array(self.data - self._peer(other))

    def __neg__(self) -> "Matrix":
        return type(self).from_array(-self.data)

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            raise TypeError(f"expected a matrix, got {type(other).__name__}")
        if self.data.shape[1] != other.data.shape[0]:
            raise ValueError(
                f"shape mismatch: {self.data.shape} @ {other.data.shape}"
            )
        result = type(self) if self.dtype == other.dtype else (
            ComplexMatrix if np.iscomplexobj(self.data) or
            np.iscomplexobj(other.data) else Matrix
        )
        return result.from_array(self.data @ other.data)

    def __mul__(self, s: Scalar) -> "Matrix":
        return type(self).from_array(self.data * s)

    __rmul__ = __mul__

    def inverse(self) -> "Matrix":
        if not self.is_square():
            raise SingularMatrixError("only square matrices can be inverted")
        try:
            inv = np.linalg.inv(self.data)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from exc
        # numpy happily "inverts" some nearly-singular matrices; verify.
        if not np.allclose(self.data @ inv, np.eye(self.data.shape[0]),
                           atol=1e-8):
            raise SingularMatrixError("matrix is numerically singular")
        return type(self).from_array(inv)

    # -- predicates --------------------------------------------------------------

    def is_square(self) -> bool:
        return self.data.shape[0] == self.data.shape[1]

    def is_identity(self, tol: float = 1e-9) -> bool:
        return self.is_square() and bool(
            np.allclose(self.data, np.eye(self.data.shape[0]), atol=tol)
        )

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self.data.shape)  # type: ignore[return-value]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.allclose(self.data, other.data)
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.data.tolist()!r})"


class ComplexMatrix(Matrix):
    """A complex (complex128) dense matrix — the left operand of CLA-CRM."""

    dtype = np.complex128
