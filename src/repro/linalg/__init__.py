"""Linear-algebra substrate: Fig. 3's Vector Space models and the CLA-CRM
mixed-precision kernels of Section 2.4.

On import, declares:

- Field models for ``float``, ``complex``, ``Fraction``;
- Additive Abelian Group models for :class:`FVector`, :class:`CVector`,
  :class:`Matrix`, :class:`ComplexMatrix`;
- Vector Space models for ``(FVector, float)``, ``(CVector, complex)`` and
  — the point of Section 2.4 — ``(CVector, float)``;
- algebra-registry structures for matrix multiplication (the ``A · I -> A``
  and ``A · A^{-1} -> I`` rows of Fig. 5).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..concepts import models as _models
from ..concepts.algebra import (
    AdditiveAbelianGroup,
    AlgebraicStructure,
    Field,
    Group,
    Monoid,
    VectorSpace,
    algebra,
)
from .matrices import ComplexMatrix, Matrix, SingularMatrixError
from .mtl import (
    BandedMatrixConcept,
    BandedMatrixMTL,
    DenseMatrixConcept,
    DenseMatrixMTL,
    DiagonalMatrixConcept,
    DiagonalMatrixMTL,
    matvec,
    matvec_with_fallback,
)
from .mixed import (
    axpy_mixed,
    axpy_promote,
    flops_mixed,
    flops_promote,
    matmul_mixed,
    matmul_promote,
    scale_mixed,
    scale_promote,
)
from .vectors import CVector, FVector

__all__ = [
    "FVector", "CVector", "Matrix", "ComplexMatrix", "SingularMatrixError",
    "DenseMatrixConcept", "BandedMatrixConcept", "DiagonalMatrixConcept",
    "DenseMatrixMTL", "BandedMatrixMTL", "DiagonalMatrixMTL", "matvec", "matvec_with_fallback",
    "scale_mixed", "scale_promote", "matmul_mixed", "matmul_promote",
    "axpy_mixed", "axpy_promote", "flops_mixed", "flops_promote",
]


def _field_ops(zero, one):
    return {
        "op": lambda a, b: a + b,
        "identity": lambda a=None: zero,
        "inverse": lambda a: -a,
        "mul": lambda a, b: a * b,
        "one": lambda a=None: one,
        "reciprocal": lambda a: one / a if a != zero else zero,
    }


def _vector_group_ops():
    return {
        "op": lambda a, b: a + b,
        "identity": lambda a: a.zeros_like(),
        "inverse": lambda a: -a,
    }


def _declare_all() -> None:
    # Scalar fields.  Samples use exactly-representable values so the
    # (sampling-based) axiom checks are honest for floating point.
    _models.declare(
        Field, float, operation_impls=_field_ops(0.0, 1.0),
        sampler=lambda: [(2.0, 0.5, 4.0), (1.0, -8.0, 0.25), (0.0, 1.0, 2.0)],
    )
    _models.declare(
        Field, complex, operation_impls=_field_ops(0j, 1 + 0j),
        sampler=lambda: [(2j, 1 + 0j, 4j), (1 + 1j, -2j, 0.5 + 0j)],
    )
    _models.declare(
        Field, Fraction,
        operation_impls=_field_ops(Fraction(0), Fraction(1)),
        sampler=lambda: [
            (Fraction(2, 3), Fraction(5, 7), Fraction(-1, 2)),
            (Fraction(0), Fraction(1), Fraction(9, 4)),
        ],
    )

    # Vector additive groups.
    for vec_cls in (FVector, CVector):
        _models.declare(
            AdditiveAbelianGroup, vec_cls,
            operation_impls=_vector_group_ops(),
            sampler=(lambda cls: lambda: [
                (cls([1.0, 2.0]), cls([0.5, -1.0]), cls([4.0, 0.0])),
                (cls.zeros(2), cls([1.0, 1.0]), cls([-2.0, 8.0])),
            ])(vec_cls),
        )
    for mat_cls in (Matrix, ComplexMatrix):
        _models.declare(
            AdditiveAbelianGroup, mat_cls,
            operation_impls={
                "op": lambda a, b: a + b,
                "identity": lambda a: type(a).zeros(*a.shape),
                "inverse": lambda a: -a,
            },
            sampler=(lambda cls: lambda: [
                (cls([[1.0, 0.0], [0.5, 2.0]]),
                 cls([[0.0, 1.0], [4.0, -1.0]]),
                 cls([[2.0, 2.0], [0.0, 0.0]])),
            ])(mat_cls),
        )

    # Vector spaces (Fig. 3).  Note the two distinct scalar types for
    # CVector: the scalar type of a vector space is not *determined* by the
    # vector type.
    def vs_ops():
        return {
            "op": lambda a, b: a + b,
            "identity": lambda a: a.zeros_like(),
            "inverse": lambda a: -a,
            "mult": lambda a, b: a * b,
        }

    _models.declare(
        VectorSpace, (FVector, float), operation_impls=vs_ops(),
        sampler=lambda: [
            (FVector([1.0, 2.0]), FVector([0.5, -1.0]), 4.0),
            (FVector.zeros(3), FVector([1.0, 0.0, 2.0]), 0.5),
        ],
    )
    _models.declare(
        VectorSpace, (CVector, complex), operation_impls=vs_ops(),
        sampler=lambda: [
            (CVector([1j, 2.0]), CVector([0.5, -1j]), 2j),
        ],
    )
    _models.declare(
        VectorSpace, (CVector, float),
        operation_impls={
            "op": lambda a, b: a + b,
            "identity": lambda a: a.zeros_like(),
            "inverse": lambda a: -a,
            # The efficient mixed kernel IS the model's scalar multiply.
            "mult": lambda a, b: (
                scale_mixed(a, b) if isinstance(a, CVector) else scale_mixed(b, a)
            ),
        },
        sampler=lambda: [
            (CVector([1j, 2.0]), CVector([0.5, -1j]), 4.0),
            (CVector.zeros(2), CVector([1 + 1j, 0j]), 0.25),
        ],
    )

    # Fig. 5's matrix rows: (Matrix, '@') under multiplication.
    mat_samples = (
        (Matrix([[2.0, 1.0], [1.0, 1.0]]),
         Matrix([[1.0, 0.0], [0.5, 2.0]]),
         Matrix([[0.0, 1.0], [4.0, 1.0]])),
    )
    algebra.declare(AlgebraicStructure(
        Matrix, "@", Group, lambda a, b: a @ b,
        make_identity=lambda like: like.identity_like(),
        is_identity=lambda m: isinstance(m, Matrix) and m.is_identity(),
        inverse=lambda a: a.inverse(),
        samples=mat_samples,
    ))


_declare_all()
