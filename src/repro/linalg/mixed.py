"""Mixed-precision kernels: the CLA-CRM argument of Section 2.4.

"One such example is the CLA-CRM subroutine, which multiplies a complex
matrix by a real matrix.  The vector-scalar multiplications performed in
this subroutine contain multiplications between complex<float> and float,
which are significantly more efficient than converting the second argument
to a complex number and performing complex multiplication.  Modeling the
scalar type of a vector as an associated type would lead to this inefficient
algorithm."

Each operation comes in two variants:

- ``*_promote``: what an associated-type design forces — promote the real
  operand to complex, then run the complex x complex kernel.
- ``*_mixed``:  what the multi-type Vector Space concept permits — keep the
  real operand real and use the cheaper complex x real kernel (2 real
  multiplies per element instead of a full complex multiply; one real GEMM
  per real/imaginary part instead of a complex GEMM).

The Fig. 3 bench measures both and reports the ratio.
"""

from __future__ import annotations

import numpy as np

from .matrices import ComplexMatrix, Matrix
from .vectors import CVector


def scale_promote(v: CVector, s: float) -> CVector:
    """Complex-vector x real-scalar by promotion: s becomes complex(s, 0)
    and the complex multiply runs (4 real multiplies + 2 adds per element
    in the general kernel)."""
    sc = np.complex128(complex(s, 0.0))
    return CVector.from_array(v.data * sc)

def scale_mixed(v: CVector, s: float) -> CVector:
    """Complex-vector x real-scalar the mixed way: scale the interleaved
    real/imaginary components directly (2 real multiplies per element
    instead of the complex kernel's 4).

    Note on expectations: elementwise scaling is memory-bandwidth-bound on
    modern hardware, so the 2x multiply saving mostly vanishes at the wall
    clock for long vectors; the *compute-bound* CLA-CRM case is
    :func:`matmul_mixed`, where the saving is measurable.  The flop
    accounting (:func:`flops_mixed`) captures the paper's arithmetic
    argument either way.
    """
    out = np.empty_like(v.data)
    np.multiply(v.data.view(np.float64), float(s), out=out.view(np.float64))
    return CVector.from_array(out)


def matmul_promote(a: ComplexMatrix, b: Matrix) -> ComplexMatrix:
    """CLA-CRM by promotion: B is converted to complex and a complex GEMM
    runs (equivalent to 4 real GEMMs + 2 additions of the result halves)."""
    bc = b.data.astype(np.complex128)
    return ComplexMatrix.from_array(a.data @ bc)


def matmul_mixed(a: ComplexMatrix, b: Matrix) -> ComplexMatrix:
    """CLA-CRM proper: ``(Re A + i Im A) @ B = (Re A @ B) + i (Im A @ B)``
    — two real GEMMs, no promotion of B."""
    if a.data.shape[1] != b.data.shape[0]:
        raise ValueError(f"shape mismatch: {a.data.shape} @ {b.data.shape}")
    real = np.ascontiguousarray(a.data.real) @ b.data
    imag = np.ascontiguousarray(a.data.imag) @ b.data
    out = np.empty((a.data.shape[0], b.data.shape[1]), dtype=np.complex128)
    out.real = real
    out.imag = imag
    return ComplexMatrix.from_array(out)


def axpy_promote(alpha: float, x: CVector, y: CVector) -> CVector:
    """y + alpha*x with alpha promoted to complex."""
    return CVector.from_array(y.data + np.complex128(alpha) * x.data)


def axpy_mixed(alpha: float, x: CVector, y: CVector) -> CVector:
    """y + alpha*x with alpha kept real (numpy's complex*real fast path on
    the component view)."""
    scaled = x.data.copy()
    scaled.view(np.float64)[:] *= float(alpha)
    return CVector.from_array(y.data + scaled)


def flops_promote(n: int, m: int | None = None, k: int | None = None) -> int:
    """Real-multiply count for the promoting kernels: vector scale when only
    ``n`` is given, GEMM for (n x k) @ (k x m)."""
    if m is None:
        return 4 * n  # complex x complex per element: 4 mults
    assert k is not None
    return 8 * n * m * k  # complex GEMM: 4 mults + effectively 4 adds worth


def flops_mixed(n: int, m: int | None = None, k: int | None = None) -> int:
    """Real-multiply count for the mixed kernels."""
    if m is None:
        return 2 * n  # two real mults per element
    assert k is not None
    return 4 * n * m * k  # two real GEMMs
