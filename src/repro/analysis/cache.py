"""Content-hash-keyed on-disk result cache.

The cache is the heart of "analysis as a service": a lint or optimize
result for one file is a pure function of

- the file's **content hash**,
- the **config fingerprint** (engine + the semantic knobs, see
  :meth:`repro.analysis.config.AnalysisConfig.fingerprint`),
- the **dependency fingerprint** (the content hashes of the file's
  transitive same-project imports, see :mod:`repro.analysis.deps`), and
- the **schema version** of the serialized payload,

so all four are folded into the cache *key*.  Invalidation is therefore
by construction, never by bookkeeping: editing a file, switching
engines, changing a semantically relevant knob, upgrading the payload
schema, or editing any transitive callee's module each produce a
different key, and the stale entry is simply never looked up again.
There is no mutable index to corrupt and no coherence protocol to get
wrong — the only delete paths are the explicit ``invalidate`` operation
and the discard of an entry that fails schema validation on read.

Entries are single JSON files written atomically (temp file +
``os.replace``) with sorted keys, so concurrent writers (worker
processes, parallel CI jobs) can only ever race to write *identical
bytes*, and a reader never observes a torn entry.

Process-wide counters (`hits`/`misses`/`stores`/`invalidations`/
`discards`) follow the same pattern as the fixpoint engine's
:func:`repro.stllint.dataflow.stats`: module-global, sampled into trace
exports as the ``analysis.cache`` counter track, and assertable from
tests and CI gates.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Iterator, Optional

from ..trace import core as _trace

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_ANALYSIS_CACHE"


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-analysis"


class CacheStats:
    """Process-wide cache counters (one instance: :data:`STATS`)."""

    __slots__ = ("hits", "misses", "stores", "invalidations", "discards")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0           # entry found and validated
        self.misses = 0         # no entry for the key
        self.stores = 0         # entries written
        self.invalidations = 0  # entries removed by an invalidate op
        self.discards = 0       # entries rejected by schema validation

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


STATS = CacheStats()


def stats() -> dict[str, int]:
    """Snapshot of the process-wide cache counters."""
    return STATS.as_dict()


def reset_stats() -> None:
    STATS.reset()


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def make_key(kind: str, path: str, content_sha: str, fingerprint: str,
             deps_fingerprint: str, schema_version: int) -> str:
    """Digest of every coherence-relevant input (see module docstring).

    ``path`` (resolved) is part of the key because results are not
    purely content-addressed: findings embed the file's path, so two
    identical-content files must not alias to one entry.
    """
    blob = "\x1f".join(
        (kind, str(schema_version), path, content_sha, fingerprint,
         deps_fingerprint)
    ).encode("utf-8")
    return f"{kind}-{hashlib.sha256(blob).hexdigest()}"


class AnalysisCache:
    """One cache directory of atomically written JSON entries."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()

    # -- entry I/O -----------------------------------------------------------

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the stored envelope for ``key``, or ``None`` (counted
        as a miss).  An unreadable/undecodable entry is discarded."""
        path = self._entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
            envelope = json.loads(raw)
        except (OSError, ValueError):
            if path.exists():
                self.discard(key)
            STATS.misses += 1
            self._trace_event("miss", key)
            return None
        STATS.hits += 1
        self._trace_event("hit", key)
        return envelope

    def put(self, key: str, envelope: dict) -> None:
        """Atomically write ``envelope`` (sorted keys: byte-deterministic,
        so racing writers of the same key write identical files)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(envelope, sort_keys=True, indent=None,
                             separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self._entry_path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        STATS.stores += 1
        self._trace_event("store", key)

    def discard(self, key: str) -> None:
        """Remove an entry that failed validation (old schema, torn
        write from a pre-atomic era, hand-edited junk)."""
        try:
            self._entry_path(key).unlink()
        except OSError:
            pass
        STATS.discards += 1
        self._trace_event("discard", key)

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*-*.json")))

    def invalidate(self, paths: Optional[list[str]] = None) -> int:
        """Remove entries.  With ``paths`` given, only entries whose
        recorded source path matches one of them (by resolved path);
        otherwise everything.  Returns the number removed."""
        wanted = None
        if paths is not None:
            wanted = {str(pathlib.Path(p).resolve()) for p in paths}
        removed = 0
        for entry in self.entries():
            if wanted is not None:
                try:
                    envelope = json.loads(entry.read_text(encoding="utf-8"))
                    recorded = envelope.get("key", {}).get("path", "")
                except (OSError, ValueError):
                    recorded = ""
                if str(pathlib.Path(recorded).resolve()) not in wanted:
                    continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        STATS.invalidations += removed
        if removed:
            self._trace_event("invalidate", f"{removed} entries")
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # -- tracing -------------------------------------------------------------

    @staticmethod
    def _trace_event(outcome: str, key: str) -> None:
        tr = _trace.ACTIVE
        if tr is not None:
            tr.event("analysis.cache", cat="analysis", outcome=outcome,
                     key=key)
