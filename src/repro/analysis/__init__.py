"""Analysis-as-a-service: the unified, incremental analysis layer.

Public surface::

    from repro.analysis import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig(cache=True, jobs=4))
    report = session.lint_paths(["src"])      # warm files from cache
    result = session.optimize_file("mod.py")  # same config, same cache

The deprecated free functions (``repro.lint.lint_source`` & friends,
``repro.optimize.optimize_source`` & friends) delegate here; new code
should construct a session directly.  ``python -m repro.analysis``
exposes the same surface as a CLI and a line-delimited-JSON daemon.
"""

from .cache import (
    AnalysisCache,
    CacheStats,
    default_cache_dir,
    reset_stats,
    stats,
)
from .config import AnalysisConfig
from .schema import SCHEMA_VERSION, SchemaError
from .session import AnalysisSession

__all__ = [
    "AnalysisCache",
    "AnalysisConfig",
    "AnalysisSession",
    "CacheStats",
    "SCHEMA_VERSION",
    "SchemaError",
    "default_cache_dir",
    "reset_stats",
    "stats",
]
