"""The analysis daemon: a line-delimited JSON protocol over a session.

``python -m repro.analysis serve`` reads one JSON request per line on
stdin and writes one JSON response per line on stdout.  The protocol is
deliberately tiny — it is the :class:`~repro.analysis.session
.AnalysisSession` surface, verb for verb:

    {"op": "ping"}
    {"op": "lint", "paths": ["src"], "fail_on": "warning"}
    {"op": "optimize", "paths": ["src"], "check": true}
    {"op": "stats"}
    {"op": "invalidate", "paths": ["src/mod.py"]}   # omit paths: drop all
    {"op": "shutdown"}

Every response carries ``ok`` plus ``exit_code`` with the same 0/1/2/3
meaning the batch CLIs use (see :data:`repro.analysis.args
.EXIT_CODES_EPILOG`), so a client can treat the daemon as a warm,
long-lived stand-in for ``python -m repro.lint`` / ``repro.optimize``.
A malformed line never kills the daemon: it yields an ``ok: false``
response with ``exit_code: 2`` and the loop continues.

``watch`` re-runs lint over a path set on a polling cadence; thanks to
the content-hash cache each cycle re-analyzes only what changed.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Optional, Sequence

from .args import EXIT_USAGE, lint_exit_code, optimize_exit_code
from .session import AnalysisSession


class AnalysisService:
    """Dispatches protocol requests against one shared session."""

    def __init__(self, session: AnalysisSession) -> None:
        self.session = session
        self.running = True

    # -- request handlers ----------------------------------------------------

    def handle(self, request: object) -> dict:
        """Handle one decoded request; never raises."""
        if not isinstance(request, dict):
            return self._error("request is not a JSON object")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(
            op, str) and not op.startswith("_") else None
        if handler is None:
            return self._error(f"unknown op {op!r}")
        try:
            response = handler(request)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            return self._error(f"{type(exc).__name__}: {exc}")
        response.setdefault("ok", True)
        response.setdefault("exit_code", 0)
        response["op"] = op
        return response

    @staticmethod
    def _error(message: str) -> dict:
        return {"ok": False, "error": message, "exit_code": EXIT_USAGE}

    @staticmethod
    def _paths(request: dict) -> Optional[list]:
        paths = request.get("paths")
        if not isinstance(paths, list) or not paths \
                or not all(isinstance(p, str) for p in paths):
            return None
        return paths

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}

    def _op_lint(self, request: dict) -> dict:
        paths = self._paths(request)
        if paths is None:
            return self._error("lint needs a non-empty 'paths' list")
        fail_on = request.get("fail_on", self.session.config.fail_on)
        report = self.session.lint_paths(paths)
        return {
            "exit_code": lint_exit_code(report, fail_on),
            "report": report.to_dict(),
        }

    def _op_optimize(self, request: dict) -> dict:
        paths = self._paths(request)
        if paths is None:
            return self._error("optimize needs a non-empty 'paths' list")
        write = bool(request.get("write", False))
        check = bool(request.get("check", not write))
        if write and request.get("check"):
            return self._error("'check' and 'write' are mutually exclusive")
        results = self.session.optimize_paths(paths, write=write)
        return {
            "exit_code": optimize_exit_code(results, check=check,
                                            write=write),
            "files": [r.to_dict() for r in results],
        }

    def _op_stats(self, request: dict) -> dict:
        return {"stats": self.session.stats()}

    def _op_invalidate(self, request: dict) -> dict:
        paths = request.get("paths")
        if paths is not None and self._paths(request) is None:
            return self._error("'paths' must be a non-empty string list "
                               "(omit it to drop every entry)")
        return {"invalidated": self.session.invalidate(paths)}

    def _op_shutdown(self, request: dict) -> dict:
        self.running = False
        return {"stopping": True}

    # -- the loop ------------------------------------------------------------

    def serve(self, in_stream: Optional[IO[str]] = None,
              out_stream: Optional[IO[str]] = None) -> int:
        """Read requests line by line until EOF or ``shutdown``."""
        in_stream = in_stream if in_stream is not None else sys.stdin
        out_stream = out_stream if out_stream is not None else sys.stdout
        for line in in_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = self._error(f"bad JSON: {exc}")
            else:
                response = self.handle(request)
            out_stream.write(json.dumps(response, sort_keys=True) + "\n")
            out_stream.flush()
            if not self.running:
                break
        return 0


def watch(
    session: AnalysisSession,
    paths: Sequence[str],
    interval_s: float = 1.0,
    max_cycles: Optional[int] = None,
    out_stream: Optional[IO[str]] = None,
    sleep=time.sleep,
) -> int:
    """Poll ``paths``, re-linting on a cadence; the cache makes each
    cycle proportional to what changed, not to the tree size.

    Emits one JSON line per cycle.  ``max_cycles`` bounds the loop (for
    tests and CI smoke jobs); ``None`` runs until interrupted.
    """
    out_stream = out_stream if out_stream is not None else sys.stdout
    fail_on = session.config.fail_on
    cycle = 0
    exit_code = 0
    while max_cycles is None or cycle < max_cycles:
        if cycle:
            sleep(interval_s)
        before = dict(session.counters)
        report = session.lint_paths(paths)
        exit_code = lint_exit_code(report, fail_on)
        out_stream.write(json.dumps({
            "cycle": cycle,
            "exit_code": exit_code,
            "analyzed": session.counters["lint_analyzed"]
            - before["lint_analyzed"],
            "from_cache": session.counters["lint_from_cache"]
            - before["lint_from_cache"],
            "findings": len(report.findings),
        }, sort_keys=True) + "\n")
        out_stream.flush()
        cycle += 1
    return exit_code
