"""Same-project import dependencies, for cross-file cache invalidation.

STLlint's interprocedural reasoning is summary-based
(:mod:`repro.stllint.summaries`): a caller's findings can depend on the
bodies of the functions it calls.  Today those summaries are scoped to
one module, but a *sound* cache has to be built for the day they cross
files — so a file's cache key folds in a **dependency fingerprint**: the
content hashes of every file it (transitively) imports from within the
analyzed project.  Editing a callee's module then changes the dependency
fingerprint of every direct and transitive importer, forcing exactly
those files to re-analyze while the rest of the project stays warm.

Resolution is deliberately an **over-approximation**: an import is
matched against every dotted-suffix spelling of every file in the
analyzed set (``src/repro/lint/driver.py`` answers to
``repro.lint.driver``, ``lint.driver`` and ``driver``), and relative
imports are matched by their trailing module names.  A false edge only
costs an unnecessary re-analysis; a missed edge would serve stale
results — so ties break toward more invalidation.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from typing import Iterable

#: Registering every dotted suffix of a deep path would be quadratic in
#: path depth for no benefit; real imports rarely spell more than this
#: many segments.
_MAX_SUFFIX_SEGMENTS = 5


def module_aliases(path: pathlib.Path) -> set[str]:
    """Every dotted name under which ``path`` could plausibly be
    imported (all dotted suffixes of its package path)."""
    parts = list(path.parts)
    stem = path.stem
    if stem == "__init__":
        parts = parts[:-1]          # package dir itself
        if not parts:
            return set()
    else:
        parts[-1] = stem
    parts = [p for p in parts if p not in ("/", "")]
    aliases: set[str] = set()
    for n in range(1, min(len(parts), _MAX_SUFFIX_SEGMENTS) + 1):
        aliases.add(".".join(parts[-n:]))
    return aliases


def imported_names(source: str) -> set[str]:
    """Dotted names mentioned by ``import``/``from-import`` statements,
    including the ``from X import Y`` spelling of submodule imports.
    Unparseable sources import nothing (the parse error itself is the
    analysis result, and it only depends on the file's own content)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if base:
                names.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(f"{base}.{alias.name}" if base else alias.name)
    return names


def dependency_graph(
    files: Iterable[pathlib.Path], sources: dict[pathlib.Path, str],
) -> dict[pathlib.Path, set[pathlib.Path]]:
    """Direct same-project import edges among ``files`` (file -> files it
    imports).  ``sources`` maps each file to its already-read text."""
    alias_to_files: dict[str, set[pathlib.Path]] = {}
    files = list(files)
    for f in files:
        for alias in module_aliases(f):
            alias_to_files.setdefault(alias, set()).add(f)
    graph: dict[pathlib.Path, set[pathlib.Path]] = {}
    for f in files:
        deps: set[pathlib.Path] = set()
        for name in imported_names(sources.get(f, "")):
            for target in alias_to_files.get(name, ()):
                if target != f:
                    deps.add(target)
        graph[f] = deps
    return graph


def transitive_closure(
    graph: dict[pathlib.Path, set[pathlib.Path]],
) -> dict[pathlib.Path, set[pathlib.Path]]:
    """Reachability (excluding the node itself unless it sits on a
    cycle); iterative DFS, robust to import cycles."""
    closure: dict[pathlib.Path, set[pathlib.Path]] = {}
    for start in graph:
        seen: set[pathlib.Path] = set()
        stack = list(graph[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        closure[start] = seen
    return closure


def dependency_fingerprints(
    files: Iterable[pathlib.Path],
    sources: dict[pathlib.Path, str],
    hashes: dict[pathlib.Path, str],
) -> dict[pathlib.Path, str]:
    """Per-file digest over the (path-stem, content-hash) pairs of the
    file's transitive same-project imports.  Stems rather than full
    paths keep the fingerprint stable when the same tree is analyzed
    from a different working directory."""
    closure = transitive_closure(dependency_graph(files, sources))
    out: dict[pathlib.Path, str] = {}
    for f, deps in closure.items():
        if not deps:
            out[f] = ""
            continue
        items = sorted(
            f"{d.name}:{hashes.get(d, '')}" for d in deps if d != f
        )
        blob = "\x1f".join(items).encode("utf-8")
        out[f] = hashlib.sha256(blob).hexdigest()[:16]
    return out
