"""Command-line entry point: ``python -m repro.analysis <command>``.

One binary over the unified session:

- ``lint`` / ``optimize`` — the batch tools, but incremental: unchanged
  files are served from the on-disk cache (disable with ``--no-cache``);
- ``serve`` — line-delimited JSON daemon on stdin/stdout;
- ``watch`` — poll a path set, re-linting only what changed;
- ``stats`` — session/cache configuration and counters;
- ``invalidate`` — drop cache entries (for given paths, or all).

Exit codes follow the shared 0/1/2/3 contract (see ``--help``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import trace

from .args import (
    EXIT_CODES_EPILOG,
    EXIT_USAGE,
    common_parser,
    lint_exit_code,
    optimize_exit_code,
    session_from_args,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Incremental analysis service: cached, parallel lint "
                    "and optimize behind one session, as a CLI or daemon.",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")
    parent = common_parser(cache_default=True)

    p_lint = sub.add_parser(
        "lint", parents=[parent],
        help="lint paths (cache-accelerated)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_lint.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    p_lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "suggestion", "note", "never"),
        default="warning",
        help="least severe finding that fails the run (default: warning)",
    )

    p_opt = sub.add_parser(
        "optimize", parents=[parent],
        help="report/apply rewrites (cache-accelerated)",
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_opt.add_argument("paths", nargs="+",
                       help="files or directories to optimize")
    mode = p_opt.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="exit 1 if any rewrite is outstanding")
    mode.add_argument("--write", action="store_true",
                      help="apply verified rewrites in place")

    p_serve = sub.add_parser(
        "serve", parents=[parent],
        help="line-delimited JSON daemon on stdin/stdout",
    )
    del p_serve  # only the shared options

    p_watch = sub.add_parser(
        "watch", parents=[parent],
        help="poll paths, re-linting what changed",
    )
    p_watch.add_argument("paths", nargs="+",
                         help="files or directories to watch")
    p_watch.add_argument("--interval-s", type=float, default=1.0,
                         metavar="SECONDS", help="poll period (default: 1)")
    p_watch.add_argument("--max-cycles", type=int, default=None, metavar="N",
                         help="stop after N cycles (default: run forever)")

    sub.add_parser("stats", parents=[parent],
                   help="print session/cache configuration and counters")

    p_inv = sub.add_parser("invalidate", parents=[parent],
                           help="drop cache entries")
    p_inv.add_argument("paths", nargs="*",
                       help="paths whose entries to drop (none = all)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        print("error: no command given", file=sys.stderr)
        return EXIT_USAGE

    session = session_from_args(
        args, **({"fail_on": args.fail_on}
                 if getattr(args, "fail_on", None) else {}))
    tracer = trace.enable() if args.trace is not None else trace.active()

    if args.command == "lint":
        if tracer is not None:
            with tracer.span("analysis.lint", cat="analysis",
                             paths=list(args.paths)):
                report = session.lint_paths(args.paths)
        else:
            report = session.lint_paths(args.paths)
        rc = lint_exit_code(report, args.fail_on)
        print(report.to_json() if args.json else report.render_text())
    elif args.command == "optimize":
        if tracer is not None:
            with tracer.span("analysis.optimize", cat="analysis",
                             paths=list(args.paths)):
                results = session.optimize_paths(args.paths,
                                                 write=args.write)
        else:
            results = session.optimize_paths(args.paths, write=args.write)
        rc = optimize_exit_code(results, check=args.check, write=args.write)
        if args.json:
            from .schema import SCHEMA_VERSION

            print(json.dumps({
                "version": 1,
                "schema_version": SCHEMA_VERSION,
                "files": [r.to_dict() for r in results],
            }, indent=2))
        else:
            for r in results:
                print(r.render())
    elif args.command == "serve":
        from .service import AnalysisService

        rc = AnalysisService(session).serve()
    elif args.command == "watch":
        from .service import watch

        rc = watch(session, args.paths, interval_s=args.interval_s,
                   max_cycles=args.max_cycles)
    elif args.command == "stats":
        print(json.dumps(session.stats(), indent=2, sort_keys=True))
        rc = 0
    elif args.command == "invalidate":
        count = session.invalidate(args.paths or None)
        print(json.dumps({"invalidated": count}))
        rc = 0
    else:  # pragma: no cover - argparse rejects unknown commands
        return EXIT_USAGE

    if args.trace is not None:
        trace.export_chrome(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
