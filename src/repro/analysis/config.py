"""One configuration object for the whole analysis surface.

Before this package existed, every entry point grew its own knobs:
``LintConfig`` for the lint driver, loose keyword arguments for the
optimizer pipeline, and per-CLI argparse flags that drifted apart.  The
:class:`AnalysisConfig` dataclass is the single source of truth both
CLIs, the :class:`~repro.analysis.session.AnalysisSession` façade, and
the daemon consume; the legacy shapes are derived views
(:meth:`to_lint_config` / :meth:`from_lint_config`).

The config also owns the **fingerprint** that keys the on-disk cache.
Only fields that can change an analysis *result* participate:

- lint results depend on ``engine``, ``concept_pass`` and
  ``interprocedural``;
- optimize results additionally depend on ``resource`` and ``size``;
- ``fail_on`` (presentation: which severity gates the exit code),
  ``timeout_s`` (infrastructure: partial results are never cached in the
  first place), ``jobs`` (scheduling: serial and parallel runs are
  bit-identical by construction) and the cache settings themselves are
  deliberately excluded, so flipping them keeps a warm cache warm.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.lint.driver import LintConfig
from repro.stllint.interpreter import DEFAULT_ENGINE

#: Default resource/size mirrored from the optimizer pipeline (imported
#: lazily there to avoid a config->pipeline->config cycle).
DEFAULT_RESOURCE = "comparisons"
DEFAULT_SIZE = 1000.0


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for one :class:`AnalysisSession` — lint, optimize, and
    service behaviour in one place."""

    # -- shared analysis semantics -----------------------------------------
    engine: str = DEFAULT_ENGINE       # "fixpoint" | "inline"
    timeout_s: Optional[float] = None  # per-file deadline (never cached)
    # -- lint ---------------------------------------------------------------
    fail_on: str = "warning"
    concept_pass: bool = True
    interprocedural: bool = True
    exclude: tuple[str, ...] = ()
    # -- optimize -----------------------------------------------------------
    resource: str = DEFAULT_RESOURCE
    size: float = DEFAULT_SIZE
    monomorphize: bool = False         # OPT-MONO pass (opt-in)
    # -- service ------------------------------------------------------------
    jobs: int = 1                      # worker processes; 0 = cpu count
    cache: bool = False                # persistent result cache on/off
    cache_dir: Optional[str] = None    # None = REPRO_ANALYSIS_CACHE or
    #                                    ~/.cache/repro-analysis

    # -- legacy views --------------------------------------------------------

    def to_lint_config(self) -> LintConfig:
        return LintConfig(
            fail_on=self.fail_on,
            concept_pass=self.concept_pass,
            interprocedural=self.interprocedural,
            exclude=self.exclude,
            timeout_s=self.timeout_s,
            engine=self.engine,
        )

    @classmethod
    def from_lint_config(
        cls, config: Optional[LintConfig] = None, **overrides,
    ) -> "AnalysisConfig":
        config = config or LintConfig()
        return cls(
            fail_on=config.fail_on,
            concept_pass=config.concept_pass,
            interprocedural=config.interprocedural,
            exclude=tuple(config.exclude),
            timeout_s=config.timeout_s,
            engine=config.engine,
            **overrides,
        )

    def with_(self, **overrides) -> "AnalysisConfig":
        return replace(self, **overrides)

    # -- cache fingerprints --------------------------------------------------

    def fingerprint(self, kind: str) -> str:
        """Stable digest of the result-relevant fields for ``kind``
        (``"lint"`` or ``"optimize"``) — part of every cache key, so a
        config change invalidates by construction rather than by
        bookkeeping."""
        if kind == "lint":
            parts = (
                "lint", self.engine, self.concept_pass,
                self.interprocedural,
            )
        elif kind == "optimize":
            parts = (
                "optimize", self.engine, self.concept_pass,
                self.interprocedural, self.resource, repr(self.size),
                self.monomorphize,
            )
        else:
            raise ValueError(f"unknown analysis kind {kind!r}")
        blob = "\x1f".join(str(p) for p in parts).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]
