"""Shared CLI vocabulary for ``repro.lint``, ``repro.optimize``, and
``repro.analysis``.

The three command-line tools are views over the same
:class:`~repro.analysis.session.AnalysisSession`, so the flags they
share — ``--engine``, ``--timeout-s``, ``--trace``, ``--jobs``,
``--json``, and the cache switches — are defined once here as an
argparse *parent* parser, and the exit-code contract is documented once
as :data:`EXIT_CODES_EPILOG`.

This module imports only the standard library at module level (the
``repro.analysis`` package is still initializing when the legacy CLIs
import it), so config construction and the exit-code helpers resolve
their ``repro`` dependencies lazily.
"""

from __future__ import annotations

import argparse
import pathlib

#: The exit-code contract every analysis CLI follows.
EXIT_OK = 0        # clean: nothing at/above threshold, nothing outstanding
EXIT_FINDINGS = 1  # findings/outstanding rewrites/reverted files
EXIT_USAGE = 2     # bad arguments
EXIT_PARTIAL = 3   # run finished but some per-file analysis was cut short

EXIT_CODES_EPILOG = """\
exit codes (shared by repro.lint, repro.optimize, repro.analysis):
  0  clean — no finding at/above the threshold, nothing outstanding
  1  findings — a finding reached --fail-on, --check found outstanding
     rewrites, or a failed verification reverted a file
  2  usage error — bad arguments or no paths given
  3  partial results — crash isolation or a --timeout-s deadline turned
     part of the analysis into *-INTERNAL / *-TIMEOUT findings; the
     reported findings are valid but incomplete (and are never cached)
"""


def common_parser(cache_default: bool = False) -> argparse.ArgumentParser:
    """The shared parent parser.

    ``cache_default`` picks the polarity of the cache switch: the legacy
    CLIs default off (``--cache`` opts in, byte-identical to the
    pre-service behaviour), the analysis service defaults on
    (``--no-cache`` opts out).
    """
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("common analysis options")
    g.add_argument(
        "--engine", choices=("fixpoint", "inline"), default="fixpoint",
        help="analysis engine: 'fixpoint' (CFG + worklist to a true "
             "fixpoint, interprocedural summaries; the default) or "
             "'inline' (legacy bounded interpreter, kept as a "
             "differential-testing oracle)",
    )
    g.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-file analysis deadline; on expiry the file gets a "
             "*-TIMEOUT finding and the run continues (exit code 3)",
    )
    g.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="OUT.json",
        help="record analysis spans and write a Chrome trace-event JSON "
             "(load via chrome://tracing)",
    )
    g.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for files the cache cannot serve "
             "(0 = all cores); output is bit-identical to --jobs 1",
    )
    g.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON on stdout (same as "
             "--format json where --format exists)",
    )
    if cache_default:
        g.add_argument(
            "--no-cache", dest="cache", action="store_false",
            help="disable the on-disk result cache (default: enabled)",
        )
    else:
        g.add_argument(
            "--cache", action="store_true",
            help="serve unchanged files from the on-disk result cache "
                 "(default: disabled; identical results either way)",
        )
    g.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_ANALYSIS_CACHE, else "
             "$XDG_CACHE_HOME/repro-analysis)",
    )
    parent.set_defaults(cache=cache_default)
    return parent


def session_from_args(args: argparse.Namespace, **overrides):
    """Build an :class:`~repro.analysis.session.AnalysisSession` from a
    namespace produced by a :func:`common_parser`-derived parser."""
    from repro.analysis import AnalysisConfig, AnalysisSession

    fields = dict(
        engine=args.engine,
        timeout_s=args.timeout_s,
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
    )
    fields.update(overrides)
    return AnalysisSession(AnalysisConfig(**fields))


def lint_exit_code(report, fail_on: str) -> int:
    """0/1/3 for a :class:`~repro.lint.driver.ProjectReport`."""
    if report.partial:
        return EXIT_PARTIAL
    return EXIT_FINDINGS if report.fails(fail_on) else EXIT_OK


def optimize_exit_code(results, check: bool = False,
                       write: bool = False) -> int:
    """0/1/3 for a list of optimizer results."""
    from repro.optimize.pipeline import OPT_INTERNAL, OPT_TIMEOUT

    partial = any(
        f.check in (OPT_INTERNAL, OPT_TIMEOUT)
        for r in results for f in r.findings
    )
    if partial:
        return EXIT_PARTIAL
    if any(r.reverted for r in results):
        return EXIT_FINDINGS
    outstanding = sum(
        len(r.plans) for r in results if not (write and r.verified)
    )
    if check and outstanding:
        return EXIT_FINDINGS
    return EXIT_OK
