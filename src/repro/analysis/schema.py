"""Stable, versioned JSON schema for cached analysis results.

Everything the service persists — per-file lint findings, collected
fact tables, optimizer results, and interprocedural summaries — goes
through this module, under one :data:`SCHEMA_VERSION`:

- **versioned**: every envelope records the schema version it was
  written under.  A reader that finds any other version *discards* the
  entry (one cold re-analysis) instead of guessing at field meanings —
  misreading a cache is strictly worse than missing it.
- **deterministic**: collections serialize in sorted order and envelopes
  are dumped with sorted keys, so the same analysis result always
  produces the same bytes (which is also what makes concurrent cache
  writers harmless — see :mod:`repro.analysis.cache`).
- **round-trip validated**: :func:`validate_envelope` doesn't just check
  shape, it decodes the payload and re-encodes it, accepting the entry
  only if the bytes survive unchanged.  A field an old writer spelled
  differently therefore fails closed.

Schema history: version 1 was the ad-hoc ``{"version": 1}`` report JSON
the CLIs printed before the cache existed (still emitted, unchanged,
for compatibility); version 2 added the cache envelopes and the
``schema_version`` field.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.facts.records import AlgorithmCallFact, Fact, FactTable
from repro.lint.driver import FileReport, LintFinding
from repro.stllint.abstract_values import AbstractBool, Position, Validity
from repro.stllint.diagnostics import Severity
from repro.stllint.summaries import Summary, ClassEffect, SummaryTable

#: Version of every serialized payload in this module.  Bump on ANY
#: field change — old entries are then discarded, never misread.
SCHEMA_VERSION = 2


class SchemaError(ValueError):
    """A stored payload cannot be (safely) decoded."""


# ---------------------------------------------------------------------------
# Tagged atom codec — the enum/tuple/frozenset vocabulary of the
# abstract domain, encoded as JSON ``[tag, value]`` pairs.
# ---------------------------------------------------------------------------

_ENUMS = {"pos": Position, "val": Validity, "bool3": AbstractBool}


def encode_atom(v: Any) -> list:
    for tag, enum in _ENUMS.items():
        if isinstance(v, enum):
            return [tag, v.name]
    if isinstance(v, frozenset):
        return ["fset", sorted(v)]
    if isinstance(v, tuple):
        return ["tup", [encode_atom(x) for x in v]]
    if isinstance(v, (str, int, float, bool)) or v is None:
        return ["lit", v]
    raise SchemaError(f"unencodable value of type {type(v).__name__}")


def decode_atom(v: Any) -> Any:
    if not (isinstance(v, list) and len(v) == 2):
        raise SchemaError(f"malformed atom: {v!r}")
    tag, body = v
    if tag in _ENUMS:
        try:
            return _ENUMS[tag][body]
        except KeyError as exc:
            raise SchemaError(f"unknown {tag} member {body!r}") from exc
    if tag == "fset":
        return frozenset(body)
    if tag == "tup":
        return tuple(decode_atom(x) for x in body)
    if tag == "lit":
        return body
    raise SchemaError(f"unknown atom tag {tag!r}")


# ---------------------------------------------------------------------------
# Lint findings / file reports
# ---------------------------------------------------------------------------

_FINDING_FIELDS = ("path", "function", "line", "severity", "check",
                   "message", "source_line")


def finding_from_dict(d: dict) -> LintFinding:
    try:
        return LintFinding(**{k: d[k] for k in _FINDING_FIELDS})
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed finding: {exc}") from exc


def file_report_to_payload(report: FileReport) -> dict:
    return {
        "path": report.path,
        "functions_checked": report.functions_checked,
        "suppressed": report.suppressed,
        # Order is the driver's stable (line, severity) sort — keep it.
        "findings": [f.to_dict() for f in report.findings],
    }


def file_report_from_payload(payload: dict) -> FileReport:
    try:
        return FileReport(
            path=payload["path"],
            findings=[finding_from_dict(d) for d in payload["findings"]],
            suppressed=payload["suppressed"],
            functions_checked=payload["functions_checked"],
        )
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed file report: {exc}") from exc


# ---------------------------------------------------------------------------
# Fact tables
# ---------------------------------------------------------------------------


def fact_table_to_payload(table: FactTable) -> dict:
    return {
        "facts": [
            [f.subject, f.prop, f.line, f.kind, f.source, f.function]
            for f in table.facts
        ],
        "calls": [
            [c.algorithm, c.line, c.function, c.subject, c.container_kind,
             sorted(c.properties_before), sorted(c.properties_after)]
            for c in table.calls
        ],
    }


def fact_table_from_payload(payload: dict) -> FactTable:
    try:
        facts = [Fact(*row) for row in payload["facts"]]
        calls = [
            AlgorithmCallFact(
                algorithm, line, function, subject, kind,
                frozenset(before), frozenset(after),
            )
            for algorithm, line, function, subject, kind, before, after
            in payload["calls"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed fact table: {exc}") from exc
    return FactTable(facts, calls)


# ---------------------------------------------------------------------------
# Optimizer results
# ---------------------------------------------------------------------------


def optimize_result_to_payload(result: Any) -> dict:
    # ``original`` is *not* stored: the cache key already pins the exact
    # source bytes, and the loader re-supplies them (keeps entries small
    # and guarantees an entry can never resurrect outdated source text).
    return {
        "path": result.path,
        "optimized": result.optimized,
        "verified": result.verified,
        "reverted": result.reverted,
        "revert_reason": result.revert_reason,
        "plans": [p.to_dict() for p in result.plans],
        "findings": [f.to_dict() for f in result.findings],
    }


def optimize_result_from_payload(payload: dict, source: str) -> Any:
    from repro.optimize.pipeline import OptimizeResult, PlannedRewrite

    try:
        plans = [
            PlannedRewrite(
                line=d["line"], function=d["function"],
                subject=d["subject"], call=d["call"],
                replacement=d["replacement"],
                concept_from=d["concept_from"], concept_to=d["concept_to"],
                bound_from=d["bound_from"], bound_to=d["bound_to"],
                properties=tuple(d["properties"]), savings=d["savings"],
                code=d["code"],
            )
            for d in payload["plans"]
        ]
        return OptimizeResult(
            path=payload["path"],
            original=source,
            optimized=payload["optimized"],
            plans=plans,
            findings=[finding_from_dict(d) for d in payload["findings"]],
            verified=payload["verified"],
            reverted=payload["reverted"],
            revert_reason=payload["revert_reason"],
        )
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed optimize result: {exc}") from exc


# ---------------------------------------------------------------------------
# Interprocedural summaries (repro.stllint.summaries)
# ---------------------------------------------------------------------------


def _summary_to_payload(summary: Summary) -> dict:
    return {
        "name": summary.name,
        "converged": summary.converged,
        "ret": encode_atom(tuple(summary.ret)),
        "diagnostics": [
            [sev.value, msg, line]
            for sev, msg, line in summary.diagnostics
        ],
        "class_effects": {
            str(k): [eff.mutated, sorted(eff.properties_after),
                     eff.maybe_empty_after, eff.others]
            for k, eff in sorted(summary.class_effects.items())
        },
        "iter_arg_effects": {
            str(i): None if eff is None else encode_atom(tuple(eff))
            for i, eff in sorted(summary.iter_arg_effects.items())
        },
    }


def _summary_from_payload(payload: dict) -> Summary:
    try:
        summary = Summary(name=payload["name"],
                          converged=payload["converged"])
        summary.ret = decode_atom(payload["ret"])
        summary.diagnostics = [
            (Severity(sev), msg, line)
            for sev, msg, line in payload["diagnostics"]
        ]
        summary.class_effects = {
            int(k): ClassEffect(
                mutated=mutated,
                properties_after=frozenset(props),
                maybe_empty_after=maybe_empty,
                others=others,
            )
            for k, (mutated, props, maybe_empty, others)
            in payload["class_effects"].items()
        }
        summary.iter_arg_effects = {
            int(i): None if eff is None else decode_atom(eff)
            for i, eff in payload["iter_arg_effects"].items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed summary: {exc}") from exc
    return summary


def summary_table_to_payload(table: SummaryTable) -> dict:
    entries = []
    for (name, shapes), summary in table.export_items():
        entries.append({
            "callee": name,
            "shapes": encode_atom(shapes),
            "summary": _summary_to_payload(summary),
        })
    entries.sort(key=lambda e: (e["callee"], repr(e["shapes"])))
    return {"entries": entries}


def summary_table_from_payload(payload: dict) -> SummaryTable:
    table = SummaryTable()
    try:
        for entry in payload["entries"]:
            key = (entry["callee"], decode_atom(entry["shapes"]))
            table.insert(key, _summary_from_payload(entry["summary"]))
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed summary table: {exc}") from exc
    return table


# ---------------------------------------------------------------------------
# Envelopes + round-trip validation
# ---------------------------------------------------------------------------

#: kind -> (from_payload, to_payload); ``optimize`` needs the source
#: text threaded through, handled explicitly in :func:`decode_envelope`.
_KINDS = ("lint", "optimize", "facts", "summaries")


def make_envelope(kind: str, key: dict, payload: dict) -> dict:
    if kind not in _KINDS:
        raise SchemaError(f"unknown payload kind {kind!r}")
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "key": dict(key),
        "payload": payload,
    }


def decode_envelope(envelope: Any, kind: str,
                    source: Optional[str] = None) -> Any:
    """Validate ``envelope`` and return the decoded value.

    Raises :class:`SchemaError` when the version, kind, or shape is
    wrong, or when the payload does not survive a decode→re-encode
    round trip — the caller discards the entry and re-analyzes."""
    if not isinstance(envelope, dict):
        raise SchemaError("envelope is not an object")
    if envelope.get("schema_version") != SCHEMA_VERSION:
        raise SchemaError(
            f"schema version {envelope.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    if envelope.get("kind") != kind:
        raise SchemaError(
            f"payload kind {envelope.get('kind')!r} != {kind!r}")
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise SchemaError("payload is not an object")

    if kind == "lint":
        value = file_report_from_payload(payload)
        again = file_report_to_payload(value)
    elif kind == "optimize":
        value = optimize_result_from_payload(payload, source or "")
        again = optimize_result_to_payload(value)
    elif kind == "facts":
        value = fact_table_from_payload(payload)
        again = fact_table_to_payload(value)
    elif kind == "summaries":
        value = summary_table_from_payload(payload)
        again = summary_table_to_payload(value)
    else:
        raise SchemaError(f"unknown payload kind {kind!r}")
    if again != payload:
        raise SchemaError("payload does not round-trip; discarding")
    return value
