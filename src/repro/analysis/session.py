"""The :class:`AnalysisSession` façade — analysis as a service.

One object unifies what used to be four loose entry points
(``lint_source``/``lint_file``/``lint_paths`` from the lint driver and
``optimize_source``/``optimize_file`` from the optimizer pipeline)
behind one :class:`~repro.analysis.config.AnalysisConfig`, and adds the
two things a *service* needs that a batch CLI does not:

- **incrementality** — per-file results are served from the
  content-hash-keyed on-disk cache (:mod:`repro.analysis.cache`) when
  the file, its transitive same-project imports, the engine, and the
  semantic config are all unchanged;
- **parallelism** — cache misses are sharded across a
  ``multiprocessing`` pool (``config.jobs``), and because every file's
  analysis is independent and results are merged back in discovery
  order, a ``--jobs N`` run is **bit-identical** to the serial run.

Results with crash-isolation or deadline findings (LINT-INTERNAL,
LINT-TIMEOUT, OPT-INTERNAL, OPT-TIMEOUT) are *never* cached: they
describe what happened to one run, not what the source means.
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional, Sequence, Union

from repro.facts.records import FactTable
from repro.lint.driver import (
    FileReport,
    ProjectReport,
    _lint_file_impl,
    _lint_source_impl,
    discover_files,
)
from repro.lint.suppressions import LINT_INTERNAL, LINT_TIMEOUT
from repro.resilience import Deadline
from repro.trace import core as _trace

from . import deps as _deps
from .cache import AnalysisCache, content_hash, make_key
from .config import AnalysisConfig
from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    decode_envelope,
    fact_table_to_payload,
    file_report_to_payload,
    make_envelope,
    optimize_result_to_payload,
    summary_table_from_payload,
    summary_table_to_payload,
)

PathLike = Union[str, pathlib.Path]

#: Findings that mark a result as run-specific (crash isolation /
#: deadline): such results are reported but never cached.
_UNCACHEABLE_CHECKS = frozenset({
    LINT_INTERNAL, LINT_TIMEOUT, "io-error",
    "OPT-INTERNAL", "OPT-TIMEOUT",
})


def _cacheable(findings) -> bool:
    return all(f.check not in _UNCACHEABLE_CHECKS for f in findings)


# ---------------------------------------------------------------------------
# Worker-pool entry points (module-level: picklable under spawn too)
# ---------------------------------------------------------------------------


def _lint_worker(item: tuple) -> FileReport:
    path_str, config = item
    return _lint_file_impl(pathlib.Path(path_str),
                           config.to_lint_config())


def _optimize_worker(item: tuple):
    from repro.optimize.pipeline import _optimize_file_impl

    path_str, write, config = item
    return _optimize_file_impl(
        pathlib.Path(path_str), write=write, resource=config.resource,
        size=config.size, timeout_s=config.timeout_s,
        engine=config.engine, monomorphize=config.monomorphize,
    )


def _pool_map(worker, items: list, jobs: int) -> list:
    """Order-preserving map over a worker pool.  ``jobs <= 1`` (or a
    single item) degrades to the serial loop — same results either way,
    which is what makes ``--jobs`` a pure scheduling knob."""
    if jobs == 0:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, len(items))
    if jobs <= 1:
        return [worker(item) for item in items]
    import multiprocessing

    with multiprocessing.get_context().Pool(processes=jobs) as pool:
        return pool.map(worker, items)


class AnalysisSession:
    """Unified, incrementally cached lint + optimize façade."""

    def __init__(self, config: Optional[AnalysisConfig] = None) -> None:
        self.config = config or AnalysisConfig()
        self.cache: Optional[AnalysisCache] = (
            AnalysisCache(self.config.cache_dir)
            if self.config.cache else None
        )
        #: Per-session counters (the process-wide cache counters live in
        #: :func:`repro.analysis.cache.stats`).
        self.counters = {
            "lint_analyzed": 0,
            "lint_from_cache": 0,
            "optimize_analyzed": 0,
            "optimize_from_cache": 0,
            "facts_analyzed": 0,
            "facts_from_cache": 0,
        }

    # -- shared plumbing -----------------------------------------------------

    def _read(self, p: pathlib.Path) -> Optional[tuple[str, str]]:
        """(source, sha256) or None when unreadable/undecodable — the
        impl layer then reproduces its usual io-error/decode finding."""
        try:
            data = p.read_bytes()
            return data.decode("utf-8"), content_hash(data)
        except (OSError, UnicodeDecodeError):
            return None

    def _project_state(
        self, files: list[pathlib.Path],
    ) -> tuple[dict, dict, dict]:
        """sources, content hashes, and dependency fingerprints for one
        discovered file set (the coherence universe of this call)."""
        sources: dict[pathlib.Path, str] = {}
        hashes: dict[pathlib.Path, str] = {}
        for f in files:
            read = self._read(f)
            if read is not None:
                sources[f], hashes[f] = read
        fingerprints = _deps.dependency_fingerprints(
            list(sources), sources, hashes)
        return sources, hashes, fingerprints

    def _get_cached(self, kind: str, path: pathlib.Path, sha: str,
                    deps_fp: str, source: Optional[str] = None):
        if self.cache is None:
            return None
        key = make_key(kind, str(path.resolve()), sha,
                       self.config.fingerprint(
                           "optimize" if kind == "optimize" else "lint"),
                       deps_fp, SCHEMA_VERSION)
        envelope = self.cache.get(key)
        if envelope is None:
            return None
        try:
            return decode_envelope(envelope, kind, source=source)
        except SchemaError:
            self.cache.discard(key)
            return None

    def _store(self, kind: str, path: pathlib.Path, sha: str,
               deps_fp: str, payload: dict) -> None:
        if self.cache is None:
            return
        fingerprint = self.config.fingerprint(
            "optimize" if kind == "optimize" else "lint")
        key = make_key(kind, str(path.resolve()), sha, fingerprint,
                       deps_fp, SCHEMA_VERSION)
        self.cache.put(key, make_envelope(kind, {
            "path": str(path),
            "content_sha256": sha,
            "fingerprint": fingerprint,
            "deps": deps_fp,
        }, payload))

    # -- lint ----------------------------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> FileReport:
        """Lint in-memory source.  Uncached: text without a file has no
        identity in the dependency universe."""
        return _lint_source_impl(source, path=path,
                                 config=self.config.to_lint_config())

    def _lint_miss(self, f: pathlib.Path, sha: Optional[str],
                   deps_fp: str) -> FileReport:
        """Analyze one file, pre-seeding (and afterwards persisting) its
        interprocedural summary table when the cache is on."""
        summaries = None
        persist_summaries = (
            self.cache is not None and sha is not None
            and self.config.engine == "fixpoint"
        )
        if persist_summaries:
            summaries = self._get_cached("summaries", f, sha, deps_fp)
            if summaries is None:
                from repro.stllint.summaries import SummaryTable

                summaries = SummaryTable()
        report = _lint_file_impl(f, self.config.to_lint_config(),
                                 summaries=summaries)
        self.counters["lint_analyzed"] += 1
        if sha is not None and _cacheable(report.findings):
            self._store("lint", f, sha, deps_fp,
                        file_report_to_payload(report))
            if persist_summaries and len(summaries):
                self._store("summaries", f, sha, deps_fp,
                            summary_table_to_payload(summaries))
        return report

    def lint_file(self, path: PathLike) -> FileReport:
        """Lint one file, served from cache when warm.  The dependency
        universe of a single-file call is just the file itself."""
        f = pathlib.Path(path)
        read = self._read(f)
        sha = read[1] if read is not None else None
        if sha is not None:
            cached = self._get_cached("lint", f, sha, "")
            if cached is not None:
                self.counters["lint_from_cache"] += 1
                return cached
        return self._lint_miss(f, sha, "")

    def lint_paths(self, paths: Sequence[PathLike]) -> ProjectReport:
        """Lint every Python file under ``paths``: warm files from the
        cache, cold files across the worker pool, merged in discovery
        order (bit-identical to a serial run)."""
        files = discover_files(paths, self.config.exclude)
        reports: list[Optional[FileReport]] = [None] * len(files)
        misses: list[int] = []
        hashes: dict[pathlib.Path, str] = {}
        fingerprints: dict[pathlib.Path, str] = {}
        if self.cache is not None:
            _, hashes, fingerprints = self._project_state(files)
        for i, f in enumerate(files):
            sha = hashes.get(f)
            if sha is not None:
                cached = self._get_cached(
                    "lint", f, sha, fingerprints.get(f, ""))
                if cached is not None:
                    self.counters["lint_from_cache"] += 1
                    reports[i] = cached
                    continue
            misses.append(i)

        if len(misses) > 1 and self.config.jobs != 1:
            results = _pool_map(
                _lint_worker,
                [(str(files[i]), self.config) for i in misses],
                self.config.jobs,
            )
            for i, report in zip(misses, results):
                f = files[i]
                reports[i] = report
                self.counters["lint_analyzed"] += 1
                sha = hashes.get(f)
                if sha is not None and _cacheable(report.findings):
                    self._store("lint", f, sha, fingerprints.get(f, ""),
                                file_report_to_payload(report))
        else:
            for i in misses:
                f = files[i]
                reports[i] = self._lint_miss(
                    f, hashes.get(f), fingerprints.get(f, ""))
        return ProjectReport(files=[r for r in reports if r is not None])

    # -- optimize ------------------------------------------------------------

    def optimize_source(self, source: str, path: str = "<string>"):
        from repro.optimize.pipeline import _optimize_source_impl

        deadline = (
            Deadline.after(self.config.timeout_s)
            if self.config.timeout_s is not None else None
        )
        return _optimize_source_impl(
            source, path=path, resource=self.config.resource,
            size=self.config.size, deadline=deadline,
            engine=self.config.engine,
            monomorphize=self.config.monomorphize,
        )

    def _optimize_miss(self, f: pathlib.Path, sha: Optional[str],
                       deps_fp: str, write: bool):
        from repro.optimize.pipeline import _optimize_file_impl

        result = _optimize_file_impl(
            f, write=write, resource=self.config.resource,
            size=self.config.size, timeout_s=self.config.timeout_s,
            engine=self.config.engine,
            monomorphize=self.config.monomorphize,
        )
        self.counters["optimize_analyzed"] += 1
        # ``--write`` changes the file after analysis, so the cached
        # entry (keyed by the *pre-write* hash) would never be looked up
        # again for a changed file; store only results that keyed
        # content still on disk: unchanged files, or non-write runs.
        changed_on_disk = write and result.changed and result.verified
        if sha is not None and not changed_on_disk \
                and _cacheable(result.findings):
            self._store("optimize", f, sha, deps_fp,
                        optimize_result_to_payload(result))
        return result

    def optimize_file(self, path: PathLike, write: bool = False):
        from repro.optimize.pipeline import (
            _internal_result,
            _write_optimized,
        )

        f = pathlib.Path(path)
        read = self._read(f)
        sha = read[1] if read is not None else None
        if sha is not None:
            cached = self._get_cached("optimize", f, sha, "",
                                      source=read[0])
            if cached is not None:
                self.counters["optimize_from_cache"] += 1
                if write and cached.changed and cached.verified:
                    try:
                        _write_optimized(f, read[0], cached)
                    except Exception as exc:  # noqa: BLE001 - isolate
                        return _internal_result(str(f), read[0], exc)
                return cached
        return self._optimize_miss(f, sha, "", write)

    def optimize_paths(self, paths: Sequence[PathLike],
                       write: bool = False) -> list:
        files = discover_files(paths, self.config.exclude)
        results: list = [None] * len(files)
        misses: list[int] = []
        sources: dict[pathlib.Path, str] = {}
        hashes: dict[pathlib.Path, str] = {}
        fingerprints: dict[pathlib.Path, str] = {}
        if self.cache is not None:
            sources, hashes, fingerprints = self._project_state(files)
        from repro.optimize.pipeline import (
            _internal_result,
            _write_optimized,
        )

        for i, f in enumerate(files):
            sha = hashes.get(f)
            if sha is not None:
                cached = self._get_cached(
                    "optimize", f, sha, fingerprints.get(f, ""),
                    source=sources[f])
                if cached is not None:
                    self.counters["optimize_from_cache"] += 1
                    if write and cached.changed and cached.verified:
                        try:
                            _write_optimized(f, sources[f], cached)
                        except Exception as exc:  # noqa: BLE001
                            cached = _internal_result(
                                str(f), sources[f], exc)
                    results[i] = cached
                    continue
            misses.append(i)

        if len(misses) > 1 and self.config.jobs != 1:
            mapped = _pool_map(
                _optimize_worker,
                [(str(files[i]), write, self.config) for i in misses],
                self.config.jobs,
            )
            for i, result in zip(misses, mapped):
                f = files[i]
                results[i] = result
                self.counters["optimize_analyzed"] += 1
                sha = hashes.get(f)
                changed = write and result.changed and result.verified
                if sha is not None and not changed \
                        and _cacheable(result.findings):
                    self._store(
                        "optimize", f, sha, fingerprints.get(f, ""),
                        optimize_result_to_payload(result))
        else:
            for i in misses:
                f = files[i]
                results[i] = self._optimize_miss(
                    f, hashes.get(f), fingerprints.get(f, ""), write)
        return [r for r in results if r is not None]

    # -- facts ---------------------------------------------------------------

    def collect_facts_file(self, path: PathLike) -> FactTable:
        """Collect STLlint facts for one file, cached like lint results."""
        from repro.stllint.facts_collection import collect_facts

        f = pathlib.Path(path)
        read = self._read(f)
        if read is None:
            raise OSError(f"cannot read {f}")
        source, sha = read
        cached = self._get_cached("facts", f, sha, "")
        if cached is not None:
            self.counters["facts_from_cache"] += 1
            return cached
        table = collect_facts(
            source,
            interprocedural=self.config.interprocedural,
            engine=self.config.engine,
        )
        self.counters["facts_analyzed"] += 1
        if self.cache is not None:
            self._store("facts", f, sha, "", fact_table_to_payload(table))
        return table

    # -- service operations --------------------------------------------------

    def invalidate(self, paths: Optional[Sequence[PathLike]] = None) -> int:
        """Drop cache entries (all, or those recorded for ``paths``)."""
        if self.cache is None:
            return 0
        return self.cache.invalidate(
            [str(p) for p in paths] if paths is not None else None)

    def stats(self) -> dict:
        from . import cache as _cache

        tr = _trace.ACTIVE
        if tr is not None:
            tr.event("analysis.stats", cat="analysis", **self.counters)
        return {
            "schema_version": SCHEMA_VERSION,
            "engine": self.config.engine,
            "jobs": self.config.jobs,
            "cache_enabled": self.cache is not None,
            "cache_dir": str(self.cache.root) if self.cache else None,
            "cache_entries": len(self.cache) if self.cache else 0,
            "cache": _cache.stats(),
            "session": dict(self.counters),
        }
