"""The whole-program lint driver.

STLlint, as the paper describes it, "analyzes whole programs" — this
module is the project-level harness around the per-function symbolic
interpreter of :mod:`repro.stllint`:

- discovers every ``*.py`` file under the given paths,
- finds every function with container-annotated parameters (or locals)
  and checks it, with same-module calls analyzed interprocedurally,
- runs the concept-conformance pass over ``@where`` call sites,
- applies ``# stllint: ignore[...]`` suppressions,
- aggregates everything into a :class:`ProjectReport` that renders as
  text or machine-readable JSON and gates an exit status by severity.
"""

from __future__ import annotations

import ast
import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.resilience import Deadline, DeadlineExceeded
from repro.stllint.diagnostics import Severity
from repro.stllint.interpreter import (
    DEFAULT_ENGINE,
    make_checker,
    module_function_table,
)
from repro.stllint.specs import CONTAINER_SPECS
from repro.trace import core as _trace

from .suppressions import (
    ALL_CHECKS,
    LINT_INTERNAL,
    LINT_TIMEOUT,
    UNKNOWN_SUPPRESSION_CODE,
    UNUSED_SUPPRESSION,
    all_check_codes,
    check_code,
    collect_suppressions,
    is_suppressed,
)

#: Severity rank, most severe first (for --fail-on thresholds).
SEVERITY_ORDER: dict[str, int] = {
    "error": 0,
    "warning": 1,
    "suggestion": 2,
    "note": 3,
}

PathLike = Union[str, pathlib.Path]


@dataclass
class LintConfig:
    """Knobs for one lint run."""

    fail_on: str = "warning"          # least severe level that fails the run
    concept_pass: bool = True         # check @where call sites
    interprocedural: bool = True      # analyze same-module calls
    exclude: tuple[str, ...] = ()     # glob patterns matched against paths
    timeout_s: Optional[float] = None  # per-file analysis deadline
    engine: str = DEFAULT_ENGINE      # "fixpoint" (CFG worklist) | "inline"


@dataclass
class LintFinding:
    """One reported diagnostic, file-level."""

    path: str
    function: str
    line: int
    severity: str                     # "error" | "warning" | "suggestion" | "note"
    check: str
    message: str
    source_line: str = ""

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "function": self.function,
            "line": self.line,
            "severity": self.severity,
            "check": self.check,
            "message": self.message,
            "source_line": self.source_line,
        }

    def render(self) -> str:
        out = (
            f"{self.path}:{self.line}: {self.severity}: {self.message} "
            f"[{self.check}]"
        )
        if self.function and self.function != "<module>":
            out += f" (in {self.function})"
        if self.source_line.strip():
            out += f"\n    {self.source_line.strip()}"
        return out


@dataclass
class FileReport:
    """Findings for one file."""

    path: str
    findings: list[LintFinding] = field(default_factory=list)
    suppressed: int = 0
    functions_checked: int = 0

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "functions_checked": self.functions_checked,
            "suppressed": self.suppressed,
            "diagnostics": [f.to_dict() for f in self.findings],
        }


@dataclass
class ProjectReport:
    """Aggregated findings across every linted file."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def findings(self) -> list[LintFinding]:
        return [f for fr in self.files for f in fr.findings]

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def partial(self) -> bool:
        """True when crash isolation or a deadline cut analysis short —
        the findings are valid but not complete (exit code 3)."""
        return any(
            f.check in (LINT_INTERNAL, LINT_TIMEOUT) for f in self.findings
        )

    def summary(self) -> dict:
        return {
            "files": len(self.files),
            "functions_checked": sum(
                fr.functions_checked for fr in self.files
            ),
            "errors": self.count("error"),
            "warnings": self.count("warning"),
            "suggestions": self.count("suggestion"),
            "notes": self.count("note"),
            "suppressed": sum(fr.suppressed for fr in self.files),
            "internal_errors": sum(
                1 for f in self.findings
                if f.check in (LINT_INTERNAL, LINT_TIMEOUT)
            ),
        }

    def to_dict(self) -> dict:
        from repro.analysis.schema import SCHEMA_VERSION

        return {
            "version": 1,               # legacy key, frozen forever
            "schema_version": SCHEMA_VERSION,
            "files": [fr.to_dict() for fr in self.files],
            "summary": self.summary(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        s = self.summary()
        lines.append(
            f"{s['errors']} error(s), {s['warnings']} warning(s), "
            f"{s['suggestions']} suggestion(s), {s['notes']} note(s) "
            f"in {s['files']} file(s) "
            f"({s['functions_checked']} function(s) checked, "
            f"{s['suppressed']} suppressed)"
        )
        return "\n".join(lines)

    def fails(self, threshold: str) -> bool:
        """True if any finding is at least as severe as ``threshold``."""
        if threshold == "never":
            return False
        limit = SEVERITY_ORDER[threshold]
        return any(
            SEVERITY_ORDER[f.severity] <= limit for f in self.findings
        )


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def _container_annotated(arg: ast.arg) -> bool:
    ann = arg.annotation
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.lower() in CONTAINER_SPECS
    if isinstance(ann, ast.Name):
        return ann.id.lower() in CONTAINER_SPECS
    return False


def _is_lintable(fn: ast.FunctionDef) -> bool:
    """A function is checked when it declares tracked container state:
    a container-annotated parameter, or a container-annotated local."""
    if any(_container_annotated(a) for a in fn.args.args):
        return True
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.annotation, ast.Constant)
            and isinstance(node.annotation.value, str)
            and node.annotation.value.lower() in CONTAINER_SPECS
        ):
            return True
    return False


def _lint_source_impl(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    summaries: object = None,
) -> FileReport:
    """Lint one module given as source text (implementation).

    ``summaries`` optionally pre-seeds the fixpoint engine's
    interprocedural :class:`~repro.stllint.summaries.SummaryTable` — the
    analysis service passes a table deserialized from its cache, which
    is sound because tables are keyed by this file's content hash."""
    config = config or LintConfig()
    report = FileReport(path=path)
    lines = source.splitlines()
    suppressions = collect_suppressions(lines)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.findings.append(LintFinding(
            path=path, function="<module>", line=exc.lineno or 0,
            severity="error", check="parse-error",
            message=f"file could not be parsed: {exc.msg}",
        ))
        return report

    tr = _trace.ACTIVE
    used_suppressions: set[int] = set()

    def add(severity: Severity, message: str, line: int,
            function: str) -> None:
        code = check_code(message)
        if is_suppressed(suppressions, line, code):
            report.suppressed += 1
            used_suppressions.add(line)
            return
        src = lines[line - 1] if 1 <= line <= len(lines) else ""
        report.findings.append(LintFinding(
            path=path, function=function, line=line,
            severity=severity.value.lower(), check=code,
            message=message, source_line=src,
        ))
        if tr is not None:
            tr.event("lint.finding", cat="lint", path=path,
                     function=function, check=code, line=line,
                     severity=severity.value.lower())

    deadline = (
        Deadline.after(config.timeout_s)
        if config.timeout_s is not None else None
    )

    def internal(check: str, message: str, line: int,
                 function: str) -> None:
        # Crash-isolation findings bypass suppressions: a per-line ignore
        # comment must not silence the fact that analysis itself broke.
        report.findings.append(LintFinding(
            path=path, function=function, line=line, severity="error",
            check=check, message=message,
        ))
        if tr is not None:
            tr.event("lint.internal", cat="lint", path=path,
                     function=function, check=check)

    functions = module_function_table(tree) if config.interprocedural else {}
    if config.engine != "fixpoint":
        summaries = None
    elif summaries is None:
        from repro.stllint.summaries import SummaryTable

        # One table per file: every function's interprocedural effects
        # are summarized once per argument shape and reused across all
        # callers in the module.
        summaries = SummaryTable()
    seen: set[tuple[int, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef) or not _is_lintable(node):
            continue
        if deadline is not None and deadline.expired():
            internal(LINT_TIMEOUT, (
                f"file analysis budget of {config.timeout_s:g}s exhausted; "
                f"'{node.name}' and later functions were not checked"
            ), node.lineno, node.name)
            break
        report.functions_checked += 1
        try:
            if tr is None:
                sink = make_checker(
                    config.engine, node, lines, module_functions=functions,
                    summaries=summaries,
                ).run()
            else:
                with tr.span("lint.function", cat="lint", path=path,
                             function=node.name, line=node.lineno,
                             engine=config.engine) as sp:
                    sink = make_checker(
                        config.engine, node, lines,
                        module_functions=functions, summaries=summaries,
                    ).run()
                    sp.set("diagnostics", len(sink.diagnostics))
        except Exception as exc:  # noqa: BLE001 - crash isolation
            internal(LINT_INTERNAL, (
                f"internal error while checking '{node.name}': "
                f"{type(exc).__name__}: {exc}"
            ), node.lineno, node.name)
            continue
        for d in sink.diagnostics:
            key = (d.line, d.message)
            if key in seen:
                continue
            seen.add(key)
            add(d.severity, d.message, d.line, node.name)

    if config.concept_pass and not (
            deadline is not None and deadline.expired()):
        from .concept_pass import run_concept_pass

        try:
            if tr is None:
                pass_findings = run_concept_pass(tree)
            else:
                with tr.span("lint.concept-pass", cat="lint", path=path):
                    pass_findings = list(run_concept_pass(tree))
        except Exception as exc:  # noqa: BLE001 - crash isolation
            pass_findings = []
            internal(LINT_INTERNAL, (
                f"internal error in the concept pass: "
                f"{type(exc).__name__}: {exc}"
            ), 0, "<module>")
        for finding in pass_findings:
            add(finding.severity, finding.message, finding.line,
                finding.function)

    # Suppression hygiene: an ignore comment naming a code the driver can
    # never emit, or matching no finding at all, is a latent bug (the
    # diagnostic it was written for will resurface unsilenced the moment
    # the line changes).  These findings bypass the suppression machinery
    # by construction — a suppression must not silence its own autopsy.
    known = set(all_check_codes()) | {ALL_CHECKS}
    for lineno, codes in sorted(suppressions.items()):
        src = lines[lineno - 1] if 1 <= lineno <= len(lines) else ""
        # "..." is the documentation placeholder (docstrings quote the
        # comment syntax as ``ignore[...]``), not a misspelled code.
        unknown = codes - known - {"..."}
        if unknown:
            report.findings.append(LintFinding(
                path=path, function="<module>", line=lineno,
                severity="warning", check=UNKNOWN_SUPPRESSION_CODE,
                message=(
                    "suppression names unknown check code(s): "
                    + ", ".join(sorted(unknown))
                    + " (see --list-checks)"
                ),
                source_line=src,
            ))
        if lineno not in used_suppressions and codes & known:
            report.findings.append(LintFinding(
                path=path, function="<module>", line=lineno,
                severity="warning", check=UNUSED_SUPPRESSION,
                message=(
                    "suppression comment matches no finding on this line"
                ),
                source_line=src,
            ))

    report.findings.sort(key=lambda f: (f.line, SEVERITY_ORDER[f.severity]))
    return report


def _failed_file_report(path: str, check: str, message: str) -> FileReport:
    report = FileReport(path=path)
    report.findings.append(LintFinding(
        path=path, function="<module>", line=0, severity="error",
        check=check, message=message,
    ))
    return report


def _lint_file_impl(
    path: PathLike, config: Optional[LintConfig] = None,
    summaries: object = None,
) -> FileReport:
    p = pathlib.Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        return _failed_file_report(
            str(p), "io-error", f"cannot read file: {exc}")
    except UnicodeDecodeError as exc:
        # Undecodable bytes are this file's problem, not the run's: the
        # internal-error path reports it and the other files still lint.
        return _failed_file_report(str(p), LINT_INTERNAL, (
            f"cannot decode file as UTF-8 "
            f"(byte {exc.start}: {exc.reason}); file skipped"
        ))
    try:
        tr = _trace.ACTIVE
        if tr is None:
            return _lint_source_impl(source, path=str(p), config=config,
                                     summaries=summaries)
        with tr.span("lint.file", cat="lint", path=str(p)) as sp:
            report = _lint_source_impl(source, path=str(p), config=config,
                                       summaries=summaries)
            sp.set("functions_checked", report.functions_checked)
            sp.set("findings", len(report.findings))
        return report
    except Exception as exc:  # noqa: BLE001 - per-file crash isolation
        return _failed_file_report(str(p), LINT_INTERNAL, (
            f"internal error while linting this file: "
            f"{type(exc).__name__}: {exc}; file skipped, run continues"
        ))


def discover_files(
    paths: Sequence[PathLike], exclude: Iterable[str] = ()
) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: list[pathlib.Path] = []
    exclude = tuple(exclude)

    def excluded(p: pathlib.Path) -> bool:
        return any(p.match(pattern) for pattern in exclude)

    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(part.startswith(".") or part == "__pycache__"
                       for part in f.parts):
                    continue
                if not excluded(f):
                    out.append(f)
        elif p.suffix == ".py" or p.is_file() or not p.exists():
            # Nonexistent paths are kept: lint_file turns them into an
            # io-error finding rather than a silently empty (passing) run.
            if not excluded(p):
                out.append(p)
    # De-duplicate while preserving order.
    unique: list[pathlib.Path] = []
    seen: set[str] = set()
    for p in out:
        key = str(p.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def _lint_paths_impl(
    paths: Sequence[PathLike], config: Optional[LintConfig] = None
) -> ProjectReport:
    """Serial whole-project lint (implementation).  The analysis service
    (:class:`repro.analysis.AnalysisSession`) layers caching and the
    worker pool on top of this; results are identical by construction."""
    config = config or LintConfig()
    report = ProjectReport()
    for f in discover_files(paths, config.exclude):
        report.files.append(_lint_file_impl(f, config))
    return report


# ---------------------------------------------------------------------------
# Deprecated public surface (one-release migration window)
# ---------------------------------------------------------------------------
# The functions below were the public API before the analysis service
# unified linting and optimization behind one façade.  They now delegate
# to an (uncached, serial) ``AnalysisSession`` so old callers keep the
# exact historical behaviour, and they warn so new code migrates.


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.lint.{name}() is deprecated; construct a "
        "repro.analysis.AnalysisSession and call its equivalent method "
        "(this shim is kept for one release)",
        DeprecationWarning, stacklevel=3,
    )


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> FileReport:
    """Deprecated: use :meth:`repro.analysis.AnalysisSession.lint_source`."""
    _deprecated("lint_source")
    from repro.analysis import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig.from_lint_config(config))
    return session.lint_source(source, path=path)


def lint_file(
    path: PathLike, config: Optional[LintConfig] = None
) -> FileReport:
    """Deprecated: use :meth:`repro.analysis.AnalysisSession.lint_file`."""
    _deprecated("lint_file")
    from repro.analysis import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig.from_lint_config(config))
    return session.lint_file(path)


def lint_paths(
    paths: Sequence[PathLike], config: Optional[LintConfig] = None
) -> ProjectReport:
    """Deprecated: use :meth:`repro.analysis.AnalysisSession.lint_paths`."""
    _deprecated("lint_paths")
    from repro.analysis import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig.from_lint_config(config))
    return session.lint_paths(paths)
