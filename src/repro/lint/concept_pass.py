"""The concept-conformance lint pass.

Finds call sites of ``@where``-decorated generic algorithms (declared in
the linted module with :func:`repro.concepts.where` / ``where_multi``)
and statically verifies that the argument types model the required
concepts via the :class:`~repro.concepts.modeling.ModelRegistry` — the
"modular checking of call sites against declared constraints" story of
Section 2, run *without executing the checked code*.

The pass is deliberately conservative:

- Concept objects named in a decorator are resolved through the module's
  ``import`` statements (only *library* modules are imported — the linted
  module itself is never executed, so a call site in dead code is still
  checked, which is the whole point of static checking).
- Argument types are inferred only where inference is certain: literals,
  constructor calls of resolvable classes, and simple local assignments
  of those.  A call whose argument types cannot be inferred is skipped,
  never guessed.
"""

from __future__ import annotations

import ast
import builtins
import importlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.stllint.diagnostics import Severity

#: Types inferable from literal syntax.
_LITERAL_TYPES = {
    ast.List: list,
    ast.ListComp: list,
    ast.Dict: dict,
    ast.DictComp: dict,
    ast.Set: set,
    ast.SetComp: set,
    ast.Tuple: tuple,
    ast.JoinedStr: str,
    ast.GeneratorExp: type(x for x in ()),
}


@dataclass
class ConceptFinding:
    """One call site that violates (or cannot satisfy) a where clause."""

    line: int
    function: str          # enclosing scope of the call site
    severity: Severity
    message: str


@dataclass
class _WhereInfo:
    """A @where-decorated function's statically recovered constraints."""

    fn: ast.FunctionDef
    # (concept object, parameter names) pairs, resolution successes only.
    constraints: list[tuple[Any, tuple[str, ...]]] = field(default_factory=list)


class _ImportMap:
    """Name resolution through the module's import statements."""

    def __init__(self, tree: ast.Module) -> None:
        # alias -> ("module", dotted) or ("attr", module, attr)
        self._entries: dict[str, tuple] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    alias = a.asname or a.name.split(".")[0]
                    target = a.name if a.asname else a.name.split(".")[0]
                    self._entries[alias] = ("module", target)
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    if a.name == "*":
                        continue
                    alias = a.asname or a.name
                    self._entries[alias] = ("attr", node.module, a.name)

    def resolve(self, node: ast.expr) -> Optional[Any]:
        """Resolve a Name/Attribute expression to a runtime object, or
        None.  Imports only modules the linted file itself imports."""
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return getattr(base, node.attr, None)
        if not isinstance(node, ast.Name):
            return None
        entry = self._entries.get(node.id)
        if entry is None:
            return getattr(builtins, node.id, None)
        try:
            if entry[0] == "module":
                return importlib.import_module(entry[1])
            module = importlib.import_module(entry[1])
            return getattr(module, entry[2], None)
        except Exception:  # noqa: BLE001 - unresolvable import: skip
            return None


def _where_functions() -> tuple[Any, Any]:
    from repro.concepts.where import where, where_multi

    return where, where_multi


def _parse_where_decorator(
    dec: ast.expr, imports: _ImportMap
) -> Optional[list[tuple[Any, tuple[str, ...]]]]:
    """Recover (concept, params) constraints from a decorator expression,
    or None if it is not a resolvable @where/@where_multi application."""
    if not isinstance(dec, ast.Call):
        return None
    target = imports.resolve(dec.func)
    if target is None:
        return None
    where, where_multi = _where_functions()
    constraints: list[tuple[Any, tuple[str, ...]]] = []
    if target is where or target is where_multi:
        if any(kw.arg == "registry" for kw in dec.keywords):
            return None   # custom registry: our default-registry check lies
        for arg in dec.args:
            # The unified @where takes positional (Concept, params) tuples;
            # any other positional argument (a custom registry) makes the
            # site unanalyzable against the default registry.
            if not (isinstance(arg, ast.Tuple) and len(arg.elts) == 2):
                return None
            concept = imports.resolve(arg.elts[0])
            names_node = arg.elts[1]
            if concept is None:
                continue
            if isinstance(names_node, ast.Constant) and isinstance(
                names_node.value, str
            ):
                constraints.append((concept, (names_node.value,)))
            elif isinstance(names_node, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in names_node.elts
            ):
                names = tuple(e.value for e in names_node.elts)
                constraints.append((concept, names))
        for kw in dec.keywords:
            if kw.arg is None:
                return None   # **kwargs: not statically recoverable
            concept = imports.resolve(kw.value)
            if concept is not None:
                constraints.append((concept, (kw.arg,)))
        return constraints
    return None


class _Scope:
    """One lexical scope's certainly-known local types."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.types: dict[str, type] = {}


def _infer_type(
    node: ast.expr, scope: _Scope, imports: _ImportMap
) -> Optional[type]:
    for ast_cls, pytype in _LITERAL_TYPES.items():
        if isinstance(node, ast_cls):
            return pytype
    if isinstance(node, ast.Constant):
        return type(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _infer_type(node.operand, scope, imports)
    if isinstance(node, ast.Name):
        return scope.types.get(node.id)
    if isinstance(node, ast.Call):
        target = imports.resolve(node.func)
        if isinstance(target, type):
            return target
    return None


def run_concept_pass(
    tree: ast.Module,
    registry: Optional[Any] = None,
) -> list[ConceptFinding]:
    """Lint a parsed module; returns concept-conformance findings."""
    imports = _ImportMap(tree)
    constrained: dict[str, _WhereInfo] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        for dec in node.decorator_list:
            constraints = _parse_where_decorator(dec, imports)
            if constraints:
                constrained[node.name] = _WhereInfo(node, constraints)
                break
    if not constrained:
        return []
    if registry is None:
        from repro.concepts.modeling import models as registry  # noqa: N813

    findings: list[ConceptFinding] = []

    def check_call(call: ast.Call, scope: _Scope) -> None:
        if not isinstance(call.func, ast.Name):
            return
        info = constrained.get(call.func.id)
        if info is None:
            return
        bound = _bind_arguments(info.fn, call)
        if bound is None:
            return
        for concept, params in info.constraints:
            types: list[type] = []
            for p in params:
                expr = bound.get(p)
                t = _infer_type(expr, scope, imports) if expr is not None \
                    else None
                if t is None:
                    break
                types.append(t)
            if len(types) != len(params):
                continue      # not all argument types inferable: skip
            try:
                report = registry.check(concept, tuple(types))
            except Exception:  # noqa: BLE001 - registry hiccup: skip
                continue
            if not report.ok:
                names = ", ".join(t.__name__ for t in types)
                details = "; ".join(
                    f.render() for f in report.failures[:2]
                )
                findings.append(ConceptFinding(
                    line=call.lineno,
                    function=scope.name,
                    severity=Severity.ERROR,
                    message=(
                        f"call to {call.func.id}() violates its where "
                        f"clause: ({names}) does not model "
                        f"{concept.name}: {details}"
                    ),
                ))

    def stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """The expressions attached directly to a statement (its nested
        statement bodies are walked separately, in scope order)."""
        out: list[ast.expr] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                out.append(child)
            elif isinstance(child, ast.withitem):
                out.append(child.context_expr)
            elif isinstance(child, ast.ExceptHandler) and child.type:
                out.append(child.type)
        return out

    def walk_scope(stmts: list[ast.stmt], scope: _Scope) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_scope(stmt.body, _Scope(stmt.name))
                continue
            if isinstance(stmt, ast.ClassDef):
                walk_scope(stmt.body, _Scope(scope.name))
                continue
            for expr in stmt_exprs(stmt):
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Call):
                        check_call(sub, scope)
            # Track certain assignments for later calls in this scope.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                t = _infer_type(stmt.value, scope, imports)
                name = stmt.targets[0].id
                if t is not None:
                    scope.types[name] = t
                else:
                    scope.types.pop(name, None)
            # Nested statement bodies share the enclosing scope (a
            # flow-insensitive approximation that never *invents* types).
            for name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, name, None)
                if isinstance(nested, list) and nested \
                        and isinstance(nested[0], ast.stmt):
                    walk_scope(nested, scope)
            for handler in getattr(stmt, "handlers", []) or []:
                walk_scope(handler.body, scope)

    walk_scope(tree.body, _Scope("<module>"))
    return findings


def _bind_arguments(
    fn: ast.FunctionDef, call: ast.Call
) -> Optional[dict[str, ast.expr]]:
    """Positional/keyword binding of call arguments to parameter names,
    or None when the call shape cannot be bound statically."""
    params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if any(isinstance(a, ast.Starred) for a in call.args):
        return None
    if len(call.args) > len(params):
        return None
    bound: dict[str, ast.expr] = dict(zip(params, call.args))
    for kw in call.keywords:
        if kw.arg is None or kw.arg in bound:
            return None
        if kw.arg in params or kw.arg in {a.arg for a in fn.args.kwonlyargs}:
            bound[kw.arg] = kw.value
    return bound
