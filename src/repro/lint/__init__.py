"""ConceptLint: the whole-program static-analysis driver (Section 3.1,
"STLlint ... analyzes whole programs").

Layers a project-level harness over the :mod:`repro.stllint` symbolic
interpreter and the :mod:`repro.concepts` modeling machinery::

    python -m repro.lint examples/                 # text report
    python -m repro.lint src/ --format json        # machine-readable
    python -m repro.lint app.py --fail-on error    # gate only on errors

Or from Python, via the unified analysis session::

    from repro.analysis import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig(fail_on="warning"))
    report = session.lint_paths(["examples/"])
    print(report.render_text())
    bad = report.fails("warning")

(The free functions ``lint_source``/``lint_file``/``lint_paths`` still
work but are deprecated shims over the session.)

Per-line suppression uses ``# stllint: ignore[<check>]`` comments; the
available check codes are listed by ``python -m repro.lint --list-checks``.
"""

from .concept_pass import ConceptFinding, run_concept_pass
from .driver import (
    SEVERITY_ORDER,
    FileReport,
    LintConfig,
    LintFinding,
    ProjectReport,
    discover_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .suppressions import (
    ALL_CHECKS,
    UNKNOWN_SUPPRESSION_CODE,
    UNUSED_SUPPRESSION,
    all_check_codes,
    check_code,
    collect_suppressions,
)
from .cli import main

__all__ = [
    "LintConfig", "LintFinding", "FileReport", "ProjectReport",
    "lint_source", "lint_file", "lint_paths", "discover_files",
    "SEVERITY_ORDER",
    "run_concept_pass", "ConceptFinding",
    "check_code", "all_check_codes", "collect_suppressions", "ALL_CHECKS",
    "UNUSED_SUPPRESSION", "UNKNOWN_SUPPRESSION_CODE",
    "main",
]
