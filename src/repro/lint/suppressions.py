"""Check codes and suppression comments.

Every diagnostic the driver reports carries a short *check code* (derived
from the message catalog in :mod:`repro.stllint.specs`), which is what
suppression comments name::

    x = e.deref()   # stllint: ignore[past-end-deref]  -- sentinel read
    y = frob(v)     # stllint: ignore                  -- silence everything

A bare ``ignore`` suppresses every check on that line; a bracketed list
suppresses only the named checks (comma-separated).  Suppressed
diagnostics are dropped from the report but counted, so a lint run still
shows how much is being waved through.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.stllint.specs import (
    MSG_CROSS_CONTAINER,
    MSG_MAYBE_END_DEREF,
    MSG_NOT_A_HEAP,
    MSG_PAST_END_ADVANCE,
    MSG_PAST_END_DEREF,
    MSG_SINGULAR_ADVANCE,
    MSG_SINGULAR_DEREF,
    MSG_SORTED_LINEAR_FIND,
    MSG_UNINLINED_CALL,
    MSG_UNMODELED_STMT,
    MSG_UNSORTED_LOWER_BOUND,
    MSG_UNSTABLE_LOOP,
)

#: The legacy (inline) engine's loop-iteration bound expired before the
#: abstract state stabilized — analysis past that point is incomplete.
#: The fixpoint engine never emits this in normal operation (only if its
#: runaway-safety cap fires, which would itself be a bug).
LINT_UNSTABLE_LOOP = "LINT-UNSTABLE-LOOP"

#: Exact message -> check code.
MESSAGE_CHECKS: dict[str, str] = {
    MSG_SINGULAR_DEREF: "singular-deref",
    MSG_SINGULAR_ADVANCE: "singular-advance",
    MSG_PAST_END_DEREF: "past-end-deref",
    MSG_PAST_END_ADVANCE: "past-end-advance",
    MSG_MAYBE_END_DEREF: "maybe-end-deref",
    MSG_CROSS_CONTAINER: "cross-container",
    MSG_UNSORTED_LOWER_BOUND: "unsorted-range",
    MSG_NOT_A_HEAP: "not-a-heap",
    MSG_SORTED_LINEAR_FIND: "sorted-linear-find",
    MSG_UNSTABLE_LOOP: LINT_UNSTABLE_LOOP,
}

#: Substring -> check code, tried in order, for the ad-hoc interpreter
#: messages that are not in the exact catalog.
_SUBSTRING_CHECKS: list[tuple[str, str]] = [
    (MSG_UNMODELED_STMT, "unmodeled-stmt"),
    (MSG_UNINLINED_CALL, "uninlined-call"),
    ("erase at the past-the-end", "past-end-erase"),
    ("erase through a singular", "singular-erase"),
    ("insert through a singular", "singular-insert"),
    ("copy a singular", "singular-copy"),
    ("does not support", "unsupported-op"),
    ("where clause", "concept-conformance"),
    ("could not be parsed", "parse-error"),
]

#: Fallback for diagnostics from library-registered algorithm specs.
FALLBACK_CHECK = "library-spec"

#: Hygiene checks about the suppressions themselves (emitted by the
#: driver, never suppressible — a suppression must not silence the
#: warning that it is dead).
UNUSED_SUPPRESSION = "unused-suppression"
UNKNOWN_SUPPRESSION_CODE = "unknown-suppression-code"

#: Driver-resilience findings (also never suppressible): an internal
#: exception converted to a per-file finding by crash isolation, and a
#: per-file deadline expiring mid-analysis.
LINT_INTERNAL = "LINT-INTERNAL"
LINT_TIMEOUT = "LINT-TIMEOUT"


def check_code(message: str) -> str:
    """The check code for a diagnostic message."""
    exact = MESSAGE_CHECKS.get(message)
    if exact is not None:
        return exact
    for needle, code in _SUBSTRING_CHECKS:
        if needle in message:
            return code
    return FALLBACK_CHECK


def all_check_codes() -> list[str]:
    """Every code the driver can emit (for ``--list-checks``)."""
    codes = list(dict.fromkeys(MESSAGE_CHECKS.values()))
    codes += [code for _, code in _SUBSTRING_CHECKS]
    codes.append(FALLBACK_CHECK)
    codes += [UNUSED_SUPPRESSION, UNKNOWN_SUPPRESSION_CODE]
    codes += [LINT_INTERNAL, LINT_TIMEOUT]
    return codes


_IGNORE_RE = re.compile(
    r"#\s*stllint:\s*ignore(?:\[(?P<checks>[^\]]*)\])?"
)

#: Sentinel meaning "every check on this line".
ALL_CHECKS = "*"


def collect_suppressions(source_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the set of suppressed check codes
    (``{ALL_CHECKS}`` for a bare ``ignore``)."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "stllint" not in text:
            continue
        m = _IGNORE_RE.search(text)
        if m is None:
            continue
        raw = m.group("checks")
        if raw is None:
            out[lineno] = {ALL_CHECKS}
        else:
            codes = {c.strip() for c in raw.split(",") if c.strip()}
            out[lineno] = codes or {ALL_CHECKS}
    return out


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, code: str
) -> bool:
    codes: Optional[set[str]] = suppressions.get(line)
    if codes is None:
        return False
    return ALL_CHECKS in codes or code in codes
