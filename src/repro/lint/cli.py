"""Command-line entry point: ``python -m repro.lint <paths>``.

Exit status: 0 when no finding reaches the ``--fail-on`` threshold, 1
when one does, 2 on usage errors, 3 when the run completed with
*partial* results (an internal error or per-file ``--timeout-s``
deadline converted part of the analysis into LINT-INTERNAL /
LINT-TIMEOUT findings instead of aborting the run).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro import trace

from .driver import LintConfig, lint_paths
from .suppressions import all_check_codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "ConceptLint: whole-program STLlint driver — symbolic "
            "iterator/invalidation checking, library pre/postconditions, "
            "and @where concept-conformance checking over Python sources."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "suggestion", "note",
                              "never"),
        default="warning",
        help="least severe finding that fails the run (default: warning)",
    )
    parser.add_argument(
        "--no-concept-pass", action="store_true",
        help="skip @where call-site conformance checking",
    )
    parser.add_argument(
        "--no-interprocedural", action="store_true",
        help="do not analyze same-module calls",
    )
    parser.add_argument(
        "--engine", choices=("fixpoint", "inline"), default="fixpoint",
        help="analysis engine: 'fixpoint' (CFG + worklist to a true "
             "fixpoint, interprocedural summaries; the default) or "
             "'inline' (legacy bounded loop re-execution and call "
             "inlining, kept as a differential-testing oracle)",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="glob pattern of paths to skip (repeatable)",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print every check code usable in "
             "'# stllint: ignore[<check>]' and exit",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="OUT.json",
        help="record per-file/per-function analysis spans and write a "
             "Chrome trace-event JSON (load via chrome://tracing)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-file analysis deadline; on expiry the file gets a "
             "LINT-TIMEOUT finding and the run continues (exit code 3)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_checks:
        for code in all_check_codes():
            print(code)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    config = LintConfig(
        fail_on=args.fail_on,
        concept_pass=not args.no_concept_pass,
        interprocedural=not args.no_interprocedural,
        exclude=tuple(args.exclude),
        timeout_s=args.timeout_s,
        engine=args.engine,
    )
    tracer = trace.enable() if args.trace is not None else trace.active()
    with_trace = tracer is not None
    if with_trace:
        with tracer.span("lint.run", cat="lint",
                         paths=[str(p) for p in args.paths]):
            report = lint_paths(args.paths, config)
    else:
        report = lint_paths(args.paths, config)
    if args.trace is not None:
        trace.export_chrome(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    # 3 = partial results: crash isolation or a deadline cut analysis
    # short somewhere, so the (otherwise valid) findings are incomplete.
    if report.partial:
        return 3
    return 1 if report.fails(args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
