"""Command-line entry point: ``python -m repro.lint <paths>``.

A thin batch view over :class:`repro.analysis.AnalysisSession`; shares
the common flag set and the 0/1/2/3 exit-code contract with
``repro.optimize`` and ``repro.analysis`` (see ``--help``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import trace
from repro.analysis.args import (
    EXIT_CODES_EPILOG,
    EXIT_USAGE,
    common_parser,
    lint_exit_code,
    session_from_args,
)

from .suppressions import all_check_codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "ConceptLint: whole-program STLlint driver — symbolic "
            "iterator/invalidation checking, library pre/postconditions, "
            "and @where concept-conformance checking over Python sources."
        ),
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[common_parser(cache_default=False)],
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text; --json is equivalent "
             "to --format json)",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "suggestion", "note",
                              "never"),
        default="warning",
        help="least severe finding that fails the run (default: warning)",
    )
    parser.add_argument(
        "--no-concept-pass", action="store_true",
        help="skip @where call-site conformance checking",
    )
    parser.add_argument(
        "--no-interprocedural", action="store_true",
        help="do not analyze same-module calls",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="glob pattern of paths to skip (repeatable)",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print every check code usable in "
             "'# stllint: ignore[<check>]' and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_checks:
        for code in all_check_codes():
            print(code)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return EXIT_USAGE
    session = session_from_args(
        args,
        fail_on=args.fail_on,
        concept_pass=not args.no_concept_pass,
        interprocedural=not args.no_interprocedural,
        exclude=tuple(args.exclude),
    )
    tracer = trace.enable() if args.trace is not None else trace.active()
    if tracer is not None:
        with tracer.span("lint.run", cat="lint",
                         paths=[str(p) for p in args.paths]):
            report = session.lint_paths(args.paths)
    else:
        report = session.lint_paths(args.paths)
    if args.trace is not None:
        trace.export_chrome(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json or args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return lint_exit_code(report, args.fail_on)


if __name__ == "__main__":
    sys.exit(main())
