"""repro.resilience — concept-specified retry/timeout/backoff policies.

The paper treats semantic requirements as first-class, checkable
artifacts; this package applies that stance to *progress guarantees*:
backoff schedules, retry budgets, deadlines, and circuit breakers are
law-abiding objects whose laws are concept axioms
(:mod:`repro.resilience.concepts`), checked by the same model/archetype
machinery as the container and iterator concepts.  The reliable
transport (:mod:`repro.distributed.reliable`) and the hardened
lint/optimize drivers are its consumers.
"""

from .policy import (
    Backoff,
    CircuitBreaker,
    CircuitOpenError,
    ConstantBackoff,
    Deadline,
    DeadlineExceeded,
    ExponentialBackoff,
    ManualClock,
    ResilienceError,
    RetryBudgetExhausted,
    RetryPolicy,
)
from .concepts import (
    BackoffStrategy,
    ReplicatedLogSafety,
    RetryableOperation,
    backoff_archetype,
    check_backoff_laws,
    register_models,
    register_replicated_log_models,
)
from .runner import IsolatedFailure, call_with_policy, isolated

__all__ = [
    "Backoff", "ConstantBackoff", "ExponentialBackoff",
    "RetryPolicy", "Deadline", "ManualClock", "CircuitBreaker",
    "ResilienceError", "DeadlineExceeded", "RetryBudgetExhausted",
    "CircuitOpenError",
    "BackoffStrategy", "RetryableOperation", "ReplicatedLogSafety",
    "check_backoff_laws", "backoff_archetype", "register_models",
    "register_replicated_log_models",
    "call_with_policy", "isolated", "IsolatedFailure",
]
