"""Executing operations under a policy: retries, deadlines, isolation.

:func:`call_with_policy` is the one retry loop in the system — the
reliable transport re-implements the *schedule* over simulator timers
(it cannot block), but tool drivers and tests retry through here.  Time
never passes implicitly: sleeping is delegated to an injected ``sleep``
callable (default: none — the loop retries immediately, which is what
cooperative drivers and simulations want).

:func:`isolated` is the crash-isolation primitive the lint/optimize
drivers build their per-file "internal error, run continues" behavior
on: it converts an unexpected exception into a structured
:class:`IsolatedFailure` value instead of a traceback.

Trace events (all behind the usual ``ACTIVE is None`` guard):
``resilience.retry`` per retry, ``resilience.give_up`` when the budget
is exhausted, ``resilience.breaker_open`` on fail-fast rejections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

from ..trace import core as _trace

from .policy import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryBudgetExhausted,
    RetryPolicy,
)


def call_with_policy(
    fn: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    deadline: Optional[Deadline] = None,
    breaker: Optional[CircuitBreaker] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Optional[Callable[[float], None]] = None,
    label: str = "operation",
) -> Any:
    """Call ``fn`` until it succeeds or the policy gives up.

    Raises :class:`RetryBudgetExhausted` (carrying the last exception)
    when attempts run out, :class:`DeadlineExceeded` as soon as the
    deadline expires between attempts, and :class:`CircuitOpenError`
    without attempting anything when the breaker is open.  Exceptions
    outside ``retry_on`` propagate immediately — only *expected* failure
    modes are retried.
    """
    policy = policy or RetryPolicy()
    tr = _trace.ACTIVE
    if breaker is not None and not breaker.allow():
        if tr is not None:
            tr.event("resilience.breaker_open", cat="resilience",
                     label=label)
        raise CircuitOpenError(f"{label} rejected: circuit open")
    spent = 0.0
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if deadline is not None:
            deadline.check(label)
        try:
            result = fn()
        except retry_on as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            delay = policy.backoff.delay(attempt)
            retries_left = (
                attempt + 1 < policy.max_attempts
                and policy.allows(attempt + 1, spent + delay)
                and (breaker is None or breaker.allow())
            )
            if not retries_left:
                break
            spent += delay
            if tr is not None:
                tr.event("resilience.retry", cat="resilience", label=label,
                         attempt=attempt + 1, delay=delay,
                         error=type(exc).__name__)
            if sleep is not None and delay > 0:
                sleep(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    if tr is not None:
        tr.event("resilience.give_up", cat="resilience", label=label,
                 attempts=policy.max_attempts,
                 error=type(last).__name__ if last else None)
    raise RetryBudgetExhausted(
        f"{label} failed after {policy.max_attempts} attempt(s): {last!r}",
        attempts=policy.max_attempts, last=last,
    )


@dataclass(frozen=True)
class IsolatedFailure:
    """A crash converted to a value: what failed, where, and how."""

    label: str
    error: str                    # exception type name
    message: str
    timed_out: bool = False

    def describe(self) -> str:
        kind = "deadline exceeded" if self.timed_out else "internal error"
        return f"{self.label}: {kind} — {self.error}: {self.message}"


def isolated(
    fn: Callable[[], Any],
    label: str = "operation",
    deadline: Optional[Deadline] = None,
) -> Tuple[Any, Optional[IsolatedFailure]]:
    """Run ``fn`` under crash isolation: ``(result, None)`` on success,
    ``(None, IsolatedFailure)`` on any exception.  A pre-expired deadline
    short-circuits without calling ``fn`` at all.

    ``KeyboardInterrupt``/``SystemExit`` are *not* swallowed: isolation
    protects the run from the workload, never from the operator.
    """
    if deadline is not None and deadline.expired():
        return None, IsolatedFailure(
            label=label, error="DeadlineExceeded",
            message=f"budget of {deadline.budget:g}s exhausted before start",
            timed_out=True,
        )
    try:
        return fn(), None
    except DeadlineExceeded as exc:
        return None, IsolatedFailure(
            label=label, error=type(exc).__name__, message=str(exc),
            timed_out=True,
        )
    except Exception as exc:  # noqa: BLE001 - the whole point
        tr = _trace.ACTIVE
        if tr is not None:
            tr.event("resilience.isolated_failure", cat="resilience",
                     label=label, error=type(exc).__name__)
        return None, IsolatedFailure(
            label=label, error=type(exc).__name__, message=str(exc),
        )
