"""Retry/timeout/backoff policies as first-class, law-abiding objects.

Delivery and progress guarantees are *semantic requirements* in exactly
the paper's Section 3.1 sense: a backoff schedule must produce
non-negative, monotone non-decreasing delays; a retry policy must stay
inside a bounded total budget; a circuit breaker must traverse
closed → open → half-open → closed and nothing else.  Those laws are
stated as concept axioms in :mod:`repro.resilience.concepts` and checked
through the same archetype/model machinery as every other concept in the
library.

Determinism is part of the contract: no object here reads the wall clock
or the process-global ``random`` module.  Jitter comes from a seeded RNG
derived per ``(seed, attempt)`` so ``delay(k)`` is a *pure function* —
two policies with the same seed retransmit at identical offsets, which is
what makes the reliable-transport simulations and the chaos harness
replayable.  Time enters only through an injected ``clock`` callable
(:class:`Deadline`, :class:`CircuitBreaker`), defaulting to
``time.monotonic`` for real tool drivers and replaced by virtual or
manual clocks in simulations and tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


class ResilienceError(RuntimeError):
    """Base class for resilience-layer failures."""


class DeadlineExceeded(ResilienceError):
    """A :class:`Deadline` expired; carries how far over budget we are."""

    def __init__(self, message: str, overrun: float = 0.0) -> None:
        super().__init__(message)
        self.overrun = overrun


class RetryBudgetExhausted(ResilienceError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    ``last`` is the final attempt's exception, ``attempts`` how many were
    made — the caller sees *why* we gave up, not just that we did.
    """

    def __init__(self, message: str, attempts: int,
                 last: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last


class CircuitOpenError(ResilienceError):
    """The breaker is open: the operation was not even attempted."""


# ---------------------------------------------------------------------------
# Backoff strategies
# ---------------------------------------------------------------------------


class Backoff:
    """Base backoff strategy: maps an attempt index to a delay.

    The concept laws (:data:`repro.resilience.concepts.BackoffStrategy`):
    ``delay(k) >= 0`` and ``delay(k+1) >= delay(k)`` for every ``k >= 0``.
    """

    def delay(self, attempt: int) -> float:
        raise NotImplementedError

    def schedule(self, attempts: int) -> list[float]:
        """The first ``attempts`` delays, for inspection and law checks."""
        return [self.delay(k) for k in range(attempts)]


@dataclass(frozen=True)
class ConstantBackoff(Backoff):
    """The same delay before every retry."""

    base: float = 1.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("backoff delay must be non-negative")

    def delay(self, attempt: int) -> float:
        return self.base


@dataclass(frozen=True)
class ExponentialBackoff(Backoff):
    """Exponential growth with deterministic bounded jitter.

    ``delay(k)`` is drawn from ``[level_k, level_k * multiplier]`` where
    ``level_k = base * multiplier**k``, using an RNG seeded by
    ``(seed, k)`` — a pure function of its inputs.  Because the jittered
    value never exceeds the *next* level's floor, the schedule is monotone
    non-decreasing by construction (the cap, once reached, pins every
    later delay to the same value).
    """

    base: float = 0.5
    multiplier: float = 2.0
    cap: float = 60.0
    jitter: float = 0.5          # fraction of the level gap used for jitter
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (delays must not shrink)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        if attempt < 0:
            raise ValueError("attempt index must be >= 0")
        level = self.base * self.multiplier ** attempt
        if self.jitter:
            u = random.Random(self.seed * 2654435761 + attempt).random()
            level += self.jitter * u * level * (self.multiplier - 1.0)
        return min(self.cap, level)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A monotone time budget with an injected clock.

    ``Deadline.after(2.5)`` expires 2.5 clock-seconds from construction;
    cooperative code calls :meth:`check` at safe points and gets a
    :class:`DeadlineExceeded` once the budget is gone.  The clock is any
    zero-argument callable returning seconds — ``time.monotonic`` for
    tool drivers, a simulator's virtual ``now`` or a :class:`ManualClock`
    in tests.
    """

    __slots__ = ("budget", "clock", "_start")

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget < 0:
            raise ValueError("deadline budget must be non-negative")
        self.budget = budget
        self.clock = clock
        self._start = clock()

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds, clock)

    def elapsed(self) -> float:
        return self.clock() - self._start

    def remaining(self) -> float:
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "operation") -> None:
        over = -self.remaining()
        if over >= 0:
            raise DeadlineExceeded(
                f"{label} exceeded its {self.budget:g}s deadline "
                f"(by {over:.3f}s)", overrun=over,
            )


class ManualClock:
    """A hand-cranked clock for deterministic deadline/breaker tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += dt


# ---------------------------------------------------------------------------
# Retry policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, an operation is retried.

    ``max_attempts`` counts the first try: 4 attempts mean at most three
    retries.  ``max_total_delay`` bounds the *sum* of backoff delays —
    the law checked by the ``RetryableOperation`` concept: whatever the
    strategy, the cumulative waiting a policy can impose is finite and
    declared up front.
    """

    max_attempts: int = 3
    backoff: Backoff = field(default_factory=ConstantBackoff)
    max_total_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a policy must allow at least one attempt")
        if self.max_total_delay is not None and self.max_total_delay < 0:
            raise ValueError("max_total_delay must be non-negative")

    def delays(self) -> Iterator[float]:
        """The delay before each retry (at most ``max_attempts - 1``),
        truncated so the running total never exceeds ``max_total_delay``."""
        spent = 0.0
        for attempt in range(self.max_attempts - 1):
            d = self.backoff.delay(attempt)
            if self.max_total_delay is not None and \
                    spent + d > self.max_total_delay:
                return
            spent += d
            yield d

    def total_budget(self) -> float:
        """The worst-case cumulative delay this policy can impose."""
        return sum(self.delays())

    def allows(self, attempt: int, spent_delay: float = 0.0) -> bool:
        """May attempt number ``attempt`` (0-based) still be made, given
        ``spent_delay`` seconds already burned on backoff?"""
        if attempt >= self.max_attempts:
            return False
        if self.max_total_delay is not None and \
                spent_delay > self.max_total_delay:
            return False
        return True


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Fail fast once an operation keeps failing; probe again later.

    State law (checked in tests and stated as concept documentation):
    ``closed --[failure_threshold consecutive failures]--> open``;
    ``open --[reset_timeout elapsed]--> half-open``;
    ``half-open --[success]--> closed``, ``half-open --[failure]--> open``.
    No other transition exists.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        if self._state == OPEN and \
                self.clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the next call proceed?  (Open circuits reject instantly.)"""
        return self.state != OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        state = self.state
        if state == HALF_OPEN:
            self._state = OPEN
            self._opened_at = self.clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self.clock()

    def guard(self, label: str = "operation") -> None:
        if not self.allow():
            raise CircuitOpenError(
                f"{label} rejected: circuit open after "
                f"{self._failures} consecutive failure(s)"
            )
