"""Concepts for the resilience layer: progress guarantees as requirements.

Siek & Lumsdaine's "Generic Programming in the Large" argues for
components whose contracts are *separately checkable*; the C++0x Concepts
effort made requirements checkable entities.  Here the contract of a
backoff schedule and of a retryable operation is written down the same
way every other concept in this library is — valid expressions for the
syntax, semantic axioms for the laws — and checked through the standard
machinery: :func:`repro.concepts.modeling.ModelRegistry.check` for
structure, ``check_semantics`` for the laws on sampled values, and
:class:`repro.concepts.archetypes.ArchetypeSet` to prove that the generic
retry code requires no syntax the concept does not grant.

Laws:

- ``BackoffStrategy``: ``delay(k) >= 0`` (non-negativity) and
  ``delay(k+1) >= delay(k)`` (monotone non-decreasing schedule).
- ``RetryableOperation``: a policy's attempts are finite and its
  cumulative backoff never exceeds the declared ``max_total_delay``
  (bounded total budget).
- ``ReplicatedLogSafety``: the Raft-style safety laws over one run's
  :class:`~repro.distributed.algorithms.replog.ReplicatedLogRecord` —
  at most one leader per term (election safety), every pair of applied
  prefixes ordered by the prefix relation (state-machine safety), no
  committed entry ever lost across partition/heal/churn (durability),
  and, at quiescence, every proposed command applied everywhere
  (completeness).  Checked over seeded simulation runs that actually
  partition, heal, and churn the network.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..concepts import Concept, models
from ..concepts.archetypes import ArchetypeSet
from ..concepts.modeling import ModelRegistry
from ..concepts.requirements import Exact, Param, SemanticAxiom, method

from .policy import Backoff, ConstantBackoff, ExponentialBackoff, RetryPolicy

S = Param("S")
P = Param("P")
R = Param("R")

#: Attempt indices the axiom sampler exercises (small indices catch the
#: off-by-one regimes: first retry, pre-cap growth, at-cap saturation).
_SAMPLE_ATTEMPTS = (0, 1, 2, 3, 5, 8, 13, 21)


BackoffStrategy = Concept(
    "BackoffStrategy",
    params=("S",),
    requirements=[
        method("s.delay(attempt)", "delay", [S, Exact(int)], Exact(float)),
        SemanticAxiom(
            "non_negative_delay", ("s", "k"),
            lambda ops, s, k: ops["delay"](s, k) >= 0,
            "delay(k) >= 0 for every attempt k",
        ),
        SemanticAxiom(
            "monotone_non_decreasing", ("s", "k"),
            lambda ops, s, k: ops["delay"](s, k + 1) >= ops["delay"](s, k),
            "delay(k+1) >= delay(k): waiting never shrinks between retries",
        ),
    ],
    doc="A retry delay schedule: non-negative and monotone non-decreasing "
        "in the attempt index.  Jitter, if any, must respect monotonicity.",
)


RetryableOperation = Concept(
    "RetryableOperation",
    params=("P",),
    requirements=[
        method("p.delays()", "delays", [P], None),
        method("p.total_budget()", "total_budget", [P], Exact(float)),
        SemanticAxiom(
            "finite_attempts", ("p",),
            lambda ops, p: len(list(ops["delays"](p))) < p.max_attempts,
            "the number of retry delays is strictly below max_attempts",
        ),
        SemanticAxiom(
            "bounded_total_budget", ("p",),
            lambda ops, p: (
                p.max_total_delay is None
                or ops["total_budget"](p) <= p.max_total_delay
            ),
            "sum of delays never exceeds the declared max_total_delay",
        ),
    ],
    doc="An operation retried under a policy: finitely many attempts, "
        "cumulative backoff inside a declared budget.",
)


def _is_prefix(a: tuple, b: tuple) -> bool:
    return len(a) <= len(b) and b[: len(a)] == a


def _pairwise_prefix_ordered(prefixes: Sequence[tuple]) -> bool:
    ordered = sorted(set(prefixes), key=len)
    return all(
        _is_prefix(ordered[i], ordered[i + 1])
        for i in range(len(ordered) - 1)
    )


ReplicatedLogSafety = Concept(
    "ReplicatedLogSafety",
    params=("R",),
    requirements=[
        method("r.quorum()", "quorum", [R], Exact(int)),
        method("r.leaders_by_term()", "leaders_by_term", [R], Exact(dict)),
        method("r.applied_prefixes()", "applied_prefixes", [R], None),
        method("r.final_prefixes()", "final_prefixes", [R], None),
        method("r.expected_commands()", "expected_commands", [R],
               Exact(tuple)),
        SemanticAxiom(
            "election_safety", ("r",),
            lambda ops, r: all(
                len(leaders) <= 1
                for leaders in ops["leaders_by_term"](r).values()
            ),
            "at most one leader is elected per term",
        ),
        SemanticAxiom(
            "state_machine_safety", ("r",),
            lambda ops, r: _pairwise_prefix_ordered(
                ops["applied_prefixes"](r)),
            "any two applied prefixes (historical or final, any replica) "
            "are ordered by the prefix relation: replicas never apply "
            "conflicting commands at the same index",
        ),
        SemanticAxiom(
            "committed_never_lost", ("r",),
            lambda ops, r: all(
                any(_is_prefix(p, f) for f in ops["final_prefixes"](r))
                for p in ops["applied_prefixes"](r)
            ),
            "every prefix a replica ever applied survives as a prefix of "
            "some final state — partitions, healing, and churn with state "
            "loss cannot un-commit an entry",
        ),
        SemanticAxiom(
            "completeness_at_quiescence", ("r",),
            lambda ops, r: all(
                all(cmd in f for cmd in ops["expected_commands"](r))
                for f in ops["final_prefixes"](r)
            ) and len(ops["final_prefixes"](r)) == r.n,
            "a run driven to quiescence applies every proposed command on "
            "every replica",
        ),
    ],
    doc="Safety laws of a leader-based replicated log, quantified over "
        "complete run records: election safety, state-machine safety, "
        "durability of committed entries, completeness at quiescence.",
)


def _replicated_log_samples() -> list[tuple]:
    """Seeded runs the axioms quantify over: a clean run, the
    partition->heal->churn acceptance scenario at loss 0.3, and a
    leader-isolating partition that forces a re-election."""
    from ..distributed.algorithms.replog import (
        record_run,
        run_replicated_log,
    )
    from ..distributed.failures import FailurePlan, heal, partition

    samples: list[tuple] = []

    m = run_replicated_log(3, {0: ["a", "b"]}, seed=1)
    samples.append((record_run(m, 3),))

    plan = FailurePlan(loss_probability=0.3, seed=7,
                       churn={4: [(40.0, 70.0)]})
    plan = partition(10.0, [{0, 1, 2}, {3, 4}], plan=plan)
    plan = heal(35.0, plan=plan)
    m = run_replicated_log(
        5, {0: ["a", "b", "c"], 3: ["x"]}, failures=plan, seed=2,
        heartbeat_interval=4.0, max_time=5000, on_limit="truncate")
    samples.append((record_run(m, 5),))

    plan = FailurePlan(loss_probability=0.15, seed=13)
    plan = partition(14.0, [{0}, {1, 2, 3, 4}], plan=plan)
    plan = heal(60.0, plan=plan)
    m = run_replicated_log(
        5, {1: ["p", "q"], 2: ["r"]}, failures=plan, seed=5,
        heartbeat_interval=4.0, max_time=5000, on_limit="truncate")
    samples.append((record_run(m, 5),))

    return samples


def register_replicated_log_models(
    registry: Optional[ModelRegistry] = None,
) -> None:
    """Declare ``ReplicatedLogRecord`` a model of ``ReplicatedLogSafety``
    (idempotent).  Deliberately NOT run at import: the distributed layer
    imports this module through the reliable transport, and the sampler
    runs whole simulations — callers opt in."""
    from ..distributed.algorithms.replog import ReplicatedLogRecord

    reg = registry if registry is not None else models
    if reg.concept_map_for(ReplicatedLogSafety,
                           (ReplicatedLogRecord,)) is None:
        reg.register(ReplicatedLogSafety, ReplicatedLogRecord,
                     sampler=_replicated_log_samples)


def _backoff_samples() -> list[tuple[Backoff, int]]:
    strategies: list[Backoff] = [
        ConstantBackoff(0.5),
        ExponentialBackoff(base=0.25, multiplier=2.0, cap=8.0,
                           jitter=0.8, seed=7),
        ExponentialBackoff(base=1.0, multiplier=1.5, cap=4.0,
                           jitter=0.0, seed=0),
    ]
    return [(s, k) for s in strategies for k in _SAMPLE_ATTEMPTS]


def _policy_samples() -> list[tuple[RetryPolicy]]:
    return [
        (RetryPolicy(max_attempts=1),),
        (RetryPolicy(max_attempts=4, backoff=ConstantBackoff(1.0)),),
        (RetryPolicy(max_attempts=8,
                     backoff=ExponentialBackoff(base=0.5, seed=3),
                     max_total_delay=10.0),),
        (RetryPolicy(max_attempts=50,
                     backoff=ExponentialBackoff(base=1.0, jitter=1.0,
                                                seed=11),
                     max_total_delay=5.0),),
    ]


def register_models(registry: Optional[ModelRegistry] = None) -> None:
    """Declare the shipped strategies/policies as models of their concepts
    (idempotent; runs against the default registry at import)."""
    reg = registry if registry is not None else models
    for cls in (ConstantBackoff, ExponentialBackoff):
        if reg.concept_map_for(BackoffStrategy, (cls,)) is None:
            reg.register(BackoffStrategy, cls, sampler=_backoff_samples)
    if reg.concept_map_for(RetryableOperation, (RetryPolicy,)) is None:
        reg.register(RetryableOperation, RetryPolicy,
                     sampler=_policy_samples)


def check_backoff_laws(
    strategy: Backoff,
    attempts: Sequence[int] = _SAMPLE_ATTEMPTS,
    registry: Optional[ModelRegistry] = None,
) -> None:
    """Check one concrete strategy instance against the BackoffStrategy
    axioms (raises ``SemanticAxiomViolation`` on the first broken law)."""
    reg = registry if registry is not None else models
    samples = [(strategy, k) for k in attempts]
    reg.check_semantics(BackoffStrategy, type(strategy), samples=samples)


def backoff_archetype() -> object:
    """An instance of the synthesized BackoffStrategy archetype: generic
    retry code run against it proves it uses only ``delay(attempt)``."""
    arche = ArchetypeSet(BackoffStrategy)
    return arche.param_types[0]()


register_models()
