"""repro.trace — structured tracing across the library machinery.

STLlint and Simplicissimus exist to *explain* what generic machinery did;
PR 2's counters say how often, this package says **in what order and why**:

- :mod:`repro.trace.core` — a span tracer (thread-local stacks, monotonic
  timing, instant events, counter samples) whose disabled state costs one
  module-global ``is None`` check per instrumented choke point and nothing
  at all on the dispatch-table hit path;
- :mod:`repro.trace.exporters` — newline-delimited JSON and Chrome
  ``chrome://tracing`` trace-event output, plus the schema validator CI
  uses to keep the emitted files loadable.

Instrumented layers (each guarded by the same disabled-check discipline):

- concept dispatch (``repro.runtime.dispatch``): table compiles
  (``dispatch.compile`` spans) and slow-path resolutions
  (``dispatch.miss`` spans); hits are folded in from
  :mod:`repro.runtime.metrics` as counter events at export time;
- the Simplicissimus rewriter: one span per fixpoint pass, one event per
  rule application, an explicit event when ``max_passes`` is exhausted;
- the STLlint driver: per-file and per-function analysis spans,
  havoc/inline events from the symbolic interpreter, and a
  ``--trace OUT.json`` CLI flag;
- the distributed simulator: delivery/round/drop events and truncation.

Activation: set ``REPRO_TRACE=1`` in the environment (optionally with
``REPRO_TRACE_OUT=trace.json`` to write a Chrome trace at interpreter
exit), call :func:`enable` programmatically, or hand an explicit
``tracer=`` to the subsystems that accept one.
"""

from __future__ import annotations

import atexit
import os

from .core import Span, Tracer, active, disable, enable
from .exporters import (
    export_chrome,
    export_ndjson,
    validate_chrome_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "active",
    "disable",
    "enable",
    "export_chrome",
    "export_ndjson",
    "validate_chrome_trace",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in (
        "", "0", "false", "off",
    )


if _env_enabled():
    enable()
    _out = os.environ.get("REPRO_TRACE_OUT", "").strip()
    if _out:
        def _export_at_exit(path: str = _out) -> None:
            tracer = active()
            if tracer is not None:
                try:
                    export_chrome(tracer, path)
                except Exception:  # noqa: BLE001 - never fail shutdown
                    pass

        atexit.register(_export_at_exit)
