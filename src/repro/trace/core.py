"""Span tracer core: thread-local span stacks over a monotonic clock.

The contract that makes tracing affordable everywhere (ROADMAP: "fast as
the hardware allows") is split in two:

- **disabled** (the default): every instrumentation site in the codebase
  is guarded by a single ``if core.ACTIVE is not None`` module-global
  check — no allocation, no call, no clock read.  The dispatch-table *hit*
  path is not instrumented at all: hits are already counted by
  :mod:`repro.runtime.metrics`, and the tracer folds those counters into
  the trace as Chrome counter events at export time, so the hottest loop
  in the system carries zero added instructions.
- **enabled**: spans are recorded as plain dicts against a
  ``perf_counter_ns`` origin captured at tracer construction, pushed and
  popped on a per-thread stack so nesting depth is known without walking
  parents.  Instant events and counter samples attach to the same
  timeline.

This module imports only the standard library: it sits below
:mod:`repro.runtime` (which instruments against it) and therefore below
everything else in the layering.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter_ns
from typing import Any, Optional

#: The process-global tracer consulted by every instrumentation site.
#: ``None`` means disabled; sites must guard with ``if ACTIVE is not None``.
ACTIVE: Optional["Tracer"] = None

_lock = threading.Lock()


class Span:
    """One open span: a named interval on the current thread's stack.

    Returned by :meth:`Tracer.span` for use as a context manager; extra
    attributes discovered mid-span are attached with :meth:`set`.
    """

    __slots__ = ("tracer", "name", "cat", "attrs", "start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.start_ns = 0
        self._depth = 0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = perf_counter_ns()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._emit_span(
            self.name, self.cat, self.start_ns, end_ns, self._depth,
            self.attrs,
        )


class Tracer:
    """Records spans, instant events, and counter samples as plain dicts.

    Every record carries microsecond timestamps relative to the tracer's
    construction (``ts_us``), the recording thread (``tid``), and free-form
    ``attrs``; spans additionally carry ``dur_us`` and nesting ``depth``.
    Exporters (:mod:`repro.trace.exporters`) turn the record list into
    newline-delimited JSON or Chrome ``chrome://tracing`` format.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.origin_ns = perf_counter_ns()
        self.records: list[dict] = []
        self.pid = os.getpid()
        self._tls = threading.local()
        self._tids: dict[int, int] = {}

    # -- internals -----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with _lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _us(self, ns: int) -> float:
        return (ns - self.origin_ns) / 1e3

    def _emit_span(self, name: str, cat: str, start_ns: int, end_ns: int,
                   depth: int, attrs: dict[str, Any]) -> None:
        self.records.append({
            "type": "span",
            "name": name,
            "cat": cat,
            "ts_us": self._us(start_ns),
            "dur_us": (end_ns - start_ns) / 1e3,
            "tid": self._tid(),
            "depth": depth,
            "attrs": attrs,
        })

    # -- recording API -------------------------------------------------------

    def span(self, name: str, cat: str = "repro", **attrs: Any) -> Span:
        """Open a nested span: ``with tracer.span("lint.function", fn=name):``."""
        return Span(self, name, cat, attrs)

    def complete(self, name: str, start_ns: int, cat: str = "repro",
                 **attrs: Any) -> None:
        """Record an already-timed interval (``start_ns`` from
        ``perf_counter_ns()``) without stack bookkeeping — the shape used
        by choke points that measure themselves."""
        self._emit_span(
            name, cat, start_ns, perf_counter_ns(), len(self._stack()), attrs
        )

    def event(self, name: str, cat: str = "repro", **attrs: Any) -> None:
        """Record an instant event at the current time and depth."""
        self.records.append({
            "type": "event",
            "name": name,
            "cat": cat,
            "ts_us": self._us(perf_counter_ns()),
            "tid": self._tid(),
            "depth": len(self._stack()),
            "attrs": attrs,
        })

    def counter(self, name: str, values: dict[str, float],
                cat: str = "repro") -> None:
        """Record a counter sample (renders as a Chrome counter track)."""
        self.records.append({
            "type": "counter",
            "name": name,
            "cat": cat,
            "ts_us": self._us(perf_counter_ns()),
            "tid": self._tid(),
            "values": dict(values),
        })

    def fold_runtime_counters(self) -> None:
        """Sample :func:`repro.runtime.stats` totals into counter records —
        this is how dispatch-table *hits* reach the trace without a single
        instruction on the hit path (see the module docstring)."""
        from repro import runtime

        totals = runtime.stats()["totals"]
        self.counter("dispatch.tables", {
            "hits": totals["dispatch_hits"],
            "misses": totals["dispatch_misses"],
            "rebuilds": totals["table_rebuilds"],
        }, cat="dispatch")
        self.counter("model.cache", {
            "hits": totals["model_cache_hits"],
            "misses": totals["model_cache_misses"],
            "invalidations": totals["invalidations"],
        }, cat="dispatch")
        self.counter("where.sites", {
            "hits": totals["where_hits"],
            "misses": totals["where_misses"],
        }, cat="dispatch")

    def fold_stllint_counters(self) -> None:
        """Sample the fixpoint engine's process-wide counters
        (:func:`repro.stllint.dataflow.stats`) into counter records, the
        same way :meth:`fold_runtime_counters` samples dispatch stats."""
        from repro.stllint import dataflow

        s = dataflow.stats()
        if not any(s.values()):
            return  # fixpoint engine never ran; keep the trace quiet
        self.counter("stllint.fixpoint", {
            "functions": s["functions"],
            "blocks": s["blocks"],
            "iterations": s["iterations"],
            "widenings": s["widenings"],
            "unstable_loops": s["unstable_loops"],
        }, cat="stllint")
        self.counter("stllint.summaries", {
            "hits": s["summary_hits"],
            "misses": s["summary_misses"],
            "recursion_bails": s["summary_recursion_bails"],
        }, cat="stllint")

    def fold_analysis_counters(self) -> None:
        """Sample the analysis service's process-wide cache counters
        (:func:`repro.analysis.cache.stats`) into a counter record, the
        same way :meth:`fold_stllint_counters` samples the engine's."""
        from repro.analysis import cache as analysis_cache

        s = analysis_cache.stats()
        if not any(s.values()):
            return  # cache never touched; keep the trace quiet
        self.counter("analysis.cache", dict(s), cat="analysis")


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-global tracer and
    return it."""
    global ACTIVE
    with _lock:
        if tracer is None:
            tracer = ACTIVE if ACTIVE is not None else Tracer()
        ACTIVE = tracer
    return tracer


def disable() -> Optional[Tracer]:
    """Deactivate global tracing; returns the tracer that was active (its
    records remain exportable)."""
    global ACTIVE
    with _lock:
        tracer, ACTIVE = ACTIVE, None
    return tracer


def active() -> Optional[Tracer]:
    """The process-global tracer, or None when tracing is disabled."""
    return ACTIVE
