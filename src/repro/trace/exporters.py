"""Trace exporters: newline-delimited JSON and Chrome trace-event format.

Two consumers, two formats:

- :func:`export_ndjson` writes one record per line exactly as the tracer
  stored it — the greppable/streamable form for scripts and tests;
- :func:`export_chrome` writes the Trace Event Format that
  ``chrome://tracing`` (and Perfetto's legacy loader) accepts: an object
  with a ``traceEvents`` array of ``X`` (complete), ``i`` (instant), and
  ``C`` (counter) events with microsecond timestamps.

:func:`validate_chrome_trace` is the schema check the test suite and CI
run over emitted files, so "loads in chrome://tracing" is a verified
property rather than a hope.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Any, Union

from .core import Tracer

PathOrFile = Union[str, pathlib.Path, io.TextIOBase, Any]


def _chrome_events(tracer: Tracer) -> list[dict]:
    events: list[dict] = []
    for r in tracer.records:
        base = {
            "name": r["name"],
            "cat": r.get("cat", "repro"),
            "ts": r["ts_us"],
            "pid": tracer.pid,
            "tid": r["tid"],
        }
        if r["type"] == "span":
            base["ph"] = "X"
            base["dur"] = r["dur_us"]
            base["args"] = r.get("attrs", {})
        elif r["type"] == "event":
            base["ph"] = "i"
            base["s"] = "t"
            base["args"] = r.get("attrs", {})
        else:  # counter
            base["ph"] = "C"
            base["args"] = r.get("values", {})
        events.append(base)
    return events


def _write(target: PathOrFile, text: str) -> None:
    if hasattr(target, "write"):
        target.write(text)
    else:
        pathlib.Path(target).write_text(text, encoding="utf-8")


def export_ndjson(tracer: Tracer, target: PathOrFile,
                  fold_counters: bool = True) -> None:
    """One JSON object per line, in recording order."""
    if fold_counters:
        _fold(tracer)
    _write(target, "".join(
        json.dumps(r, default=str) + "\n" for r in tracer.records
    ))


def export_chrome(tracer: Tracer, target: PathOrFile,
                  fold_counters: bool = True) -> None:
    """Chrome trace-event JSON (load via ``chrome://tracing`` → Load)."""
    if fold_counters:
        _fold(tracer)
    doc = {
        "traceEvents": _chrome_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"tracer": tracer.name},
    }
    _write(target, json.dumps(doc, default=str) + "\n")


def _fold(tracer: Tracer) -> None:
    try:
        tracer.fold_runtime_counters()
    except ImportError:  # pragma: no cover - runtime layer always present
        pass
    try:
        tracer.fold_stllint_counters()
    except ImportError:  # pragma: no cover - stllint layer always present
        pass
    try:
        tracer.fold_analysis_counters()
    except ImportError:  # pragma: no cover - analysis layer always present
        pass


_PHASES_REQUIRING_DUR = {"X"}
_KNOWN_PHASES = {"X", "i", "I", "C", "B", "E", "M"}


def validate_chrome_trace(doc: Any) -> list[dict]:
    """Check ``doc`` (a parsed JSON value) against the Trace Event Format;
    returns the event list or raises ``ValueError`` naming the defect."""
    if isinstance(doc, list):
        events = doc
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("object form must carry a 'traceEvents' list")
    else:
        raise ValueError(
            f"trace must be a JSON array or object, got {type(doc).__name__}"
        )
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event {i} ({ev.get('name')}) lacks {field!r}")
        if ev["ph"] not in _KNOWN_PHASES:
            raise ValueError(f"event {i} has unknown phase {ev['ph']!r}")
        if not isinstance(ev["ts"], (int, float)):
            raise ValueError(f"event {i} ts is not numeric")
        if ev["ph"] in _PHASES_REQUIRING_DUR and not isinstance(
                ev.get("dur"), (int, float)):
            raise ValueError(f"complete event {i} lacks numeric 'dur'")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"event {i} args is not an object")
    return events
