"""repro — a reproduction of *Generic Programming and High-Performance
Libraries* (Gregor, Järvi, Kulkarni, Lumsdaine, Musser, Schupp; 2004).

Subpackages (one per system the paper describes):

- :mod:`repro.concepts` — first-class concepts: requirements, refinement,
  modeling, archetypes, concept-based overloading, constraint propagation,
  taxonomies, complexity guarantees (Section 2).
- :mod:`repro.runtime` — dispatch acceleration + observability beneath the
  concept layer: generation-cached model verdicts, precompiled overload
  decision tables, `stats()`/`report()` and the ``REPRO_DISPATCH_STATS=1``
  exit report.
- :mod:`repro.sequences` — STL-like containers/iterators with tracked
  invalidation and concept-overloaded algorithms.
- :mod:`repro.graphs` — BGL-like graph library over the Fig. 1/2 concepts.
- :mod:`repro.linalg` — Fig. 3 vector spaces and the CLA-CRM mixed-precision
  kernels.
- :mod:`repro.stllint` — high-level static checking against library
  specifications (Section 3.1).
- :mod:`repro.simplicissimus` — concept-based rewriting (Section 3.2, Fig. 5).
- :mod:`repro.athena` — DPL-style proof checking with generic proofs
  (Section 3.3, Fig. 6).
- :mod:`repro.distributed` — message-passing simulator + the seven-dimension
  algorithm taxonomy (Section 4).
- :mod:`repro.parallel` — data-parallel library over a work/span machine
  model (Section 4).
"""

from . import concepts

__version__ = "1.0.0"

__all__ = ["concepts", "__version__"]
