"""A ``std::deque``-like double-ended queue.

Invalidation rules (ISO C++ [deque.modifiers], simplified to the iterator
story — we do not model reference stability separately): any insert or erase
in the middle invalidates all iterators; push/pop at either end invalidates
all iterators but in C++ leaves references valid (references are not a
distinct notion in Python, so here end-ops also invalidate iterators, the
conservative reading STLlint's specification uses).

Like :class:`~repro.sequences.vector.Vector`, the class is a façade over a
pluggable :class:`~repro.sequences.storage.Storage` (a ``collections.deque``
by default) with every mutation routed through the shared choke point.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable, Optional

from .iterators import IndexIterator, IteratorRegistry
from .storage import DequeStorage, SequenceFacade, Storage


class DequeIterator(IndexIterator):
    """Random-access iterator over a :class:`Deque`."""

    value_type: type = object


class Deque(SequenceFacade):
    """Double-ended queue; models Random Access Container plus Front and
    Back Insertion Sequence."""

    value_type: type = object
    iterator: type = DequeIterator
    storage_factory: ClassVar[type] = DequeStorage

    def __init__(self, items: Iterable[Any] = (),
                 storage: Optional[Storage] = None) -> None:
        if storage is None:
            storage = self.storage_factory(items)
        else:
            for item in items:
                storage.append(item)
        self._init_facade(storage)
        self._iterators = IteratorRegistry()
        self.invalidation_events = 0

    # -- internal plumbing used by IndexIterator ---------------------------------

    def _register_iterator(self, it: DequeIterator) -> None:
        self._iterators.register(it)

    def _end_index(self) -> int:
        return self._store.length()

    def _get(self, index: int) -> Any:
        return self._store.get(index)

    def _set(self, index: int, value: Any) -> None:
        self._store.set(index, value)
        self._commit_mutation("write")

    # -- Container interface --------------------------------------------------------

    def begin(self) -> DequeIterator:
        return self.iterator(self, 0)

    def end(self) -> DequeIterator:
        return self.iterator(self, self._store.length())

    def size(self) -> int:
        return self._store.length()

    def empty(self) -> bool:
        return self._store.length() == 0

    def at(self, index: int) -> Any:
        if not 0 <= index < self._store.length():
            raise IndexError(f"deque index {index} out of range")
        return self._store.get(index)

    def set_at(self, index: int, value: Any) -> None:
        if not 0 <= index < self._store.length():
            raise IndexError(f"deque index {index} out of range")
        self._store.set(index, value)
        self._commit_mutation("write")

    def __getitem__(self, index: int) -> Any:
        return self.at(index)

    def __setitem__(self, index: int, value: Any) -> None:
        self.set_at(index, value)

    # -- mutations ----------------------------------------------------------------------

    def push_back(self, value: Any) -> None:
        self._store.append(value)
        self._commit_mutation("append",
                              invalidated=self._iterators.invalidate_all())

    def push_front(self, value: Any) -> None:
        self._store.insert(0, value)
        self._commit_mutation("append",
                              invalidated=self._iterators.invalidate_all())

    def pop_back(self) -> Any:
        if self._store.length() == 0:
            raise IndexError("pop_back on empty deque")
        last = self._store.length() - 1
        value = self._store.get(last)
        self._store.erase(last)
        self._commit_mutation("pop",
                              invalidated=self._iterators.invalidate_all())
        return value

    def pop_front(self) -> Any:
        if self._store.length() == 0:
            raise IndexError("pop_front on empty deque")
        value = self._store.get(0)
        self._store.erase(0)
        self._commit_mutation("pop",
                              invalidated=self._iterators.invalidate_all())
        return value

    def insert(self, pos: DequeIterator, value: Any) -> DequeIterator:
        pos._require_valid()
        index = pos.index
        self._store.insert(index, value)
        self._commit_mutation("insert",
                              invalidated=self._iterators.invalidate_all())
        return self.iterator(self, index)

    def erase(self, pos: DequeIterator) -> DequeIterator:
        pos._require_valid()
        index = pos.index
        if index >= self._store.length():
            raise IndexError("erase of past-the-end iterator")
        self._store.erase(index)
        self._commit_mutation("erase",
                              invalidated=self._iterators.invalidate_all())
        return self.iterator(self, index)

    def clear(self) -> None:
        self._store.clear()
        self._commit_mutation("clear",
                              invalidated=self._iterators.invalidate_all())

    # -- Python interop ---------------------------------------------------------------------

    def __len__(self) -> int:
        return self._store.length()

    def __iter__(self):
        return iter(self.to_list())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Deque):
            return self.to_list() == other.to_list()
        return NotImplemented

    def __repr__(self) -> str:
        return f"Deque({self.to_list()!r})"

    def to_list(self) -> list[Any]:
        return self._store.slice(0, self._store.length())
