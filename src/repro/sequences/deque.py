"""A ``std::deque``-like double-ended queue.

Invalidation rules (ISO C++ [deque.modifiers], simplified to the iterator
story — we do not model reference stability separately): any insert or erase
in the middle invalidates all iterators; push/pop at either end invalidates
all iterators but in C++ leaves references valid (references are not a
distinct notion in Python, so here end-ops also invalidate iterators, the
conservative reading STLlint's specification uses).
"""

from __future__ import annotations

from collections import deque as _pydeque
from typing import Any, Iterable

from .iterators import IndexIterator, IteratorRegistry


class DequeIterator(IndexIterator):
    """Random-access iterator over a :class:`Deque`."""

    value_type: type = object


class Deque:
    """Double-ended queue; models Random Access Container plus Front and
    Back Insertion Sequence."""

    value_type: type = object
    iterator: type = DequeIterator

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._data: _pydeque[Any] = _pydeque(items)
        self._iterators = IteratorRegistry()
        self.invalidation_events = 0

    # -- internal plumbing used by IndexIterator ---------------------------------

    def _register_iterator(self, it: DequeIterator) -> None:
        self._iterators.register(it)

    def _end_index(self) -> int:
        return len(self._data)

    def _get(self, index: int) -> Any:
        return self._data[index]

    def _set(self, index: int, value: Any) -> None:
        self._data[index] = value

    # -- Container interface --------------------------------------------------------

    def begin(self) -> DequeIterator:
        return self.iterator(self, 0)

    def end(self) -> DequeIterator:
        return self.iterator(self, len(self._data))

    def size(self) -> int:
        return len(self._data)

    def empty(self) -> bool:
        return not self._data

    def at(self, index: int) -> Any:
        if not 0 <= index < len(self._data):
            raise IndexError(f"deque index {index} out of range")
        return self._data[index]

    def set_at(self, index: int, value: Any) -> None:
        if not 0 <= index < len(self._data):
            raise IndexError(f"deque index {index} out of range")
        self._data[index] = value

    def __getitem__(self, index: int) -> Any:
        return self.at(index)

    def __setitem__(self, index: int, value: Any) -> None:
        self.set_at(index, value)

    # -- mutations ----------------------------------------------------------------------

    def push_back(self, value: Any) -> None:
        self._data.append(value)
        self.invalidation_events += self._iterators.invalidate_all()

    def push_front(self, value: Any) -> None:
        self._data.appendleft(value)
        self.invalidation_events += self._iterators.invalidate_all()

    def pop_back(self) -> Any:
        if not self._data:
            raise IndexError("pop_back on empty deque")
        self.invalidation_events += self._iterators.invalidate_all()
        return self._data.pop()

    def pop_front(self) -> Any:
        if not self._data:
            raise IndexError("pop_front on empty deque")
        self.invalidation_events += self._iterators.invalidate_all()
        return self._data.popleft()

    def insert(self, pos: DequeIterator, value: Any) -> DequeIterator:
        pos._require_valid()
        index = pos.index
        self._data.insert(index, value)
        self.invalidation_events += self._iterators.invalidate_all()
        return self.iterator(self, index)

    def erase(self, pos: DequeIterator) -> DequeIterator:
        pos._require_valid()
        index = pos.index
        if index >= len(self._data):
            raise IndexError("erase of past-the-end iterator")
        del self._data[index]
        self.invalidation_events += self._iterators.invalidate_all()
        return self.iterator(self, index)

    def clear(self) -> None:
        self._data.clear()
        self.invalidation_events += self._iterators.invalidate_all()

    # -- Python interop ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(list(self._data))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Deque):
            return list(self._data) == list(other._data)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Deque({list(self._data)!r})"

    def to_list(self) -> list[Any]:
        return list(self._data)
