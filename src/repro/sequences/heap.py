"""The STL heap algorithm family: make_heap / push_heap / pop_heap /
sort_heap / is_heap.

where C : Random Access Container (heap algorithms are the STL's clearest
case of an algorithm family that *cannot* relax its iterator requirement:
parent/child jumps need O(1) indexing).  Semantic requirement: the
comparator models Strict Weak Order (Fig. 6).

The heap property maintained is a max-heap under ``less``:
``not less(c[parent(i)], c[i])`` for every i — so ``sort_heap`` yields
ascending order, matching ``sort``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..concepts import where
from ..concepts.builtins import RandomAccessContainer
from .function_objects import Less

_default_less = Less()


def _sift_down(c: Any, start: int, end: int, less: Callable) -> None:
    root = start
    while True:
        child = 2 * root + 1
        if child >= end:
            return
        if child + 1 < end and less(c.at(child), c.at(child + 1)):
            child += 1
        if less(c.at(root), c.at(child)):
            tmp = c.at(root)
            c.set_at(root, c.at(child))
            c.set_at(child, tmp)
            root = child
        else:
            return


@where(c=RandomAccessContainer)
def make_heap(c: Any, less: Callable = _default_less) -> None:
    """Heapify in place.  O(n) comparisons (bottom-up Floyd heapify).
    where C : Random Access Container."""
    n = c.size()
    for start in range(n // 2 - 1, -1, -1):
        _sift_down(c, start, n, less)


@where(c=RandomAccessContainer)
def is_heap(c: Any, less: Callable = _default_less) -> bool:
    """O(n) heap-property check (the property sort_heap's entry handler
    would verify)."""
    n = c.size()
    for i in range(1, n):
        if less(c.at((i - 1) // 2), c.at(i)):
            return False
    return True


@where(c=RandomAccessContainer)
def push_heap(c: Any, less: Callable = _default_less) -> None:
    """Precondition: [0, n-1) is a heap; restores the property for [0, n).
    O(log n)."""
    i = c.size() - 1
    while i > 0:
        parent = (i - 1) // 2
        if less(c.at(parent), c.at(i)):
            tmp = c.at(parent)
            c.set_at(parent, c.at(i))
            c.set_at(i, tmp)
            i = parent
        else:
            return


@where(c=RandomAccessContainer)
def pop_heap(c: Any, less: Callable = _default_less) -> None:
    """Precondition: [0, n) is a heap.  Moves the maximum to position n-1
    and restores the property on [0, n-1).  O(log n)."""
    n = c.size()
    if n <= 1:
        return
    tmp = c.at(0)
    c.set_at(0, c.at(n - 1))
    c.set_at(n - 1, tmp)
    _sift_down(c, 0, n - 1, less)


@where(c=RandomAccessContainer)
def sort_heap(c: Any, less: Callable = _default_less) -> None:
    """Precondition: heap.  Ascending order on exit.  O(n log n)."""
    n = c.size()
    for end in range(n, 1, -1):
        tmp = c.at(0)
        c.set_at(0, c.at(end - 1))
        c.set_at(end - 1, tmp)
        _sift_down(c, 0, end - 1, less)


def heapsort(c: Any, less: Callable = _default_less) -> Any:
    """make_heap + sort_heap: in-place O(n log n) sort with O(1) extra
    space (the space/stability trade-off entry in the sorting taxonomy:
    beats merge sort on space, loses stability)."""
    make_heap(c, less)
    sort_heap(c, less)
    return c
