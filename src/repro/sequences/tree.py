"""A sorted associative container: AVL-tree set/map (the ``std::set`` /
``std::map`` analogue).

Completes the STL substrate's container story: node-based like
:class:`~repro.sequences.dlist.DList` (erase invalidates only the erased
position — ISO C++ [associative.reqmts]), but additionally *sorted by
construction*, so it is declared a nominal model of the SortedRange concept
and the binary-search family applies to its iterator ranges for free.

Iterators traverse in key order via parent pointers (Bidirectional
Iterator); all mutating operations keep the AVL balance invariant, giving
the O(log n) complexity guarantees the Sorted Associative Container concept
states.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..concepts import (
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    Concept,
    Exact,
    Param,
    method,
)
from ..concepts.builtins import ReversibleContainer, SortedRange
from ..concepts.complexity import linear, logarithmic
from .function_objects import Less
from .iterators import IteratorBase, IteratorRegistry

C = Param("C")

SortedAssociativeContainer = Concept(
    "Sorted Associative Container",
    params=("C",),
    refines=[ReversibleContainer],
    requirements=[
        method("c.insert_key(k)", "insert_key", [C, Assoc(C, "value_type")]),
        method("c.find_key(k)", "find_key", [C]),
        method("c.erase_key(k)", "erase_key", [C], Exact(int)),
        ComplexityGuarantee("insert_key", logarithmic()),
        ComplexityGuarantee("find_key", logarithmic()),
        ComplexityGuarantee("erase_key", logarithmic()),
        ComplexityGuarantee("iteration", linear()),
    ],
    doc="Keys kept in comparator order with logarithmic mutation — the "
        "std::set/std::map family.",
)


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "height")

    def __init__(self, key: Any, value: Any = None,
                 parent: Optional["_Node"] = None) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent = parent
        self.height = 1


def _h(n: Optional[_Node]) -> int:
    return n.height if n is not None else 0


class TreeIterator(IteratorBase):
    """In-order bidirectional iterator over a :class:`TreeMap`.  ``None``
    node = past-the-end."""

    value_type: type = object

    def __init__(self, container: "TreeMap", node: Optional[_Node]) -> None:
        self._node = node
        super().__init__(container)

    def deref(self) -> Any:
        self._require_valid()
        if self._node is None:
            from .errors import PastTheEndError

            raise PastTheEndError("attempt to dereference a past-the-end iterator")
        return self._node.key

    def value(self) -> Any:
        self._require_valid()
        if self._node is None:
            from .errors import PastTheEndError

            raise PastTheEndError("attempt to read through a past-the-end iterator")
        return self._node.value

    def set_value(self, v: Any) -> None:
        self._require_valid()
        if self._node is None:
            from .errors import PastTheEndError

            raise PastTheEndError("attempt to write through a past-the-end iterator")
        self._node.value = v

    def increment(self) -> None:
        self._require_valid()
        if self._node is None:
            from .errors import PastTheEndError

            raise PastTheEndError("attempt to increment a past-the-end iterator")
        self._node = self._container._successor(self._node)

    def decrement(self) -> None:
        self._require_valid()
        if self._node is None:
            node = self._container._max_node()
        else:
            node = self._container._predecessor(self._node)
        if node is None:
            from .errors import PastTheEndError

            raise PastTheEndError("attempt to decrement the begin iterator")
        self._node = node

    def clone(self) -> "TreeIterator":
        self._require_valid()
        return type(self)(self._container, self._node)

    def equals(self, other: IteratorBase) -> bool:
        self._require_valid()
        if not isinstance(other, TreeIterator):
            return False
        other._require_valid()
        return self._container is other._container and self._node is other._node

    def __repr__(self) -> str:
        state = "" if self._valid else " SINGULAR"
        at = "end" if self._node is None else repr(self._node.key)
        return f"<TreeIterator @{at}{state}>"


class TreeMap:
    """AVL-balanced key→value map with in-order iteration.

    With ``value=None`` throughout, it doubles as a sorted set (``insert_key``
    / ``find_key`` / ``erase_key``).  Duplicate keys are rejected (unique
    associative container semantics).
    """

    value_type: type = object
    iterator: type = TreeIterator

    def __init__(self, items: Iterable = (),
                 less: Callable[[Any, Any], bool] = Less()) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self._less = less
        self._iterators = IteratorRegistry()
        self.invalidation_events = 0
        for item in items:
            if isinstance(item, tuple) and len(item) == 2:
                self.insert_item(item[0], item[1])
            else:
                self.insert_key(item)

    # -- iterator plumbing ---------------------------------------------------

    def _register_iterator(self, it: TreeIterator) -> None:
        self._iterators.register(it)

    def _min_node(self) -> Optional[_Node]:
        n = self._root
        while n is not None and n.left is not None:
            n = n.left
        return n

    def _max_node(self) -> Optional[_Node]:
        n = self._root
        while n is not None and n.right is not None:
            n = n.right
        return n

    def _successor(self, n: _Node) -> Optional[_Node]:
        if n.right is not None:
            n = n.right
            while n.left is not None:
                n = n.left
            return n
        while n.parent is not None and n.parent.right is n:
            n = n.parent
        return n.parent

    def _predecessor(self, n: _Node) -> Optional[_Node]:
        if n.left is not None:
            n = n.left
            while n.right is not None:
                n = n.right
            return n
        while n.parent is not None and n.parent.left is n:
            n = n.parent
        return n.parent

    # -- AVL internals ------------------------------------------------------------

    def _update(self, n: _Node) -> None:
        n.height = 1 + max(_h(n.left), _h(n.right))

    def _balance_factor(self, n: _Node) -> int:
        return _h(n.left) - _h(n.right)

    def _replace_child(self, parent: Optional[_Node], old: _Node,
                       new: Optional[_Node]) -> None:
        if parent is None:
            self._root = new
        elif parent.left is old:
            parent.left = new
        else:
            parent.right = new
        if new is not None:
            new.parent = parent

    def _rotate_left(self, n: _Node) -> _Node:
        r = n.right
        assert r is not None
        self._replace_child(n.parent, n, r)
        n.right = r.left
        if r.left is not None:
            r.left.parent = n
        r.left = n
        n.parent = r
        self._update(n)
        self._update(r)
        return r

    def _rotate_right(self, n: _Node) -> _Node:
        l = n.left
        assert l is not None
        self._replace_child(n.parent, n, l)
        n.left = l.right
        if l.right is not None:
            l.right.parent = n
        l.right = n
        n.parent = l
        self._update(n)
        self._update(l)
        return l

    def _rebalance_up(self, n: Optional[_Node]) -> None:
        while n is not None:
            self._update(n)
            bf = self._balance_factor(n)
            if bf > 1:
                if self._balance_factor(n.left) < 0:
                    self._rotate_left(n.left)
                n = self._rotate_right(n)
            elif bf < -1:
                if self._balance_factor(n.right) > 0:
                    self._rotate_right(n.right)
                n = self._rotate_left(n)
            n = n.parent

    # -- Container interface ------------------------------------------------------

    def begin(self) -> TreeIterator:
        return self.iterator(self, self._min_node())

    def end(self) -> TreeIterator:
        return self.iterator(self, None)

    def size(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    # -- associative operations ------------------------------------------------------

    def _locate(self, key: Any) -> tuple[Optional[_Node], Optional[_Node]]:
        """(node-with-key or None, would-be parent)."""
        parent = None
        n = self._root
        while n is not None:
            if self._less(key, n.key):
                parent, n = n, n.left
            elif self._less(n.key, key):
                parent, n = n, n.right
            else:
                return n, n.parent
        return None, parent

    def insert_item(self, key: Any, value: Any) -> bool:
        """Insert key->value; False (and no change) when the key exists.
        Invalidates no iterators (node-based)."""
        node, parent = self._locate(key)
        if node is not None:
            return False
        new = _Node(key, value, parent)
        if parent is None:
            self._root = new
        elif self._less(key, parent.key):
            parent.left = new
        else:
            parent.right = new
        self._size += 1
        self._rebalance_up(parent)
        return True

    def insert_key(self, key: Any) -> bool:
        return self.insert_item(key, None)

    def find_key(self, key: Any) -> TreeIterator:
        """Iterator to the key, or end()."""
        node, _ = self._locate(key)
        return self.iterator(self, node)

    def get(self, key: Any, default: Any = None) -> Any:
        node, _ = self._locate(key)
        return node.value if node is not None else default

    def contains(self, key: Any) -> bool:
        node, _ = self._locate(key)
        return node is not None

    def __contains__(self, key: Any) -> bool:
        return self.contains(key)

    def erase_key(self, key: Any) -> int:
        """Remove the key; returns 1 if removed, 0 if absent.  Invalidates
        only iterators at the erased node."""
        node, _ = self._locate(key)
        if node is None:
            return 0
        self._erase_node(node)
        return 1

    def erase(self, pos: TreeIterator) -> TreeIterator:
        """Erase at the iterator; returns an iterator to the successor."""
        pos._require_valid()
        node = pos._node
        if node is None:
            raise IndexError("erase of past-the-end iterator")
        # Two-child erase swaps payload with the in-order successor and
        # unlinks *that* node — afterwards the successor's key lives in
        # ``node`` itself, which is exactly the position to return.
        two_children = node.left is not None and node.right is not None
        nxt = self._successor(node)
        self._erase_node(node)
        return self.iterator(self, node if two_children else nxt)

    def _erase_node(self, node: _Node) -> None:
        # Two children: swap payload with the in-order successor and delete
        # that node instead (classic BST erase).  Iterators at the successor
        # would silently re-target, so both nodes' iterators are invalidated.
        doomed = node
        if node.left is not None and node.right is not None:
            succ = self._successor(node)
            assert succ is not None
            node.key, succ.key = succ.key, node.key
            node.value, succ.value = succ.value, node.value
            doomed = succ
            self.invalidation_events += self._iterators.invalidate_if(
                lambda it: isinstance(it, TreeIterator) and it._node is node
            )
        child = doomed.left if doomed.left is not None else doomed.right
        parent = doomed.parent
        self._replace_child(parent, doomed, child)
        self.invalidation_events += self._iterators.invalidate_if(
            lambda it: isinstance(it, TreeIterator) and it._node is doomed
        )
        self._size -= 1
        self._rebalance_up(parent)

    def lower_bound_key(self, key: Any) -> TreeIterator:
        """First position whose key is not less than ``key`` — O(log n) by
        tree descent (vs the generic lower_bound's O(log n) comparisons but
        O(n) steps on bidirectional iterators)."""
        best: Optional[_Node] = None
        n = self._root
        while n is not None:
            if self._less(n.key, key):
                n = n.right
            else:
                best = n
                n = n.left
        return self.iterator(self, best)

    def clear(self) -> None:
        self.invalidation_events += self._iterators.invalidate_all()
        self._root = None
        self._size = 0

    # -- Python interop --------------------------------------------------------------

    def keys(self) -> list:
        return list(self)

    def items(self) -> list:
        out = []
        n = self._min_node()
        while n is not None:
            out.append((n.key, n.value))
            n = self._successor(n)
        return out

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        n = self._min_node()
        while n is not None:
            yield n.key
            n = self._successor(n)

    def __repr__(self) -> str:
        return f"TreeMap({self.items()!r})"

    # -- invariant checking (used by the property tests) ------------------------------

    def _check_invariants(self) -> None:
        def walk(n: Optional[_Node]) -> int:
            if n is None:
                return 0
            assert n.height == 1 + max(_h(n.left), _h(n.right)), "stale height"
            assert abs(self._balance_factor(n)) <= 1, "AVL balance violated"
            if n.left is not None:
                assert n.left.parent is n, "broken parent link"
                assert self._less(n.left.key, n.key), "BST order violated"
            if n.right is not None:
                assert n.right.parent is n, "broken parent link"
                assert self._less(n.key, n.right.key), "BST order violated"
            return 1 + walk(n.left) + walk(n.right)

        assert walk(self._root) == self._size, "size out of sync"
