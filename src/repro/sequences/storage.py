"""The storage seam: pluggable element stores behind the sequence façades.

The paper's claim is that *one* generic algorithm, constrained only by
concepts, should run at the speed of the best implementation for each
concrete representation.  That only becomes testable when the same
container interface can sit on genuinely different representations, so
this module splits every sequence container into two layers:

- a :class:`Storage` — the representation.  It owns the elements and
  answers a small index-addressed protocol (``length/get/set/insert/
  erase/slice``) plus lifecycle hooks (``flush/close``) and a *fact
  persistence* hook (``sync_facts/load_facts``) that durable backends
  override.  Each storage class publishes a :class:`StorageCapabilities`
  record — contiguity, persistence, random-access cost, io-cost-per-op —
  which is what backend-aware algorithm selection keys on.
- a façade (``Vector``/``Deque``/``DList`` and the classes in
  :mod:`repro.sequences.backends`) — the interface.  It models the
  container/iterator concepts, enforces the per-container ISO
  invalidation rules, and routes **every** mutation through one choke
  point (:meth:`SequenceFacade._commit_mutation`) that bumps the
  mutation epoch and pushes the mutation kind through the facts
  lattice's ``invalidate`` tables.

In-memory storages for the three classic containers live here;
``array``/mmap and sqlite representations live in
:mod:`repro.sequences.backends`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterable, Iterator, Optional

from ..concepts.complexity import BigO, constant, linear
from ..facts.properties import closure as _closure
from ..facts.properties import holds as _holds
from ..facts.properties import invalidate as _invalidate


class StorageError(RuntimeError):
    """A backend could not be opened or operated on (corrupt file, closed
    connection, unstorable value).  Backends raise this instead of leaking
    their native exceptions so callers get one clean failure mode — the
    exit-code contract in ``sqlite_store.main`` depends on it."""


@dataclass(frozen=True)
class StorageCapabilities:
    """What a representation can do and what touching it costs.

    Attributes:
        name: short backend identity; doubles as the STLlint container
            kind for annotation-driven analysis (``def f(s: "sqlite")``).
        contiguous: elements occupy one machine-addressable block
            (enables bulk/slice transfers priced as one operation).
        persistent: elements and recorded facts survive ``close()`` and
            a later reopen from the same location.
        random_access: asymptotic cost of ``get(i)`` in the
            representation.
        io_cost_per_op: relative price of one round trip to the backing
            store, in units of one in-memory element operation.  Zero
            for RAM-resident stores; the optimizer's io/cpu weighting
            uses this as the ``io_ops`` weight.
    """

    name: str
    contiguous: bool = False
    persistent: bool = False
    random_access: BigO = field(default_factory=constant)
    io_cost_per_op: float = 0.0

    def capability_names(self) -> frozenset[str]:
        """The capability tags algorithm concepts may require."""
        tags = set()
        if self.contiguous:
            tags.add("contiguous")
        if self.persistent:
            tags.add("persistent")
        return frozenset(tags)


class Storage(ABC):
    """Index-addressed element store.  Implementations may keep elements
    in a Python list, a machine array, an mmap'd file, or a database —
    the façade neither knows nor cares, it only sees this protocol."""

    capabilities: ClassVar[StorageCapabilities]

    # -- required core ------------------------------------------------------------

    @abstractmethod
    def length(self) -> int:
        """Number of stored elements."""

    @abstractmethod
    def get(self, index: int) -> Any:
        """Element at ``index`` (callers bounds-check)."""

    @abstractmethod
    def set(self, index: int, value: Any) -> None:
        """Replace the element at ``index``."""

    @abstractmethod
    def insert(self, index: int, value: Any) -> None:
        """Insert ``value`` before ``index`` (``index == length()`` appends)."""

    @abstractmethod
    def erase(self, index: int) -> None:
        """Remove the element at ``index``."""

    # -- derived operations (override when the representation has a faster way) --

    def append(self, value: Any) -> None:
        self.insert(self.length(), value)

    def slice(self, start: int, stop: int) -> list[Any]:
        """Bulk read ``[start, stop)``; contiguous and remote backends
        override this to answer in one operation / round trip."""
        return [self.get(i) for i in range(start, stop)]

    def clear(self) -> None:
        for i in range(self.length() - 1, -1, -1):
            self.erase(i)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.slice(0, self.length()))

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        """Make prior writes durable; no-op for RAM-resident stores."""

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards
        for persistent backends, a no-op otherwise."""

    # -- fact persistence ---------------------------------------------------------

    def sync_facts(self, facts: frozenset[str]) -> None:
        """Record the façade's current runtime fact set with the data.
        Durable backends persist it; in-memory stores ignore it."""

    def load_facts(self) -> frozenset[str]:
        """Facts stored with pre-existing data, already revalidated where
        the backend can check them cheaply (empty for fresh stores)."""
        return frozenset()


class ListStorage(Storage):
    """The default RAM representation: a Python ``list``."""

    capabilities = StorageCapabilities(
        name="vector", contiguous=False, persistent=False,
        random_access=constant(), io_cost_per_op=0.0,
    )

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items: list[Any] = list(items)

    def length(self) -> int:
        return len(self._items)

    def get(self, index: int) -> Any:
        return self._items[index]

    def set(self, index: int, value: Any) -> None:
        self._items[index] = value

    def insert(self, index: int, value: Any) -> None:
        self._items.insert(index, value)

    def erase(self, index: int) -> None:
        del self._items[index]

    def append(self, value: Any) -> None:
        self._items.append(value)

    def slice(self, start: int, stop: int) -> list[Any]:
        return self._items[start:stop]

    def clear(self) -> None:
        self._items.clear()


class DequeStorage(Storage):
    """RAM representation over :class:`collections.deque` — O(1) at both
    ends, which is what makes the Deque façade's push_front honest."""

    capabilities = StorageCapabilities(
        name="deque", contiguous=False, persistent=False,
        random_access=constant(), io_cost_per_op=0.0,
    )

    def __init__(self, items: Iterable[Any] = ()) -> None:
        from collections import deque
        self._items: Any = deque(items)

    def length(self) -> int:
        return len(self._items)

    def get(self, index: int) -> Any:
        return self._items[index]

    def set(self, index: int, value: Any) -> None:
        self._items[index] = value

    def insert(self, index: int, value: Any) -> None:
        if index == 0:
            self._items.appendleft(value)
        elif index >= len(self._items):
            self._items.append(value)
        else:
            self._items.insert(index, value)

    def erase(self, index: int) -> None:
        if index == 0:
            self._items.popleft()
        elif index == len(self._items) - 1:
            self._items.pop()
        else:
            del self._items[index]

    def append(self, value: Any) -> None:
        self._items.append(value)

    def slice(self, start: int, stop: int) -> list[Any]:
        return list(self._items)[start:stop]

    def clear(self) -> None:
        self._items.clear()


class _LinkNode:
    __slots__ = ("value", "prev", "next")

    def __init__(self, value: Any = None) -> None:
        self.value = value
        self.prev: "_LinkNode" = self
        self.next: "_LinkNode" = self


class LinkedStorage(Storage):
    """Node-based RAM representation for the DList façade.  Implements
    the index protocol by walking (linear random access — which is what
    the capability record advertises), and exposes the node-level
    operations the list's node iterators and O(1) splice need."""

    capabilities = StorageCapabilities(
        name="list", contiguous=False, persistent=False,
        random_access=linear(), io_cost_per_op=0.0,
    )

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self.sentinel = _LinkNode()
        self._size = 0
        for item in items:
            self.link_before(self.sentinel, _LinkNode(item))

    # -- node-level protocol (DList uses these directly) -------------------------

    def link_before(self, node: _LinkNode, new: _LinkNode) -> None:
        new.prev = node.prev
        new.next = node
        node.prev.next = new
        node.prev = new
        self._size += 1

    def unlink(self, node: _LinkNode) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev
        self._size -= 1

    def node_at(self, index: int) -> _LinkNode:
        node = self.sentinel.next
        for _ in range(index):
            node = node.next
        return node

    def splice_all(self, other: "LinkedStorage") -> tuple[_LinkNode, int]:
        """Move every node of ``other`` before this store's sentinel in
        O(1); returns (first moved node, count)."""
        first, last = other.sentinel.next, other.sentinel.prev
        moved = other._size
        other.sentinel.next = other.sentinel
        other.sentinel.prev = other.sentinel
        other._size = 0
        at = self.sentinel
        first.prev = at.prev
        at.prev.next = first
        last.next = at
        at.prev = last
        self._size += moved
        return first, moved

    # -- index protocol -----------------------------------------------------------

    def length(self) -> int:
        return self._size

    def get(self, index: int) -> Any:
        return self.node_at(index).value

    def set(self, index: int, value: Any) -> None:
        self.node_at(index).value = value

    def insert(self, index: int, value: Any) -> None:
        self.link_before(self.node_at(index), _LinkNode(value))

    def erase(self, index: int) -> None:
        self.unlink(self.node_at(index))

    def slice(self, start: int, stop: int) -> list[Any]:
        out, node = [], self.node_at(start)
        for _ in range(stop - start):
            out.append(node.value)
            node = node.next
        return out

    def clear(self) -> None:
        self.sentinel.next = self.sentinel
        self.sentinel.prev = self.sentinel
        self._size = 0


# ---------------------------------------------------------------------------
# Runtime fact validators
# ---------------------------------------------------------------------------

#: Checks run by ``assert_fact`` before accepting a fact, keyed by
#: property name.  Backends with a cheaper native check (sqlite's
#: adjacent-pair SQL scan) validate on their own side instead.
def _is_sorted(container: Any) -> bool:
    seq = container.to_list()
    return all(a <= b for a, b in zip(seq, seq[1:]))


FACT_VALIDATORS: dict[str, Callable[[Any], bool]] = {
    "sorted": _is_sorted,
}


class SequenceFacade:
    """Shared behaviour of every sequence façade: the mutation choke
    point, the mutation epoch, and the runtime fact set mirroring the
    facts lattice.

    Subclasses perform their storage operation and their per-container
    iterator invalidation, then call :meth:`_commit_mutation` with the
    mutation kind — there is exactly one way for container state to
    change, so facts can never silently survive a mutation that should
    have destroyed them (the Deque/DList bypass this fixes).
    """

    #: Storage class used when no explicit store is supplied.
    storage_factory: ClassVar[type] = ListStorage

    def _init_facade(self, storage: Storage) -> None:
        self._store = storage
        #: Monotone counter bumped by every mutation, whatever its kind.
        self.epoch: int = 0
        self._facts: frozenset[str] = storage.load_facts()

    # -- storage access ------------------------------------------------------------

    def storage(self) -> Storage:
        return self._store

    @property
    def backend_capabilities(self) -> StorageCapabilities:
        return self._store.capabilities

    def flush(self) -> None:
        self._store.flush()

    def close(self) -> None:
        self._store.close()

    # -- the choke point -----------------------------------------------------------

    def _commit_mutation(self, kind: str, *, invalidated: int = 0) -> None:
        """Every mutation funnels through here: bump the epoch, count
        iterator invalidations, and run the mutation kind through the
        facts lattice so runtime facts die exactly when the abstract
        tables say they must."""
        self.epoch += 1
        if invalidated:
            self.invalidation_events += invalidated
        if self._facts:
            survived = _invalidate(self._facts, kind)
            if survived != self._facts:
                self._facts = survived
                self._store.sync_facts(survived)

    # -- runtime facts -------------------------------------------------------------

    @property
    def facts(self) -> frozenset[str]:
        """Properties currently known to hold (implication-closed)."""
        return self._facts

    def assert_fact(self, prop: str, *, check: bool = True) -> None:
        """Record that ``prop`` holds.  With ``check`` (the default) the
        registered validator must agree; algorithms that establish the
        property by construction pass ``check=False``."""
        name = str(prop)
        if check:
            validator = FACT_VALIDATORS.get(name)
            if validator is not None and not validator(self):
                raise ValueError(
                    f"assert_fact({name!r}): the container's contents do "
                    f"not satisfy the property"
                )
        self._facts = _closure(self._facts | {name})
        self._store.sync_facts(self._facts)

    def has_fact(self, prop: str) -> bool:
        """Does ``prop`` follow from the recorded facts under closure?"""
        return _holds(str(prop), self._facts)

    def drop_facts(self) -> None:
        """Forget all runtime facts (and any persisted copy)."""
        if self._facts:
            self._facts = frozenset()
            self._store.sync_facts(self._facts)
