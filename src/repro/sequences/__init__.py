"""STL-like sequence substrate: containers, value-semantic iterators with
tracked invalidation, and concept-overloaded generic algorithms.

On import this module *declares* which concepts the containers and iterators
model (the nominal side of the modeling relation) after structurally
verifying them — so a typo in a container's interface fails at import, at
the point of declaration, not deep inside an algorithm.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..concepts import models as _models
from ..concepts.builtins import (
    BackInsertionSequence,
    SortedRange,
    BidirectionalIterator,
    Container,
    ForwardContainer,
    ForwardIterator,
    FrontInsertionSequence,
    InputIterator,
    RandomAccessContainer,
    RandomAccessIterator,
    ReversibleContainer,
    Sequence,
    TrivialIterator,
)
from . import algorithms
from .deque import Deque, DequeIterator
from .dlist import DList, DListIterator
from .errors import (
    EmptyRangeError,
    IteratorRangeError,
    IteratorUsageError,
    PastTheEndError,
    SingularIteratorError,
)
from .function_objects import (
    Greater,
    IntransitiveOrder,
    Less,
    LessByKey,
    NotAStrictWeakOrder,
    equivalent,
)
from .heap import heapsort, is_heap, make_heap, pop_heap, push_heap, sort_heap
from .iterators import (
    IndexIterator,
    IteratorBase,
    NodeIterator,
    python_range,
    require_same_container,
)
from .storage import (
    SequenceFacade,
    Storage,
    StorageCapabilities,
    StorageError,
)
from .tree import SortedAssociativeContainer, TreeIterator, TreeMap
from .vector import Vector, VectorIterator

__all__ = [
    "Deque", "DequeIterator", "DList", "DListIterator",
    "Vector", "VectorIterator",
    "Storage", "StorageCapabilities", "StorageError", "SequenceFacade",
    "TreeMap", "TreeIterator", "SortedAssociativeContainer",
    "IteratorBase", "IndexIterator", "NodeIterator",
    "python_range", "require_same_container", "typed",
    "algorithms",
    "make_heap", "push_heap", "pop_heap", "sort_heap", "is_heap", "heapsort",
    "Less", "Greater", "LessByKey", "NotAStrictWeakOrder",
    "IntransitiveOrder", "equivalent",
    "IteratorUsageError", "SingularIteratorError", "PastTheEndError",
    "IteratorRangeError", "EmptyRangeError",
]

_TYPED_CACHE: dict[tuple[type, type], type] = {}


def typed(container_cls: type, value_type: type) -> type:
    """Create (and cache) a value-typed container class.

    Generic programming reasons about *types*; Python containers are
    heterogeneous.  ``typed(Vector, int)`` returns a ``Vector`` subclass
    whose ``value_type`` associated type is ``int`` (with a matching
    iterator subclass), so concept checks involving value types are exact::

        IntVector = typed(Vector, int)
        check_concept(RandomAccessContainer, IntVector).ok   # True
    """
    key = (container_cls, value_type)
    cached = _TYPED_CACHE.get(key)
    if cached is not None:
        return cached
    it_cls = type(
        f"{container_cls.__name__}Iterator_{value_type.__name__}",
        (container_cls.iterator,),
        {"value_type": value_type},
    )
    cls = type(
        f"{container_cls.__name__}_{value_type.__name__}",
        (container_cls,),
        {"value_type": value_type, "iterator": it_cls},
    )
    _TYPED_CACHE[key] = cls
    return cls


def _declare_all() -> None:
    """Verify-and-declare the concept models this substrate provides."""
    # Iterators.
    _models.declare(RandomAccessIterator, VectorIterator)
    _models.declare(RandomAccessIterator, DequeIterator)
    _models.declare(BidirectionalIterator, DListIterator)
    # Containers.
    _models.declare(RandomAccessContainer, Vector)
    _models.declare(Sequence, Vector)
    _models.declare(BackInsertionSequence, Vector)
    _models.declare(RandomAccessContainer, Deque)
    _models.declare(Sequence, Deque)
    _models.declare(BackInsertionSequence, Deque)
    _models.declare(FrontInsertionSequence, Deque)
    _models.declare(ReversibleContainer, DList)
    _models.declare(BidirectionalIterator, TreeIterator)
    _models.declare(ReversibleContainer, TreeMap)
    _models.declare(SortedAssociativeContainer, TreeMap)
    # TreeMap keeps its keys ordered by construction: it IS a sorted range,
    # declared nominally (SortedRange is a semantic-state concept).
    _models.declare(SortedRange, TreeMap)
    _models.declare(Sequence, DList)
    _models.declare(FrontInsertionSequence, DList)
    _models.declare(BackInsertionSequence, DList)


_declare_all()
