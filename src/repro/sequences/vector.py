"""A ``std::vector``-like container with C++ invalidation rules.

Invalidation rules (ISO C++ [vector.modifiers], which STLlint encodes as the
container's semantic specification):

- ``insert(pos, v)``: invalidates iterators at or after ``pos``; if the
  insertion exceeds capacity ("reallocation"), *all* iterators.
- ``erase(pos)``: invalidates iterators at or after ``pos`` — this is what
  breaks Fig. 4's ``extract_fails``.
- ``push_back(v)``: all iterators on reallocation, none otherwise.
- ``clear()``: everything.

Capacity doubles on growth, as real implementations do, so reallocation
events happen at realistic points.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .iterators import IndexIterator, IteratorRegistry


class VectorIterator(IndexIterator):
    """Random-access iterator over a :class:`Vector`."""

    value_type: type = object


class Vector:
    """Contiguous sequence; models Random Access Container and Back
    Insertion Sequence (verified in the test suite via ``check_concept``)."""

    value_type: type = object
    iterator: type = VectorIterator

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._data: list[Any] = list(items)
        self._capacity: int = max(len(self._data), 1)
        self._iterators = IteratorRegistry()
        #: Counters the invalidation tests and benches inspect.
        self.invalidation_events: int = 0
        self.reallocations: int = 0

    # -- internal plumbing used by IndexIterator -------------------------------

    def _register_iterator(self, it: VectorIterator) -> None:
        self._iterators.register(it)

    def _end_index(self) -> int:
        return len(self._data)

    def _get(self, index: int) -> Any:
        return self._data[index]

    def _set(self, index: int, value: Any) -> None:
        self._data[index] = value

    def _grow_for(self, extra: int) -> bool:
        """Ensure capacity; returns True when a reallocation happened."""
        needed = len(self._data) + extra
        if needed <= self._capacity:
            return False
        while self._capacity < needed:
            self._capacity *= 2
        self.reallocations += 1
        return True

    # -- Container interface ------------------------------------------------------

    def begin(self) -> VectorIterator:
        return self.iterator(self, 0)

    def end(self) -> VectorIterator:
        return self.iterator(self, len(self._data))

    def size(self) -> int:
        return len(self._data)

    def empty(self) -> bool:
        return not self._data

    def capacity(self) -> int:
        return self._capacity

    # -- Random Access Container ---------------------------------------------------

    def at(self, index: int) -> Any:
        if not 0 <= index < len(self._data):
            raise IndexError(f"vector index {index} out of range [0, {len(self._data)})")
        return self._data[index]

    def set_at(self, index: int, value: Any) -> None:
        if not 0 <= index < len(self._data):
            raise IndexError(f"vector index {index} out of range [0, {len(self._data)})")
        self._data[index] = value

    def __getitem__(self, index: int) -> Any:
        return self.at(index)

    def __setitem__(self, index: int, value: Any) -> None:
        self.set_at(index, value)

    # -- Sequence mutations ----------------------------------------------------------

    def push_back(self, value: Any) -> None:
        realloc = self._grow_for(1)
        self._data.append(value)
        if realloc:
            self.invalidation_events += self._iterators.invalidate_all()

    def pop_back(self) -> Any:
        if not self._data:
            raise IndexError("pop_back on empty vector")
        last = len(self._data) - 1
        self.invalidation_events += self._iterators.invalidate_if(
            lambda it: it.index >= last
        )
        return self._data.pop()

    def insert(self, pos: VectorIterator, value: Any) -> VectorIterator:
        """Insert before ``pos``; returns an iterator to the new element."""
        pos._require_valid()
        index = pos.index
        realloc = self._grow_for(1)
        self._data.insert(index, value)
        if realloc:
            self.invalidation_events += self._iterators.invalidate_all()
        else:
            self.invalidation_events += self._iterators.invalidate_if(
                lambda it: it.index >= index
            )
        return self.iterator(self, index)

    def erase(self, pos: VectorIterator) -> VectorIterator:
        """Erase at ``pos``; invalidates ``pos`` and everything after it,
        returning an iterator to the element following the erased one (the
        correct idiom Fig. 4's buggy code fails to use)."""
        pos._require_valid()
        index = pos.index
        if index >= len(self._data):
            raise IndexError("erase of past-the-end iterator")
        del self._data[index]
        self.invalidation_events += self._iterators.invalidate_if(
            lambda it: it.index >= index
        )
        return self.iterator(self, index)

    def clear(self) -> None:
        self._data.clear()
        self.invalidation_events += self._iterators.invalidate_all()

    # -- Python interop -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(list(self._data))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Vector):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:
        return f"Vector({self._data!r})"

    def to_list(self) -> list[Any]:
        return list(self._data)
