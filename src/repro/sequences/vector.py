"""A ``std::vector``-like container with C++ invalidation rules.

Invalidation rules (ISO C++ [vector.modifiers], which STLlint encodes as the
container's semantic specification):

- ``insert(pos, v)``: invalidates iterators at or after ``pos``; if the
  insertion exceeds capacity ("reallocation"), *all* iterators.
- ``erase(pos)``: invalidates iterators at or after ``pos`` — this is what
  breaks Fig. 4's ``extract_fails``.
- ``push_back(v)``: all iterators on reallocation, none otherwise.
- ``clear()``: everything.

Capacity doubles on growth, as real implementations do, so reallocation
events happen at realistic points.

Since the storage-backend split the class is a *façade*: elements live in
a pluggable :class:`~repro.sequences.storage.Storage` (a Python list by
default; ``array``/mmap and sqlite representations in
:mod:`repro.sequences.backends` plug in underneath without changing the
modeled concepts), and every mutation is routed through the shared
:class:`~repro.sequences.storage.SequenceFacade` choke point, which
keeps the mutation epoch and the runtime fact set honest.  The
invalidation rules above are a property of the *interface* and hold
uniformly across backends.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable, Optional

from .iterators import IndexIterator, IteratorRegistry
from .storage import ListStorage, SequenceFacade, Storage


class VectorIterator(IndexIterator):
    """Random-access iterator over a :class:`Vector`."""

    value_type: type = object


class Vector(SequenceFacade):
    """Contiguous sequence; models Random Access Container and Back
    Insertion Sequence (verified in the test suite via ``check_concept``)."""

    value_type: type = object
    iterator: type = VectorIterator
    storage_factory: ClassVar[type] = ListStorage

    def __init__(self, items: Iterable[Any] = (),
                 storage: Optional[Storage] = None) -> None:
        if storage is None:
            storage = self.storage_factory(items)
        else:
            for item in items:
                storage.append(item)
        self._init_facade(storage)
        self._capacity: int = max(storage.length(), 1)
        self._iterators = IteratorRegistry()
        #: Counters the invalidation tests and benches inspect.
        self.invalidation_events: int = 0
        self.reallocations: int = 0

    # -- internal plumbing used by IndexIterator -------------------------------

    def _register_iterator(self, it: VectorIterator) -> None:
        self._iterators.register(it)

    def _end_index(self) -> int:
        return self._store.length()

    def _get(self, index: int) -> Any:
        return self._store.get(index)

    def _set(self, index: int, value: Any) -> None:
        self._store.set(index, value)
        self._commit_mutation("write")

    def _grow_for(self, extra: int) -> bool:
        """Ensure capacity; returns True when a reallocation happened."""
        needed = self._store.length() + extra
        if needed <= self._capacity:
            return False
        while self._capacity < needed:
            self._capacity *= 2
        self.reallocations += 1
        return True

    # -- Container interface ------------------------------------------------------

    def begin(self) -> VectorIterator:
        return self.iterator(self, 0)

    def end(self) -> VectorIterator:
        return self.iterator(self, self._store.length())

    def size(self) -> int:
        return self._store.length()

    def empty(self) -> bool:
        return self._store.length() == 0

    def capacity(self) -> int:
        return self._capacity

    # -- Random Access Container ---------------------------------------------------

    def at(self, index: int) -> Any:
        if not 0 <= index < self._store.length():
            raise IndexError(
                f"vector index {index} out of range [0, {self._store.length()})"
            )
        return self._store.get(index)

    def set_at(self, index: int, value: Any) -> None:
        if not 0 <= index < self._store.length():
            raise IndexError(
                f"vector index {index} out of range [0, {self._store.length()})"
            )
        self._store.set(index, value)
        self._commit_mutation("write")

    def __getitem__(self, index: int) -> Any:
        return self.at(index)

    def __setitem__(self, index: int, value: Any) -> None:
        self.set_at(index, value)

    # -- Sequence mutations ----------------------------------------------------------

    def push_back(self, value: Any) -> None:
        realloc = self._grow_for(1)
        self._store.append(value)
        invalidated = self._iterators.invalidate_all() if realloc else 0
        self._commit_mutation("append", invalidated=invalidated)

    def pop_back(self) -> Any:
        if self._store.length() == 0:
            raise IndexError("pop_back on empty vector")
        last = self._store.length() - 1
        invalidated = self._iterators.invalidate_if(lambda it: it.index >= last)
        value = self._store.get(last)
        self._store.erase(last)
        self._commit_mutation("pop", invalidated=invalidated)
        return value

    def insert(self, pos: VectorIterator, value: Any) -> VectorIterator:
        """Insert before ``pos``; returns an iterator to the new element."""
        pos._require_valid()
        index = pos.index
        realloc = self._grow_for(1)
        self._store.insert(index, value)
        if realloc:
            invalidated = self._iterators.invalidate_all()
        else:
            invalidated = self._iterators.invalidate_if(
                lambda it: it.index >= index
            )
        self._commit_mutation("insert", invalidated=invalidated)
        return self.iterator(self, index)

    def erase(self, pos: VectorIterator) -> VectorIterator:
        """Erase at ``pos``; invalidates ``pos`` and everything after it,
        returning an iterator to the element following the erased one (the
        correct idiom Fig. 4's buggy code fails to use)."""
        pos._require_valid()
        index = pos.index
        if index >= self._store.length():
            raise IndexError("erase of past-the-end iterator")
        self._store.erase(index)
        invalidated = self._iterators.invalidate_if(lambda it: it.index >= index)
        self._commit_mutation("erase", invalidated=invalidated)
        return self.iterator(self, index)

    def clear(self) -> None:
        self._store.clear()
        self._commit_mutation("clear",
                              invalidated=self._iterators.invalidate_all())

    # -- Python interop -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._store.length()

    def __iter__(self):
        return iter(self.to_list())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Vector):
            return self.to_list() == other.to_list()
        return NotImplemented

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_list()!r})"

    def to_list(self) -> list[Any]:
        return self._store.slice(0, self._store.length())
