"""Lightweight container views.

:class:`ListView` adapts a plain Python list to the Container concept family
so other substrates (graph out-edge ranges, taxonomy listings) can hand out
iterator ranges without copying into a full :class:`Vector`.  Views are
immutable: they model Random Access Container but not Sequence.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence as PySequence

from .iterators import IndexIterator, IteratorRegistry


class ListViewIterator(IndexIterator):
    """Random-access iterator over a :class:`ListView`."""

    value_type: type = object


class ListView:
    """A read-only Random Access Container over an existing Python
    sequence.  Mutating the underlying sequence is the caller's affair; the
    view adds no invalidation tracking beyond existence."""

    value_type: type = object
    iterator: type = ListViewIterator

    def __init__(self, data: PySequence[Any]) -> None:
        self._data = data
        self._iterators = IteratorRegistry()

    def _register_iterator(self, it: ListViewIterator) -> None:
        self._iterators.register(it)

    def _end_index(self) -> int:
        return len(self._data)

    def _get(self, index: int) -> Any:
        return self._data[index]

    def _set(self, index: int, value: Any) -> None:
        raise TypeError("ListView is read-only")

    def begin(self) -> ListViewIterator:
        return self.iterator(self, 0)

    def end(self) -> ListViewIterator:
        return self.iterator(self, len(self._data))

    def size(self) -> int:
        return len(self._data)

    def empty(self) -> bool:
        return len(self._data) == 0

    def at(self, index: int) -> Any:
        if not 0 <= index < len(self._data):
            raise IndexError(f"view index {index} out of range")
        return self._data[index]

    def __getitem__(self, index: int) -> Any:
        return self.at(index)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __repr__(self) -> str:
        return f"ListView({list(self._data)!r})"


_VIEW_CACHE: dict[type, type] = {}


def view_of(value_type: type) -> type:
    """A ListView subclass whose ``value_type`` associated type is bound —
    what graph classes use to give their out-edge ranges an exact iterator
    value type (Fig. 2's ``out_edge_iterator::value_type == edge_type``)."""
    cached = _VIEW_CACHE.get(value_type)
    if cached is not None:
        return cached
    it_cls = type(
        f"ListViewIterator_{value_type.__name__}",
        (ListViewIterator,),
        {"value_type": value_type},
    )
    cls = type(
        f"ListView_{value_type.__name__}",
        (ListView,),
        {"value_type": value_type, "iterator": it_cls},
    )
    _VIEW_CACHE[value_type] = cls
    return cls
