"""The sequential algorithm concept taxonomy for STL-domain algorithms.

Section 1: "We began by developing sequential algorithm concept taxonomies
for two fundamental problem domains, sequence algorithms from the STL and
graph algorithms from BGL. ... making distinctions between some of the
algorithms in these domains requires more precision."

This module builds that taxonomy as data: every sequence algorithm in
:mod:`repro.sequences.algorithms` classified by problem, constrained by the
iterator/container concepts it requires, and annotated with the complexity
guarantees that *distinguish* refinements (find vs binary_search differ in
comparisons; sort vs stable_sort differ in a postcondition, not a bound).
"""

from __future__ import annotations

from typing import Optional

from ..concepts import AlgorithmConcept, Constraint, Param, Taxonomy
from ..concepts.builtins import (
    BidirectionalIterator,
    ContiguousContainer,
    ForwardIterator,
    InputIterator,
    PersistentContainer,
    RandomAccessContainer,
    RandomAccessIterator,
    Sequence,
    SortedRange,
)
from ..concepts.complexity import (
    constant,
    linear,
    linearithmic,
    logarithmic,
    quadratic,
)
from . import algorithms as A
from .backends.contiguous import ContiguousStorage
from .backends.sqlite_store import SqliteStorage
from .heap import heapsort
from .storage import (
    DequeStorage,
    LinkedStorage,
    ListStorage,
    StorageCapabilities,
)

It = Param("It")
C = Param("C")

#: STLlint container kinds mapped to the capability record of the storage
#: backing that kind — how a static annotation (``def f(s: "sqlite")``)
#: reaches the io/cpu-weighted selection path.
KIND_CAPABILITIES: dict[str, StorageCapabilities] = {
    "vector": ListStorage.capabilities,
    "deque": DequeStorage.capabilities,
    "list": LinkedStorage.capabilities,
    "contig": ContiguousStorage.capabilities,
    "sqlite": SqliteStorage.capabilities,
}


def kind_weights(kind: Optional[str],
                 cpu_resource: str = "comparisons") -> Optional[dict[str, float]]:
    """Resource weights for io/cpu-aware selection on a container kind:
    one unit per cpu operation, ``io_cost_per_op`` units per backend
    round trip.  Returns None for RAM-resident kinds (and unknown ones),
    which keeps their selection on the classic single-resource path."""
    caps = KIND_CAPABILITIES.get(kind or "")
    if caps is None or caps.io_cost_per_op <= 0:
        return None
    return {cpu_resource: 1.0, "io_ops": caps.io_cost_per_op}

#: Source-level call names (the STLlint subset / repro.sequences spelling)
#: mapped to the taxonomy concept analyzed for them — the bridge the
#: optimizer crosses from a call site to data-driven selection.
CALL_TO_CONCEPT: dict[str, str] = {
    "find": "find",
    "binary_search": "binary_search",
    "lower_bound": "lower_bound",
    "sort": "quicksort",
    "stable_sort": "stable merge sort",
    "max_element": "max_element",
    "min_element": "min_element",
    "accumulate": "accumulate",
    "count": "count",
    "indexed_find": "indexed lookup",
    "backend_sort": "backend sort",
}

#: ...and back: the call name that realizes a taxonomy concept in source.
CONCEPT_TO_CALL: dict[str, str] = {v: k for k, v in CALL_TO_CONCEPT.items()}


def stl_taxonomy() -> Taxonomy:
    """Build the STL-domain taxonomy (fresh instance; cheap)."""
    t = Taxonomy("STL sequence algorithms")
    t.add_concepts([
        InputIterator, ForwardIterator, BidirectionalIterator,
        RandomAccessIterator, Sequence, RandomAccessContainer,
        ContiguousContainer, PersistentContainer, SortedRange,
    ])

    # -- search problem -----------------------------------------------------
    # The second cost dimension: "io_ops" counts round trips to the
    # backing store (every deref/compare on a remote representation is
    # one), priced against cpu operations by kind_weights().
    find = t.add_algorithm(AlgorithmConcept(
        "find", problem="search",
        requires=(Constraint(InputIterator, (It,)),),
        guarantees={"comparisons": linear(), "traversals": linear(),
                    "io_ops": linear()},
        implementation=A.find,
        result="position",
        doc="Linear search; the least-demanding search algorithm.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "binary_search", problem="search",
        requires=(Constraint(ForwardIterator, (It,)),
                  Constraint(SortedRange, (C,))),
        guarantees={"comparisons": logarithmic(), "io_ops": logarithmic()},
        refines=(find,),
        implementation=A.binary_search,
        requires_properties=("sorted",),
        result="bool",
        doc="Refines find: stronger precondition (sortedness) buys "
            "logarithmic comparisons.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "lower_bound", problem="search",
        requires=(Constraint(ForwardIterator, (It,)),
                  Constraint(SortedRange, (C,))),
        guarantees={"comparisons": logarithmic(), "io_ops": logarithmic()},
        implementation=A.lower_bound,
        requires_properties=("sorted",),
        result="position",
        doc="Position query on sorted ranges.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "indexed lookup", problem="search",
        requires=(Constraint(PersistentContainer, (C,)),
                  Constraint(SortedRange, (C,))),
        guarantees={"comparisons": logarithmic(), "io_ops": constant()},
        refines=(find,),
        implementation=A.indexed_find,
        requires_properties=("sorted",),
        requires_capabilities=("persistent",),
        result="position",
        doc="Search through the backend's value index: the comparisons "
            "happen inside the store, so the caller pays O(1) round "
            "trips — cheaper than lower_bound's O(log n) trips exactly "
            "when io dominates, which is what the weighted selection "
            "expresses.",
    ))

    # -- extremum problem ------------------------------------------------------
    t.add_algorithm(AlgorithmConcept(
        "max_element", problem="extremum",
        requires=(Constraint(ForwardIterator, (It,)),),
        guarantees={"comparisons": linear()},
        implementation=A.max_element,
        result="position",
        doc="Requires Forward (multipass), not just Input — the Section "
            "3.1 distinction.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "min_element", problem="extremum",
        requires=(Constraint(ForwardIterator, (It,)),),
        guarantees={"comparisons": linear()},
        implementation=A.min_element,
        result="position",
    ))

    # -- accumulation -----------------------------------------------------------
    t.add_algorithm(AlgorithmConcept(
        "accumulate", problem="accumulation",
        requires=(Constraint(InputIterator, (It,)),),
        guarantees={"operations": linear()},
        implementation=A.accumulate,
        result="value",
    ))
    t.add_algorithm(AlgorithmConcept(
        "count", problem="accumulation",
        requires=(Constraint(InputIterator, (It,)),),
        guarantees={"comparisons": linear()},
        implementation=A.count,
        result="value",
    ))

    # -- sorting: where precision beyond O-bounds earns its keep ----------------
    sort_seq = t.add_algorithm(AlgorithmConcept(
        "merge sort", problem="sorting",
        requires=(Constraint(Sequence, (C,)),),
        guarantees={"comparisons": linearithmic(), "extra space": linear(),
                    "io_ops": linear()},
        implementation=A.stable_sort,
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        doc="The linear-access default; pays O(n) scratch space.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "quicksort", problem="sorting",
        requires=(Constraint(RandomAccessContainer, (C,)),),
        guarantees={"comparisons": linearithmic(),
                    "extra space": logarithmic(),
                    "io_ops": linearithmic()},
        implementation=lambda c: A.sort(c),
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        doc="Same comparison bound as merge sort; distinguished by the "
            "extra-space guarantee — the 'more precision' the paper wants.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "backend sort", problem="sorting",
        requires=(Constraint(PersistentContainer, (C,)),),
        guarantees={"comparisons": linearithmic(),
                    "extra space": linear(),
                    "io_ops": constant()},
        implementation=A.backend_sort,
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        requires_capabilities=("persistent",),
        doc="Delegate the whole reorder to the backing store (one ORDER "
            "BY renumbering): same comparison bound, O(1) round trips "
            "where element-swapping sorts pay a trip per access.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "stable merge sort", problem="sorting",
        requires=(Constraint(Sequence, (C,)),),
        guarantees={"comparisons": linearithmic(), "extra space": linear()},
        refines=(sort_seq,),
        implementation=A.stable_sort,
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        doc="Refines merge sort with a stability postcondition at the same "
            "bounds.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "heapsort", problem="sorting",
        requires=(Constraint(RandomAccessContainer, (C,)),),
        guarantees={"comparisons": linearithmic(), "extra space": constant(),
                    "io_ops": linearithmic()},
        implementation=heapsort,
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        doc="In-place O(1)-space O(n log n) — but not stable; the sorting "
            "design space's third corner.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "insertion sort", problem="sorting",
        requires=(Constraint(BidirectionalIterator, (It,)),),
        guarantees={"comparisons": quadratic(), "extra space": constant(),
                    "io_ops": quadratic()},
        implementation=A.insertion_sort_range,
        establishes=("sorted",),
        destroys=("heap", "heap-except-last"),
        doc="O(1) space, O(n^2) comparisons: the honest in-place "
            "linear-access option.",
    ))

    # -- a deliberate gap: in-place stable O(n log n) sort with O(1) space ------
    t.add_algorithm(AlgorithmConcept(
        "in-place stable sort", problem="sorting",
        requires=(Constraint(RandomAccessContainer, (C,)),),
        guarantees={"comparisons": linearithmic(), "extra space": constant()},
        implementation=None,
        doc="Block-merge sorts exist but none is implemented here — a "
            "taxonomy 'gap' entry of the kind that 'helps in the design of "
            "new ones'.",
    ))
    return t
