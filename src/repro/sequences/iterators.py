"""Value-semantic iterators with tracked validity.

The STL's iterator model — and the invalidation semantics STLlint checks —
requires copyable positional iterators whose validity is a *state*: "iterator
invalidation occurs when an operation alters a data structure such that
iterators referring to elements of that data structure can no longer be used
safely" (Section 3.1).  Containers in this package keep a registry of live
iterators and mark them singular according to each container's documented
rules, so misuse raises immediately instead of corrupting memory.

The iterator interface is the one the concepts in
:mod:`repro.concepts.builtins` require:

- ``deref()`` / ``set(v)``    read/write the referenced element
- ``increment()`` / ``decrement()``   step in place
- ``clone()``                 independent copy (Forward Iterator's multipass)
- ``equals(other)``           position equality
- ``advance(n)`` / ``distance(other)`` / ``less(other)``   random access
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Iterator as PyIterator, Optional

from .errors import (
    IteratorRangeError,
    PastTheEndError,
    SingularIteratorError,
)


class IteratorBase:
    """Shared plumbing: validity flag, container backref, Python interop."""

    value_type: type = object

    def __init__(self, container: Any) -> None:
        self._container = container
        self._valid = True
        container._register_iterator(self)

    # -- validity ------------------------------------------------------------

    @property
    def container(self) -> Any:
        return self._container

    def is_valid(self) -> bool:
        return self._valid

    def _invalidate(self) -> None:
        self._valid = False

    def _require_valid(self) -> None:
        if not self._valid:
            raise SingularIteratorError(
                "attempt to use a singular (invalidated) iterator"
            )

    # -- Python interop --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IteratorBase):
            return NotImplemented
        return self.equals(other)

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self) -> int:
        # Iterators are mutable positions; identity hash keeps them usable
        # in the container's weak registry without touching position state.
        return id(self)

    def equals(self, other: "IteratorBase") -> bool:  # pragma: no cover
        raise NotImplementedError

    def deref(self) -> Any:  # pragma: no cover
        raise NotImplementedError

    def increment(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def clone(self) -> "IteratorBase":  # pragma: no cover
        raise NotImplementedError


class RandomAccessMixin:
    """Random-access operations implemented over an integer index."""

    _index: int

    def advance(self, n: int) -> None:
        self._require_valid()  # type: ignore[attr-defined]
        new = self._index + n
        if new < 0 or new > self._container._end_index():  # type: ignore[attr-defined]
            raise PastTheEndError(
                f"advance({n}) moves iterator outside [begin, end]"
            )
        self._index = new

    def distance(self, other: "RandomAccessMixin") -> int:
        self._require_valid()  # type: ignore[attr-defined]
        other._require_valid()  # type: ignore[attr-defined]
        if self._container is not other._container:  # type: ignore[attr-defined]
            raise IteratorRangeError("distance between different containers")
        return other._index - self._index

    def less(self, other: "RandomAccessMixin") -> bool:
        self._require_valid()  # type: ignore[attr-defined]
        other._require_valid()  # type: ignore[attr-defined]
        if self._container is not other._container:  # type: ignore[attr-defined]
            raise IteratorRangeError("comparing iterators of different containers")
        return self._index < other._index


class IndexIterator(RandomAccessMixin, IteratorBase):
    """Random-access iterator over an index-addressable container
    (:class:`~repro.sequences.vector.Vector`,
    :class:`~repro.sequences.deque.Deque`)."""

    def __init__(self, container: Any, index: int) -> None:
        self._index = index
        super().__init__(container)

    # -- core interface ---------------------------------------------------------

    def deref(self) -> Any:
        self._require_valid()
        if self._index >= self._container._end_index():
            raise PastTheEndError("attempt to dereference a past-the-end iterator")
        return self._container._get(self._index)

    def set(self, value: Any) -> None:
        self._require_valid()
        if self._index >= self._container._end_index():
            raise PastTheEndError("attempt to write through a past-the-end iterator")
        self._container._set(self._index, value)

    def increment(self) -> None:
        self._require_valid()
        if self._index >= self._container._end_index():
            raise PastTheEndError("attempt to increment a past-the-end iterator")
        self._index += 1

    def decrement(self) -> None:
        self._require_valid()
        if self._index <= 0:
            raise PastTheEndError("attempt to decrement the begin iterator")
        self._index -= 1

    def clone(self) -> "IndexIterator":
        self._require_valid()
        return type(self)(self._container, self._index)

    def equals(self, other: IteratorBase) -> bool:
        self._require_valid()
        if not isinstance(other, IndexIterator):
            return False
        other._require_valid()
        return self._container is other._container and self._index == other._index

    @property
    def index(self) -> int:
        return self._index

    def __repr__(self) -> str:
        state = "" if self._valid else " SINGULAR"
        return f"<{type(self).__name__} @{self._index}{state}>"


class NodeIterator(IteratorBase):
    """Bidirectional iterator over a linked structure
    (:class:`~repro.sequences.dlist.DList`).  Points at a node; the
    container's sentinel node is the past-the-end position."""

    def __init__(self, container: Any, node: Any) -> None:
        self._node = node
        super().__init__(container)

    def deref(self) -> Any:
        self._require_valid()
        if self._node is self._container._sentinel:
            raise PastTheEndError("attempt to dereference a past-the-end iterator")
        return self._node.value

    def set(self, value: Any) -> None:
        self._require_valid()
        if self._node is self._container._sentinel:
            raise PastTheEndError("attempt to write through a past-the-end iterator")
        self._node.value = value

    def increment(self) -> None:
        self._require_valid()
        if self._node is self._container._sentinel:
            raise PastTheEndError("attempt to increment a past-the-end iterator")
        self._node = self._node.next

    def decrement(self) -> None:
        self._require_valid()
        if self._node is self._container._sentinel.next:
            raise PastTheEndError("attempt to decrement the begin iterator")
        self._node = self._node.prev

    def clone(self) -> "NodeIterator":
        self._require_valid()
        return type(self)(self._container, self._node)

    def equals(self, other: IteratorBase) -> bool:
        self._require_valid()
        if not isinstance(other, NodeIterator):
            return False
        other._require_valid()
        return self._node is other._node

    @property
    def node(self) -> Any:
        return self._node

    def __repr__(self) -> str:
        state = "" if self._valid else " SINGULAR"
        at = "end" if self._valid and self._node is self._container._sentinel else "node"
        return f"<{type(self).__name__} @{at}{state}>"


class IteratorRegistry:
    """Weak registry of live iterators, used by containers to apply their
    invalidation rules on mutation."""

    def __init__(self) -> None:
        self._iterators: "weakref.WeakSet[IteratorBase]" = weakref.WeakSet()

    def register(self, it: IteratorBase) -> None:
        self._iterators.add(it)

    def live(self) -> list[IteratorBase]:
        return [it for it in self._iterators if it.is_valid()]

    def invalidate_all(self) -> int:
        n = 0
        for it in self.live():
            it._invalidate()
            n += 1
        return n

    def invalidate_if(self, predicate) -> int:
        n = 0
        for it in self.live():
            if predicate(it):
                it._invalidate()
                n += 1
        return n


def require_same_container(first: IteratorBase, last: IteratorBase) -> None:
    if first.container is not last.container:
        raise IteratorRangeError(
            "[first, last) spans two different containers"
        )


def python_range(first: IteratorBase, last: IteratorBase) -> PyIterator[Any]:
    """Adapt an iterator range to a Python generator (read-only)."""
    require_same_container(first, last)
    it = first.clone()
    while not it.equals(last):
        yield it.deref()
        it.increment()
