"""Function objects (comparators, predicates) used by the generic
algorithms, including deliberately *broken* ones the semantic-checking tests
use as counterexamples to the Strict Weak Order axioms of Fig. 6."""

from __future__ import annotations

from typing import Any, Callable


class Less:
    """The default comparator: ``operator<``."""

    def __call__(self, a: Any, b: Any) -> bool:
        return a < b

    def __repr__(self) -> str:
        return "Less()"


class Greater:
    def __call__(self, a: Any, b: Any) -> bool:
        return b < a

    def __repr__(self) -> str:
        return "Greater()"


class LessByKey:
    """Compare by a key function, like ``sorted(key=...)``."""

    def __init__(self, key: Callable[[Any], Any]) -> None:
        self.key = key

    def __call__(self, a: Any, b: Any) -> bool:
        return self.key(a) < self.key(b)


class NotAStrictWeakOrder:
    """``<=`` pretending to be ``<``: violates irreflexivity, the classic
    comparator bug Fig. 6's axioms exist to catch."""

    def __call__(self, a: Any, b: Any) -> bool:
        return a <= b

    def __repr__(self) -> str:
        return "NotAStrictWeakOrder()"


class IntransitiveOrder:
    """Rock-paper-scissors on residues mod 3: irreflexive but not
    transitive; another Fig. 6 counterexample."""

    def __call__(self, a: int, b: int) -> bool:
        return (int(a) - int(b)) % 3 == 2

    def __repr__(self) -> str:
        return "IntransitiveOrder()"


def equivalent(less: Callable[[Any, Any], bool], a: Any, b: Any) -> bool:
    """The equivalence E induced by a strict weak order:
    ``E(a, b) := not (a < b) and not (b < a)`` (Fig. 6)."""
    return (not less(a, b)) and (not less(b, a))
