"""Runtime errors for iterator misuse.

In C++ these situations are undefined behaviour that STLlint exists to catch
*statically*; our substrate also detects them *dynamically*, so tests can
confirm that every program STLlint flags really does misbehave, and every
clean program runs without incident.
"""

from __future__ import annotations


class IteratorUsageError(Exception):
    """Base class for dynamic iterator-misuse detection."""


class SingularIteratorError(IteratorUsageError):
    """Dereference/advance of an invalidated ("singular") iterator — the
    runtime shadow of Fig. 4's STLlint warning."""


class PastTheEndError(IteratorUsageError):
    """Dereference of a past-the-end iterator, or advancing beyond it."""


class IteratorRangeError(IteratorUsageError):
    """A [first, last) pair that does not denote a valid range (different
    containers, first after last, ...)."""


class EmptyRangeError(IteratorUsageError):
    """An algorithm requiring a non-empty range received an empty one
    (e.g. max_element's precondition)."""
