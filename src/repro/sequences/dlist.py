"""A ``std::list``-like doubly linked list.

Invalidation rules (ISO C++ [list.modifiers]): ``insert`` invalidates
nothing; ``erase`` invalidates only iterators to the erased element.  This
asymmetry with :class:`~repro.sequences.vector.Vector` is exactly why the
invalidation behaviour "varies greatly across domains" yet "the semantic
iterator concept — including requirements pertaining to invalidation —
cross-cuts various domains" (Section 3.1): one concept, per-model rules.
"""

from __future__ import annotations

from typing import Any, Iterable

from .iterators import IteratorRegistry, NodeIterator


class _Node:
    __slots__ = ("value", "prev", "next")

    def __init__(self, value: Any = None) -> None:
        self.value = value
        self.prev: "_Node" = self
        self.next: "_Node" = self


class DListIterator(NodeIterator):
    """Bidirectional iterator over a :class:`DList`."""

    value_type: type = object


class DList:
    """Doubly linked list; models Reversible Container, Front and Back
    Insertion Sequence — but *not* Random Access Container, which is what
    steers concept-overloaded ``sort`` away from quicksort for lists."""

    value_type: type = object
    iterator: type = DListIterator

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._sentinel = _Node()
        self._size = 0
        self._iterators = IteratorRegistry()
        self.invalidation_events = 0
        for item in items:
            self.push_back(item)

    # -- internal plumbing -------------------------------------------------------

    def _register_iterator(self, it: DListIterator) -> None:
        self._iterators.register(it)

    def _link_before(self, node: _Node, new: _Node) -> None:
        new.prev = node.prev
        new.next = node
        node.prev.next = new
        node.prev = new
        self._size += 1

    def _unlink(self, node: _Node) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev
        self._size -= 1

    # -- Container interface ---------------------------------------------------------

    def begin(self) -> DListIterator:
        return self.iterator(self, self._sentinel.next)

    def end(self) -> DListIterator:
        return self.iterator(self, self._sentinel)

    def size(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    # -- Sequence mutations --------------------------------------------------------------

    def push_back(self, value: Any) -> None:
        self._link_before(self._sentinel, _Node(value))

    def push_front(self, value: Any) -> None:
        self._link_before(self._sentinel.next, _Node(value))

    def pop_front(self) -> Any:
        if self._size == 0:
            raise IndexError("pop_front on empty list")
        node = self._sentinel.next
        value = node.value
        self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._unlink(node)
        return value

    def pop_back(self) -> Any:
        if self._size == 0:
            raise IndexError("pop_back on empty list")
        node = self._sentinel.prev
        value = node.value
        self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._unlink(node)
        return value

    def insert(self, pos: DListIterator, value: Any) -> DListIterator:
        """Insert before ``pos``; invalidates nothing."""
        pos._require_valid()
        new = _Node(value)
        self._link_before(pos.node, new)
        return self.iterator(self, new)

    def erase(self, pos: DListIterator) -> DListIterator:
        """Erase at ``pos``; invalidates only iterators to that element and
        returns an iterator to the following element."""
        pos._require_valid()
        node = pos.node
        if node is self._sentinel:
            raise IndexError("erase of past-the-end iterator")
        after = node.next
        self.invalidation_events += self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._unlink(node)
        return self.iterator(self, after)

    def splice(self, pos: DListIterator, other: "DList") -> None:
        """Move all of ``other``'s nodes before ``pos`` in O(1); no element
        iterators are invalidated (they keep pointing at the moved nodes,
        which now belong to ``self``)."""
        pos._require_valid()
        if other is self or other.empty():
            return
        first, last = other._sentinel.next, other._sentinel.prev
        other._sentinel.next = other._sentinel
        other._sentinel.prev = other._sentinel
        moved = other._size
        other._size = 0
        at = pos.node
        first.prev = at.prev
        at.prev.next = first
        last.next = at
        at.prev = last
        self._size += moved
        # Iterators into `other` now belong to `self`'s node graph; re-home
        # the live ones so same-container range checks keep working.
        for it in other._iterators.live():
            if isinstance(it, NodeIterator) and it.node is not other._sentinel:
                it._container = self
                self._iterators.register(it)

    def clear(self) -> None:
        self.invalidation_events += self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is not self._sentinel
        )
        self._sentinel.next = self._sentinel
        self._sentinel.prev = self._sentinel
        self._size = 0

    # -- Python interop --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        node = self._sentinel.next
        while node is not self._sentinel:
            yield node.value
            node = node.next

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DList):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"DList({list(self)!r})"

    def to_list(self) -> list[Any]:
        return list(self)
