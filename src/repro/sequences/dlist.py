"""A ``std::list``-like doubly linked list.

Invalidation rules (ISO C++ [list.modifiers]): ``insert`` invalidates
nothing; ``erase`` invalidates only iterators to the erased element.  This
asymmetry with :class:`~repro.sequences.vector.Vector` is exactly why the
invalidation behaviour "varies greatly across domains" yet "the semantic
iterator concept — including requirements pertaining to invalidation —
cross-cuts various domains" (Section 3.1): one concept, per-model rules.

The class is a façade over :class:`~repro.sequences.storage.LinkedStorage`;
the node graph lives in the store, and every mutation — including the
push/pop paths that (correctly) invalidate no iterators — goes through the
shared choke point so runtime facts are invalidated and the mutation epoch
bumps even when no iterator dies.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable, Optional

from .iterators import IteratorRegistry, NodeIterator
from .storage import LinkedStorage, SequenceFacade, _LinkNode

#: Retained name: the node type now lives in the storage layer.
_Node = _LinkNode


class DListIterator(NodeIterator):
    """Bidirectional iterator over a :class:`DList`."""

    value_type: type = object


class DList(SequenceFacade):
    """Doubly linked list; models Reversible Container, Front and Back
    Insertion Sequence — but *not* Random Access Container, which is what
    steers concept-overloaded ``sort`` away from quicksort for lists."""

    value_type: type = object
    iterator: type = DListIterator
    storage_factory: ClassVar[type] = LinkedStorage

    def __init__(self, items: Iterable[Any] = (),
                 storage: Optional[LinkedStorage] = None) -> None:
        if storage is None:
            storage = self.storage_factory()
        self._init_facade(storage)
        self._iterators = IteratorRegistry()
        self.invalidation_events = 0
        for item in items:
            self.push_back(item)

    # -- internal plumbing -------------------------------------------------------

    @property
    def _sentinel(self) -> _Node:
        return self._store.sentinel

    def _register_iterator(self, it: DListIterator) -> None:
        self._iterators.register(it)

    def _link_before(self, node: _Node, new: _Node) -> None:
        self._store.link_before(node, new)

    def _unlink(self, node: _Node) -> None:
        self._store.unlink(node)

    # -- Container interface ---------------------------------------------------------

    def begin(self) -> DListIterator:
        return self.iterator(self, self._sentinel.next)

    def end(self) -> DListIterator:
        return self.iterator(self, self._sentinel)

    def size(self) -> int:
        return self._store.length()

    def empty(self) -> bool:
        return self._store.length() == 0

    # -- Sequence mutations --------------------------------------------------------------

    def push_back(self, value: Any) -> None:
        self._store.link_before(self._sentinel, _Node(value))
        self._commit_mutation("append")

    def push_front(self, value: Any) -> None:
        self._store.link_before(self._sentinel.next, _Node(value))
        self._commit_mutation("append")

    def pop_front(self) -> Any:
        if self._store.length() == 0:
            raise IndexError("pop_front on empty list")
        node = self._sentinel.next
        value = node.value
        self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._store.unlink(node)
        self._commit_mutation("pop")
        return value

    def pop_back(self) -> Any:
        if self._store.length() == 0:
            raise IndexError("pop_back on empty list")
        node = self._sentinel.prev
        value = node.value
        self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._store.unlink(node)
        self._commit_mutation("pop")
        return value

    def insert(self, pos: DListIterator, value: Any) -> DListIterator:
        """Insert before ``pos``; invalidates nothing."""
        pos._require_valid()
        new = _Node(value)
        self._store.link_before(pos.node, new)
        self._commit_mutation("insert")
        return self.iterator(self, new)

    def erase(self, pos: DListIterator) -> DListIterator:
        """Erase at ``pos``; invalidates only iterators to that element and
        returns an iterator to the following element."""
        pos._require_valid()
        node = pos.node
        if node is self._sentinel:
            raise IndexError("erase of past-the-end iterator")
        after = node.next
        invalidated = self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is node
        )
        self._store.unlink(node)
        self._commit_mutation("erase", invalidated=invalidated)
        return self.iterator(self, after)

    def splice(self, pos: DListIterator, other: "DList") -> None:
        """Move all of ``other``'s nodes before ``pos`` in O(1); no element
        iterators are invalidated (they keep pointing at the moved nodes,
        which now belong to ``self``)."""
        pos._require_valid()
        if other is self or other.empty():
            return
        first, last = other._sentinel.next, other._sentinel.prev
        other._store.sentinel.next = other._store.sentinel
        other._store.sentinel.prev = other._store.sentinel
        moved = other._store._size
        other._store._size = 0
        at = pos.node
        first.prev = at.prev
        at.prev.next = first
        last.next = at
        at.prev = last
        self._store._size += moved
        # Iterators into `other` now belong to `self`'s node graph; re-home
        # the live ones so same-container range checks keep working.
        for it in other._iterators.live():
            if isinstance(it, NodeIterator) and it.node is not other._sentinel:
                it._container = self
                self._iterators.register(it)
        self._commit_mutation("insert")
        other._commit_mutation("clear")

    def clear(self) -> None:
        invalidated = self._iterators.invalidate_if(
            lambda it: isinstance(it, NodeIterator) and it.node is not self._sentinel
        )
        self._store.clear()
        self._commit_mutation("clear", invalidated=invalidated)

    # -- Python interop --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._store.length()

    def __iter__(self):
        node = self._sentinel.next
        while node is not self._sentinel:
            yield node.value
            node = node.next

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DList):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"DList({list(self)!r})"

    def to_list(self) -> list[Any]:
        return list(self)
