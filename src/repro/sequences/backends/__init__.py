"""Alternative storage backends behind the same container concepts.

Each backend is one module exporting a :class:`~repro.sequences.storage.
Storage` implementation plus a façade class that models exactly the same
container/iterator concepts as the in-memory containers — the point of
the storage-backend split is that ``check_concept`` and concept-overloaded
algorithms cannot tell the representations apart, while capability-aware
selection can:

- :mod:`.contiguous` — ``array``/mmap-backed contiguous store
  (:class:`~repro.sequences.backends.contiguous.ContiguousVector`).
- :mod:`.sqlite_store` — sqlite-backed persistent sequence
  (:class:`~repro.sequences.backends.sqlite_store.SqliteSequence`) with
  durable facts and an indexed lookup path.
"""

from __future__ import annotations

from .contiguous import ContiguousStorage, ContiguousVector
from .sqlite_store import SqliteSequence, SqliteStorage

__all__ = [
    "ContiguousStorage", "ContiguousVector",
    "SqliteStorage", "SqliteSequence",
]
