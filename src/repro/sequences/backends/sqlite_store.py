"""A sqlite-backed persistent sequence backend.

The representation behind the Persistent Container concept: elements live
in a sqlite table keyed by dense position, with a value index that gives
the backend an O(log n), single-round-trip lookup path — the concrete
payoff the io/cpu cost split in the taxonomy routes ``find`` to when the
sequence is sorted.

Durability covers *facts* as well as elements: the façade's runtime fact
set (``sorted`` et al.) is stored in a side table by ``sync_facts`` and
reloaded on reopen, where cheaply checkable facts are **revalidated**
against the data before being believed — a stale ``sorted`` fact on a
file someone else mutated is dropped, not trusted.

A corrupt or unreadable file degrades to :class:`~repro.sequences.
storage.StorageError`, and the module's tiny CLI turns that into the
repo-wide exit-code contract (0 clean / 2 usage / 3 cannot open) instead
of a traceback::

    python -m repro.sequences.backends.sqlite_store data.db
"""

from __future__ import annotations

import sqlite3
import sys
from typing import Any, ClassVar, Iterable, Optional

from ...concepts import models as _models
from ...concepts.builtins import (
    BackInsertionSequence,
    PersistentContainer,
    RandomAccessContainer,
    Sequence,
)
from ...concepts.complexity import logarithmic
from ..storage import Storage, StorageCapabilities, StorageError
from ..vector import Vector, VectorIterator

#: Value types sqlite can store natively; anything else is rejected up
#: front so the failure mode is a StorageError, not a late adapter error.
_STORABLE = (type(None), int, float, str, bytes)


class SqliteStorage(Storage):
    """Elements in a sqlite table ``seq(pos INTEGER PRIMARY KEY, value)``
    plus a ``facts(name TEXT PRIMARY KEY)`` side table.

    Every operation is one or a few SQL round trips (counted in
    :attr:`roundtrips`, which the backend tests and bench use to verify
    that the indexed path really does O(1) trips where a scan does n).
    """

    capabilities = StorageCapabilities(
        name="sqlite", contiguous=False, persistent=True,
        random_access=logarithmic(), io_cost_per_op=8.0,
    )

    def __init__(self, items: Iterable[Any] = (), *,
                 path: str = ":memory:") -> None:
        self._path = path
        self._closed = False
        #: SQL round trips performed, for io-cost assertions.
        self.roundtrips = 0
        try:
            self._conn = sqlite3.connect(path)
            # quick_check walks the file's btrees, so a truncated or
            # scribbled-on database fails here, at open, with one clean
            # error instead of arbitrarily later.
            status = self._conn.execute("PRAGMA quick_check").fetchone()
            if status is None or status[0] != "ok":
                raise StorageError(
                    f"sqlite store {path!r} failed integrity check: "
                    f"{status[0] if status else 'no result'}"
                )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS seq "
                "(pos INTEGER PRIMARY KEY, value)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS seq_value ON seq(value)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS facts (name TEXT PRIMARY KEY)"
            )
            self._len = self._conn.execute(
                "SELECT COUNT(*) FROM seq"
            ).fetchone()[0]
        except sqlite3.Error as exc:
            raise StorageError(
                f"cannot open sqlite store {path!r}: {exc}"
            ) from exc
        for item in items:
            self.append(item)

    # -- plumbing -----------------------------------------------------------------

    def _execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        if self._closed:
            raise StorageError(f"sqlite store {self._path!r} is closed")
        self.roundtrips += 1
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StorageError(
                f"sqlite store {self._path!r}: {exc}"
            ) from exc

    @staticmethod
    def _check_storable(value: Any) -> Any:
        if not isinstance(value, _STORABLE):
            raise StorageError(
                f"value of type {type(value).__name__} is not storable "
                f"in a sqlite-backed sequence (use int/float/str/bytes)"
            )
        return value

    # -- index protocol -----------------------------------------------------------

    def length(self) -> int:
        return self._len

    def get(self, index: int) -> Any:
        row = self._execute(
            "SELECT value FROM seq WHERE pos = ?", (index,)
        ).fetchone()
        if row is None:
            raise IndexError(f"sqlite store position {index} out of range")
        return row[0]

    def set(self, index: int, value: Any) -> None:
        self._execute("UPDATE seq SET value = ? WHERE pos = ?",
                      (self._check_storable(value), index))

    def insert(self, index: int, value: Any) -> None:
        # Renumber [index, …) up by one with the negate-then-flip idiom so
        # the dense primary key never collides mid-update.
        self._check_storable(value)
        self._execute("UPDATE seq SET pos = -(pos + 1) WHERE pos >= ?",
                      (index,))
        self._execute("UPDATE seq SET pos = -pos WHERE pos < 0")
        self._execute("INSERT INTO seq (pos, value) VALUES (?, ?)",
                      (index, value))
        self._len += 1

    def erase(self, index: int) -> None:
        self._execute("DELETE FROM seq WHERE pos = ?", (index,))
        self._execute("UPDATE seq SET pos = -(pos - 1) WHERE pos > ?",
                      (index,))
        self._execute("UPDATE seq SET pos = -pos WHERE pos < 0")
        self._len -= 1

    def append(self, value: Any) -> None:
        self._execute("INSERT INTO seq (pos, value) VALUES (?, ?)",
                      (self._len, self._check_storable(value)))
        self._len += 1

    def slice(self, start: int, stop: int) -> list[Any]:
        rows = self._execute(
            "SELECT value FROM seq WHERE pos >= ? AND pos < ? ORDER BY pos",
            (start, stop),
        ).fetchall()
        return [r[0] for r in rows]

    def clear(self) -> None:
        self._execute("DELETE FROM seq")
        self._len = 0

    # -- the indexed paths the io-aware taxonomy routes to ------------------------

    def index_lookup(self, value: Any, lo: int = 0,
                     hi: Optional[int] = None) -> Optional[int]:
        """Position of the first element equal to ``value`` in
        ``[lo, hi)`` via the value index — one O(log n) round trip, no
        scan.  ``MIN(pos)`` makes the answer the first occurrence in
        iteration order regardless of duplicates."""
        sql = "SELECT MIN(pos) FROM seq WHERE value = ? AND pos >= ?"
        params: tuple[Any, ...] = (self._check_storable(value), lo)
        if hi is not None:
            sql += " AND pos < ?"
            params += (hi,)
        row = self._execute(sql, params).fetchone()
        return None if row is None or row[0] is None else row[0]

    def backend_sort(self) -> None:
        """Reorder the whole sequence inside the database: one window-
        function renumbering instead of n log n round-tripping element
        swaps."""
        self._execute(
            "CREATE TEMP TABLE _order AS SELECT pos, "
            "ROW_NUMBER() OVER (ORDER BY value, pos) - 1 AS newpos FROM seq"
        )
        self._execute(
            "UPDATE seq SET pos = -(SELECT newpos FROM _order "
            "WHERE _order.pos = seq.pos) - 1"
        )
        self._execute("UPDATE seq SET pos = -pos - 1")
        self._execute("DROP TABLE _order")

    def is_sorted(self) -> bool:
        """Backend-side sortedness check: one adjacent-pair SQL query."""
        row = self._execute(
            "SELECT EXISTS(SELECT 1 FROM seq a JOIN seq b "
            "ON b.pos = a.pos + 1 WHERE b.value < a.value)"
        ).fetchone()
        return not row[0]

    # -- fact persistence ---------------------------------------------------------

    def sync_facts(self, facts: frozenset[str]) -> None:
        self._execute("DELETE FROM facts")
        for name in sorted(facts):
            self._execute("INSERT INTO facts (name) VALUES (?)", (name,))
        self._conn.commit()

    def load_facts(self) -> frozenset[str]:
        names = {
            r[0] for r in self._execute("SELECT name FROM facts").fetchall()
        }
        # Revalidate what we can check cheaply before believing a
        # persisted fact; a stale one is dropped, not trusted.
        if "sorted" in names and not self.is_sorted():
            names = {n for n in names if n not in ("sorted", "strictly-sorted")}
            self.sync_facts(frozenset(names))
        return frozenset(names)

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        if not self._closed:
            try:
                self._conn.commit()
            except sqlite3.Error as exc:
                raise StorageError(
                    f"cannot flush sqlite store {self._path!r}: {exc}"
                ) from exc

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._conn.close()
            self._closed = True


class SqliteSequenceIterator(VectorIterator):
    """Random-access iterator over a :class:`SqliteSequence`."""


class SqliteSequence(Vector):
    """A :class:`Vector` whose elements (and facts) live in sqlite.

    Models the same concepts as the in-memory containers plus Persistent
    Container; reopening the same path restores both the elements and
    the revalidated fact set::

        s = SqliteSequence([3, 1, 2], path="seq.db")
        sort(s)                 # establishes the 'sorted' fact
        s.close()
        s = SqliteSequence(path="seq.db")
        s.has_fact("sorted")    # True — persisted and revalidated
    """

    iterator: type = SqliteSequenceIterator
    storage_factory: ClassVar[type] = SqliteStorage

    def __init__(self, items: Iterable[Any] = (), *,
                 path: str = ":memory:",
                 storage: Optional[SqliteStorage] = None) -> None:
        if storage is None:
            storage = SqliteStorage(path=path)
        super().__init__(items, storage=storage)

    # -- the backend-optimal entry points concept overloads dispatch to -----------

    def index_lookup(self, value: Any, lo: int = 0,
                     hi: Optional[int] = None) -> Optional[int]:
        return self._store.index_lookup(value, lo=lo, hi=hi)

    def backend_sort(self) -> None:
        self._store.backend_sort()
        self._commit_mutation("reverse")        # in-place reordering
        self.assert_fact("sorted", check=False)  # sorted by construction


# The structural container concepts hold for any Vector subclass; declare
# them (re-verifying) plus the nominal durability promise.
_models.declare(RandomAccessContainer, SqliteSequence)
_models.declare(Sequence, SqliteSequence)
_models.declare(BackInsertionSequence, SqliteSequence)
_models.declare(PersistentContainer, SqliteSequence)


def main(argv: Optional[list[str]] = None) -> int:
    """Open a sqlite-backed sequence and report its state.

    Exit codes follow the repo contract: 0 opened clean, 2 usage error,
    3 could not open (corrupt or unreadable file)."""
    args = sys.argv[1:] if argv is None else list(argv)
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print("usage: python -m repro.sequences.backends.sqlite_store PATH",
              file=sys.stderr)
        return 2
    try:
        seq = SqliteSequence(path=args[0])
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    facts = ", ".join(sorted(seq.facts)) or "none"
    print(f"{args[0]}: {seq.size()} element(s), facts: {facts}")
    seq.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
