"""An ``array``/mmap-backed contiguous storage backend.

Elements live in one machine-addressable block (:class:`array.array` of a
fixed typecode), optionally loaded from / flushed to a file through
``mmap`` — the representation behind the Contiguous Container concept.
The façade, :class:`ContiguousVector`, is a plain
:class:`~repro.sequences.vector.Vector` with a different
``storage_factory``: it models exactly the same concepts, obeys exactly
the same invalidation rules, and differs only in the capability record
its storage publishes (``contiguous=True``), which is what bulk-copy
dispatch and the T-backends bench key on.

The price of contiguity is a fixed element type: values must fit the
array typecode (machine integers by default, ``"d"`` for floats).  A
value that does not fit raises :class:`~repro.sequences.storage.
StorageError` rather than silently degrading to boxed storage.
"""

from __future__ import annotations

import mmap
import os
from array import array
from typing import Any, ClassVar, Iterable, Optional

from ...concepts import models as _models
from ...concepts.builtins import (
    BackInsertionSequence,
    ContiguousContainer,
    RandomAccessContainer,
    Sequence,
)
from ...concepts.complexity import constant
from ..storage import Storage, StorageCapabilities, StorageError
from ..vector import Vector, VectorIterator


class ContiguousStorage(Storage):
    """One contiguous ``array.array`` block, optionally file-backed.

    With a ``path`` the block is initialised by mmap'ing the file's
    current contents and ``flush()`` writes the block back; without one
    it is purely RAM-resident.  Either way every element occupies a
    fixed-width slot in a single allocation, so ``slice`` is one
    ``memcpy``-style operation instead of a per-element loop.
    """

    capabilities = StorageCapabilities(
        name="contig", contiguous=True, persistent=False,
        random_access=constant(), io_cost_per_op=0.0,
    )

    def __init__(self, items: Iterable[Any] = (), *,
                 typecode: str = "q",
                 path: Optional[str] = None) -> None:
        self._typecode = typecode
        self._path = path
        self._block: array = array(typecode)
        if path is not None and os.path.exists(path) and os.path.getsize(path):
            try:
                with open(path, "rb") as fh:
                    with mmap.mmap(fh.fileno(), 0,
                                   access=mmap.ACCESS_READ) as view:
                        self._block.frombytes(view[:])
            except (OSError, ValueError) as exc:
                raise StorageError(
                    f"cannot map contiguous store {path!r}: {exc}"
                ) from exc
        for item in items:
            self.append(item)

    def _coerce(self, value: Any) -> Any:
        try:
            probe = array(self._typecode, [value])
        except (TypeError, OverflowError, ValueError) as exc:
            raise StorageError(
                f"value {value!r} does not fit contiguous typecode "
                f"{self._typecode!r}"
            ) from exc
        return probe[0]

    # -- index protocol -----------------------------------------------------------

    def length(self) -> int:
        return len(self._block)

    def get(self, index: int) -> Any:
        return self._block[index]

    def set(self, index: int, value: Any) -> None:
        self._block[index] = self._coerce(value)

    def insert(self, index: int, value: Any) -> None:
        self._block.insert(index, self._coerce(value))

    def erase(self, index: int) -> None:
        del self._block[index]

    def append(self, value: Any) -> None:
        self._block.append(self._coerce(value))

    def slice(self, start: int, stop: int) -> list[Any]:
        return self._block[start:stop].tolist()

    def clear(self) -> None:
        del self._block[:]

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        if self._path is None:
            return
        try:
            with open(self._path, "wb") as fh:
                fh.write(self._block.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise StorageError(
                f"cannot flush contiguous store {self._path!r}: {exc}"
            ) from exc

    def close(self) -> None:
        self.flush()


class ContiguousVectorIterator(VectorIterator):
    """Random-access iterator over a :class:`ContiguousVector`."""

    value_type: type = int


class ContiguousVector(Vector):
    """A :class:`Vector` whose elements live in one contiguous block.

    Same interface, same concepts, same invalidation rules — only the
    representation (and therefore the capability record) differs."""

    value_type: type = int
    iterator: type = ContiguousVectorIterator
    storage_factory: ClassVar[type] = ContiguousStorage


# Contiguity is a nominal promise of the representation; declare it (the
# structural side of Random Access Container is inherited from Vector and
# re-verified by the declarations below).
_models.declare(RandomAccessContainer, ContiguousVector)
_models.declare(Sequence, ContiguousVector)
_models.declare(BackInsertionSequence, ContiguousVector)
_models.declare(ContiguousContainer, ContiguousVector)
