"""Generic sequence algorithms over iterator ranges, with concept-based
overloading.

This is the STL layer of the reproduction: each algorithm states its concept
requirements (the documentation the paper wants made first-class), several
are concept-*overloaded* (Section 2.1's ``sort`` example, plus
``advance``/``distance`` — the textbook tag-dispatching cases), and the
sorted-sequence algorithms carry the pre/postconditions STLlint's entry/exit
handlers check (Section 3.1).

All range algorithms take value-semantic iterators ``[first, last)`` from
:mod:`repro.sequences.iterators`; container-level overloads take the
container itself.

Dispatch for ``advance``/``distance``/``sort`` runs through the
:mod:`repro.runtime` decision tables: specificity is compiled once per
registry generation and the steady-state cost of picking an overload is a
single dict hit (see ``benchmarks/bench_dispatch_cache.py`` for the
numbers, and ``REPRO_DISPATCH_STATS=1`` for per-overload call counts).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..concepts import GenericFunction
from ..concepts.builtins import (
    BackInsertionSequence,
    BidirectionalIterator,
    Container,
    ContiguousContainer,
    ForwardIterator,
    InputIterator,
    PersistentContainer,
    RandomAccessContainer,
    RandomAccessIterator,
    Sequence,
)
from .errors import EmptyRangeError, IteratorRangeError
from .function_objects import Less
from .iterators import IteratorBase, require_same_container

_default_less = Less()


# ---------------------------------------------------------------------------
# Iterator utilities (concept-overloaded: the classic tag-dispatch pair)
# ---------------------------------------------------------------------------

advance = GenericFunction("advance")


@advance.overload(requires=[(InputIterator, 0)])
def _advance_linear(it: IteratorBase, n: int) -> None:
    """O(n) stepping — all an Input Iterator permits."""
    if n < 0:
        raise IteratorRangeError("cannot advance an input iterator backwards")
    for _ in range(n):
        it.increment()


@advance.overload(requires=[(BidirectionalIterator, 0)])
def _advance_bidirectional(it: IteratorBase, n: int) -> None:
    """O(|n|) stepping, either direction."""
    if n >= 0:
        for _ in range(n):
            it.increment()
    else:
        for _ in range(-n):
            it.decrement()


@advance.overload(requires=[(RandomAccessIterator, 0)])
def _advance_random(it: Any, n: int) -> None:
    """O(1) jump — the payoff of the Random Access Iterator refinement."""
    it.advance(n)


distance = GenericFunction("distance")


@distance.overload(requires=[(InputIterator, 0), (InputIterator, 1)])
def _distance_linear(first: IteratorBase, last: IteratorBase) -> int:
    require_same_container(first, last)
    it = first.clone()
    n = 0
    while not it.equals(last):
        it.increment()
        n += 1
    return n


@distance.overload(requires=[(RandomAccessIterator, 0), (RandomAccessIterator, 1)])
def _distance_random(first: Any, last: Any) -> int:
    return first.distance(last)


# ---------------------------------------------------------------------------
# Non-mutating algorithms
# ---------------------------------------------------------------------------


def for_each(first: IteratorBase, last: IteratorBase, fn: Callable[[Any], Any]) -> None:
    """Requires: Input Iterator."""
    require_same_container(first, last)
    it = first.clone()
    while not it.equals(last):
        fn(it.deref())
        it.increment()


def find(first: IteratorBase, last: IteratorBase, value: Any) -> IteratorBase:
    """Linear search.  Requires: Input Iterator.  O(n).

    This is the algorithm STLlint flags when the incoming range is known to
    be sorted ("Consider replacing this algorithm with one specialized for
    sorted sequences (e.g., lower_bound)", Section 3.2).
    """
    require_same_container(first, last)
    it = first.clone()
    while not it.equals(last):
        if it.deref() == value:
            return it
        it.increment()
    return it


def find_if(
    first: IteratorBase, last: IteratorBase, pred: Callable[[Any], bool]
) -> IteratorBase:
    """Requires: Input Iterator."""
    require_same_container(first, last)
    it = first.clone()
    while not it.equals(last):
        if pred(it.deref()):
            return it
        it.increment()
    return it


def count(first: IteratorBase, last: IteratorBase, value: Any) -> int:
    """Requires: Input Iterator."""
    require_same_container(first, last)
    n = 0
    it = first.clone()
    while not it.equals(last):
        if it.deref() == value:
            n += 1
        it.increment()
    return n


def count_if(first: IteratorBase, last: IteratorBase, pred: Callable[[Any], bool]) -> int:
    require_same_container(first, last)
    n = 0
    it = first.clone()
    while not it.equals(last):
        if pred(it.deref()):
            n += 1
        it.increment()
    return n


def equal(first1: IteratorBase, last1: IteratorBase, first2: IteratorBase) -> bool:
    """Requires: Input Iterator × 2."""
    it1 = first1.clone()
    it2 = first2.clone()
    while not it1.equals(last1):
        if it1.deref() != it2.deref():
            return False
        it1.increment()
        it2.increment()
    return True


def max_element(
    first: IteratorBase,
    last: IteratorBase,
    less: Callable[[Any, Any], bool] = _default_less,
) -> IteratorBase:
    """Iterator to the maximum element.

    Requires: **Forward Iterator** — the algorithm keeps an iterator to the
    best element seen while continuing to traverse, i.e. it "depends on the
    multipass property of Forward Iterators" (Section 3.1).  Running it on an
    Input Iterator archetype is STLlint's demonstration case; see
    :mod:`repro.stllint.archetype_check`.

    Semantic requirement: ``less`` must satisfy the Strict Weak Order axioms
    of Fig. 6.
    """
    require_same_container(first, last)
    if first.equals(last):
        return last.clone()
    best = first.clone()
    it = first.clone()
    it.increment()
    while not it.equals(last):
        if less(best.deref(), it.deref()):
            best = it.clone()
        it.increment()
    return best


def min_element(
    first: IteratorBase,
    last: IteratorBase,
    less: Callable[[Any, Any], bool] = _default_less,
) -> IteratorBase:
    """Requires: Forward Iterator (multipass), Strict Weak Order."""
    require_same_container(first, last)
    if first.equals(last):
        return last.clone()
    best = first.clone()
    it = first.clone()
    it.increment()
    while not it.equals(last):
        if less(it.deref(), best.deref()):
            best = it.clone()
        it.increment()
    return best


def accumulate(
    first: IteratorBase,
    last: IteratorBase,
    init: Any,
    op: Callable[[Any, Any], Any] = lambda a, b: a + b,
) -> Any:
    """Left fold.  Requires: Input Iterator."""
    require_same_container(first, last)
    acc = init
    it = first.clone()
    while not it.equals(last):
        acc = op(acc, it.deref())
        it.increment()
    return acc


def is_sorted(
    first: IteratorBase,
    last: IteratorBase,
    less: Callable[[Any, Any], bool] = _default_less,
) -> bool:
    """Requires: Forward Iterator.  The *sortedness* property this tests is
    what STLlint's exit handler attaches after ``sort`` (Section 3.1)."""
    require_same_container(first, last)
    if first.equals(last):
        return True
    prev = first.clone()
    it = first.clone()
    it.increment()
    while not it.equals(last):
        if less(it.deref(), prev.deref()):
            return False
        prev = it.clone()
        it.increment()
    return True


# ---------------------------------------------------------------------------
# Sorted-range algorithms (binary search family)
# ---------------------------------------------------------------------------


def lower_bound(
    first: IteratorBase,
    last: IteratorBase,
    value: Any,
    less: Callable[[Any, Any], bool] = _default_less,
) -> IteratorBase:
    """First position where ``value`` could be inserted keeping order.

    Requires: Forward Iterator.  **Precondition: [first, last) is sorted
    under ``less``** — the entry-handler check of Section 3.1.  O(log n)
    comparisons; O(log n) steps with Random Access Iterators, O(n) steps
    otherwise (comparisons stay logarithmic — the STL's actual guarantee).
    """
    require_same_container(first, last)
    n = distance(first, last)
    it = first.clone()
    while n > 0:
        step = n // 2
        mid = it.clone()
        advance(mid, step)
        if less(mid.deref(), value):
            mid.increment()
            it = mid
            n -= step + 1
        else:
            n = step
    return it


def upper_bound(
    first: IteratorBase,
    last: IteratorBase,
    value: Any,
    less: Callable[[Any, Any], bool] = _default_less,
) -> IteratorBase:
    """First position strictly after every element equivalent to ``value``.
    Same requirements/preconditions as :func:`lower_bound`."""
    require_same_container(first, last)
    n = distance(first, last)
    it = first.clone()
    while n > 0:
        step = n // 2
        mid = it.clone()
        advance(mid, step)
        if not less(value, mid.deref()):
            mid.increment()
            it = mid
            n -= step + 1
        else:
            n = step
    return it


def binary_search(
    first: IteratorBase,
    last: IteratorBase,
    value: Any,
    less: Callable[[Any, Any], bool] = _default_less,
) -> bool:
    """Requires: Forward Iterator; sorted precondition; Strict Weak Order
    (Fig. 6 names ``binary_search`` among the algorithms whose correctness
    rests on those axioms)."""
    it = lower_bound(first, last, value, less)
    return (not it.equals(last)) and (not less(value, it.deref()))


# ---------------------------------------------------------------------------
# Backend-aware search (the storage-split payoff)
# ---------------------------------------------------------------------------


def indexed_find(container: Any, value: Any = None,
                 _range_value: Any = None) -> IteratorBase:
    """First position of ``value`` via the backend's value index — one
    O(log n) round trip instead of an n-round-trip scan.

    Requires: Persistent Container whose store supports ``index_lookup``.
    **Precondition: the container carries the ``sorted`` fact** (the same
    entry condition as :func:`lower_bound`; the taxonomy entry for
    "indexed lookup" declares it, which is what licenses the optimizer's
    ``find`` → ``indexed_find`` rewrite on sorted persistent sequences).

    Accepts both spellings a rewritten call site can have: the container
    form ``indexed_find(c, value)`` and, because the optimizer replaces
    only the callee name of ``find(first, last, value)``, the iterator
    range form ``indexed_find(first, last, value)`` — the range bounds
    narrow the lookup to ``[first, last)``.
    """
    if isinstance(container, IteratorBase):
        first, last, sought = container, value, _range_value
        require_same_container(first, last)
        seq = first.container
        index = seq.index_lookup(sought, lo=first._index, hi=last._index)
        return last.clone() if index is None else _at_index(seq, index)
    index = container.index_lookup(value)
    return container.end() if index is None else _at_index(container, index)


def _at_index(container: Any, index: int) -> IteratorBase:
    it = container.begin()
    advance(it, index)
    return it


find_in = GenericFunction("find_in")


@find_in.overload(requires=[(Container, 0)],
                  name="find_in<Container> (linear scan)")
def _find_in_scan(container: Any, value: Any) -> IteratorBase:
    """Whole-container find: the generic linear scan."""
    return find(container.begin(), container.end(), value)


@find_in.overload(requires=[(PersistentContainer, 0)],
                  name="find_in<PersistentContainer> (fact-routed)")
def _find_in_persistent(container: Any, value: Any) -> IteratorBase:
    """On a persistent backend every element access is a round trip, so
    routing matters: with the ``sorted`` fact recorded the backend's
    indexed lookup answers in one trip; without it we must still scan."""
    if container.has_fact("sorted"):
        return indexed_find(container, value)
    return find(container.begin(), container.end(), value)


copy_into = GenericFunction("copy_into")


@copy_into.overload(requires=[(Container, 0), (BackInsertionSequence, 1)],
                    name="copy_into<Container> (element-wise)")
def _copy_into_elementwise(src: Any, dst: Any) -> Any:
    """Append all of ``src`` onto ``dst``, one element at a time."""
    it = src.begin()
    last = src.end()
    while not it.equals(last):
        dst.push_back(it.deref())
        it.increment()
    return dst


@copy_into.overload(
    requires=[(ContiguousContainer, 0), (BackInsertionSequence, 1)],
    name="copy_into<ContiguousContainer> (bulk slice)",
)
def _copy_into_bulk(src: Any, dst: Any) -> Any:
    """Contiguous sources hand over their block as one bulk slice —
    no per-element iterator traffic on the read side."""
    for value in src.storage().slice(0, src.size()):
        dst.push_back(value)
    return dst


# ---------------------------------------------------------------------------
# Mutating algorithms
# ---------------------------------------------------------------------------


def copy(first: IteratorBase, last: IteratorBase, out: IteratorBase) -> IteratorBase:
    """Requires: Input Iterator source, writable destination with enough
    room."""
    it = first.clone()
    o = out.clone()
    while not it.equals(last):
        o.set(it.deref())
        it.increment()
        o.increment()
    return o


def fill(first: IteratorBase, last: IteratorBase, value: Any) -> None:
    require_same_container(first, last)
    it = first.clone()
    while not it.equals(last):
        it.set(value)
        it.increment()


def reverse(first: IteratorBase, last: IteratorBase) -> None:
    """Requires: Bidirectional Iterator."""
    require_same_container(first, last)
    if first.equals(last):
        return
    left = first.clone()
    right = last.clone()
    while True:
        if left.equals(right):
            return
        right.decrement()
        if left.equals(right):
            return
        a, b = left.deref(), right.deref()
        left.set(b)
        right.set(a)
        left.increment()


def remove_if(
    container: Any, pred: Callable[[Any], bool]
) -> int:
    """Erase every element satisfying ``pred`` using the correct
    erase-returns-next idiom — the *fixed* version of Fig. 4's routine.
    Requires: Sequence.  Returns the number erased."""
    erased = 0
    it = container.begin()
    while not it.equals(container.end()):
        if pred(it.deref()):
            it = container.erase(it)
            erased += 1
        else:
            it.increment()
    return erased


# ---------------------------------------------------------------------------
# sort: the paper's concept-based overloading example
# ---------------------------------------------------------------------------

sort = GenericFunction("sort")


def _note_sorted(container: Any, less: Callable[[Any, Any], bool]) -> None:
    """Record the runtime ``sorted`` fact a sort establishes by
    construction — only under the default order (the fact means
    nondecreasing under ``<=``, not under an arbitrary comparator), and
    only on façades that track facts."""
    if less is _default_less and hasattr(container, "assert_fact"):
        container.assert_fact("sorted", check=False)


def _quicksort_indices(c: Any, lo: int, hi: int, less: Callable) -> None:
    """Median-of-three quicksort with insertion sort below a cutoff,
    operating through ``at``/``set_at`` (Random Access Container)."""
    while hi - lo > 16:
        mid = (lo + hi) // 2
        a, b, m = c.at(lo), c.at(hi - 1), c.at(mid)
        # median of three
        if less(m, a):
            a, m = m, a
        if less(b, m):
            m, b = b, m
            if less(m, a):
                a, m = m, a
        pivot = m
        i, j = lo, hi - 1
        while i <= j:
            while less(c.at(i), pivot):
                i += 1
            while less(pivot, c.at(j)):
                j -= 1
            if i <= j:
                vi, vj = c.at(i), c.at(j)
                c.set_at(i, vj)
                c.set_at(j, vi)
                i += 1
                j -= 1
        # Recurse into the smaller side, loop on the larger (O(log n) stack).
        if j - lo < hi - i:
            _quicksort_indices(c, lo, j + 1, less)
            lo = i
        else:
            _quicksort_indices(c, i, hi, less)
            hi = j + 1
    # insertion sort for the small tail
    for i in range(lo + 1, hi):
        v = c.at(i)
        j = i - 1
        while j >= lo and less(v, c.at(j)):
            c.set_at(j + 1, c.at(j))
            j -= 1
        c.set_at(j + 1, v)


@sort.overload(requires=[(Sequence, 0)], name="sort<Sequence> (merge sort)")
def _sort_linear(container: Any, less: Callable[[Any, Any], bool] = _default_less) -> Any:
    """Default for linearly-accessed sequences ("if they can only be
    accessed linearly (as with a linked list) we might select a default
    algorithm"): bottom-up merge sort through the Sequence interface.
    O(n log n) comparisons, but every element move is a linked-list
    operation."""
    items = list(container)
    if len(items) <= 1:
        return container
    runs = [[x] for x in items]
    while len(runs) > 1:
        merged_runs = []
        for i in range(0, len(runs) - 1, 2):
            a, b = runs[i], runs[i + 1]
            out: list[Any] = []
            ia = ib = 0
            while ia < len(a) and ib < len(b):
                if less(b[ib], a[ia]):
                    out.append(b[ib]); ib += 1
                else:
                    out.append(a[ia]); ia += 1
            out.extend(a[ia:])
            out.extend(b[ib:])
            merged_runs.append(out)
        if len(runs) % 2:
            merged_runs.append(runs[-1])
        runs = merged_runs
    # Rewrite the sequence in place through its own interface.
    result = runs[0]
    it = container.begin()
    for v in result:
        it.set(v)
        it.increment()
    _note_sorted(container, less)
    return container


@sort.overload(
    requires=[(RandomAccessContainer, 0)],
    name="sort<RandomAccessContainer> (quicksort)",
)
def _sort_indexed(container: Any, less: Callable[[Any, Any], bool] = _default_less) -> Any:
    """"If they can be accessed efficiently via indexing (as with an array)
    we can apply the more-efficient quicksort algorithm" (Section 2.1)."""
    _quicksort_indices(container, 0, container.size(), less)
    _note_sorted(container, less)
    return container


# A container that is both a Sequence and random-access (Vector, Deque)
# matches both overloads above, which are unordered by refinement; this
# doubly-constrained registration is the unique most-specific candidate and
# resolves to quicksort — the behaviour the paper's example wants.
sort.overload(
    requires=[(RandomAccessContainer, 0), (Sequence, 0)],
    name="sort<RandomAccessContainer & Sequence> (quicksort)",
)(_sort_indexed)


@sort.overload(
    requires=[(PersistentContainer, 0), (RandomAccessContainer, 0),
              (Sequence, 0)],
    name="sort<PersistentContainer> (backend order-by)",
)
def _sort_backend(container: Any,
                  less: Callable[[Any, Any], bool] = _default_less) -> Any:
    """On a persistent backend, element-swapping quicksort pays a round
    trip per access; pushing the whole reorder to the backend (one
    ORDER BY renumbering) costs O(1) trips.  Only the default order can
    be delegated — a custom comparator falls back to the generic
    quicksort through the container interface."""
    if less is not _default_less:
        return _sort_indexed(container, less)
    container.backend_sort()
    return container


def backend_sort(container: Any,
                 less: Callable[[Any, Any], bool] = _default_less) -> Any:
    """Monomorphic spelling of the persistent-backend ``sort`` overload —
    the optimizer's rewrite target for ``sort`` on persistent container
    kinds.  Its STLlint spec aliases ``sort``'s, so the SORTED fact it
    establishes (and everything downstream that relies on it) survives
    the rewrite."""
    return _sort_backend(container, less)


# Monomorphized spellings of ``sort``, one per container representation —
# the targets OPT-MONO rewrites a proven-monomorphic call site to, and
# callable directly by anyone who knows the container type statically.
# Each is a direct-call trampoline (repro.runtime.specialize): resolution
# is paid once, not per call, and a model mutation flips the binding back
# to full dispatch, so they stay exactly as correct as ``sort`` itself.
# Their semantic specs alias ``sort``'s (see
# repro.stllint.specs.MONO_ALGORITHM_SPELLINGS), so STLlint's facts —
# SORTED established on exit — are unchanged by the rewrite.
from .deque import Deque as _Deque        # noqa: E402  (after sort's overloads)
from .dlist import DList as _DList        # noqa: E402
from .vector import Vector as _Vector     # noqa: E402

sort__vector = sort.specialize(_Vector)
sort__list = sort.specialize(_DList)
sort__deque = sort.specialize(_Deque)


def stable_sort(container: Any, less: Callable[[Any, Any], bool] = _default_less) -> Any:
    """Stable merge sort for any Sequence (refines the ``sort`` algorithm
    concept in the taxonomy with a stability postcondition)."""
    return _sort_linear(container, less)


def insertion_sort_range(first: IteratorBase, last: IteratorBase,
                         less: Callable[[Any, Any], bool] = _default_less) -> None:
    """In-place insertion sort using only Bidirectional Iterator
    operations and O(1) extra space.

    This is what "accessed linearly" *really* limits you to when you also
    cannot allocate (the merge sort used by ``sort<Sequence>`` buys its
    O(n log n) with O(n) scratch space): O(n^2) element moves.  The
    overload bench uses it as the honest baseline for Section 2.1's claim
    that indexed access enables "the more-efficient quicksort algorithm".
    """
    require_same_container(first, last)
    if first.equals(last):
        return
    sorted_end = first.clone()
    sorted_end.increment()
    while not sorted_end.equals(last):
        value = sorted_end.deref()
        pos = sorted_end.clone()
        while not pos.equals(first):
            prev = pos.clone()
            prev.decrement()
            if less(value, prev.deref()):
                pos.set(prev.deref())
                pos = prev
            else:
                break
        pos.set(value)
        sorted_end.increment()
