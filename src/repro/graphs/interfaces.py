"""The graph concepts of Figs. 1 and 2, plus the rest of the BGL concept
family.

Fig. 1 — Graph Edge::

    Expression           Return Type or Description
    Edge::vertex_type    Associated vertex type
    source(e)            Edge::vertex_type
    target(e)            Edge::vertex_type

Fig. 2 — Incidence Graph::

    Graph::vertex_type                Associated vertex type
    Graph::edge_type                  Associated edge type
    Graph::out_edge_iterator          Associated iterator type
    out_edge_iterator::value_type == edge_type
    edge_type models Graph Edge
    out_edge_iterator models Iterator
    out_edges(v, g)                   out_edge_iterator
    out_degree(v, g)                  int

(The paper's table types ``out_degree`` as ``out_edge_iterator``; the BGL it
describes returns a degree count, so we follow BGL and type it ``int``.)
"""

from __future__ import annotations

from ..concepts import (
    AnyType,
    Assoc,
    AssociatedType,
    ComplexityGuarantee,
    ConceptRequirement,
    Concept,
    Exact,
    Param,
    SameType,
    function,
    method,
)
from ..concepts.builtins import ForwardIterator, TrivialIterator
from ..concepts.complexity import constant, linear

Edge = Param("Edge")
Graph = Param("Graph")

#: Fig. 1.
GraphEdge = Concept(
    "Graph Edge",
    params=("Edge",),
    requirements=[
        AssociatedType("vertex_type", Edge, "Associated vertex type"),
        function("source(e)", "source", [Edge], Assoc(Edge, "vertex_type")),
        function("target(e)", "target", [Edge], Assoc(Edge, "vertex_type")),
    ],
    doc="Type Edge is a model of Graph Edge if the above requirements are "
        "satisfied. Object e is of type Edge. (Fig. 1)",
)

#: Fig. 2.
IncidenceGraph = Concept(
    "Incidence Graph",
    params=("Graph",),
    requirements=[
        AssociatedType("vertex_type", Graph, "Associated vertex type"),
        AssociatedType("edge_type", Graph, "Associated edge type"),
        AssociatedType("out_edge_iterator", Graph, "Associated iterator type"),
        SameType(
            Assoc(Assoc(Graph, "out_edge_iterator"), "value_type"),
            Assoc(Graph, "edge_type"),
        ),
        ConceptRequirement(GraphEdge, (Assoc(Graph, "edge_type"),)),
        ConceptRequirement(TrivialIterator, (Assoc(Graph, "out_edge_iterator"),)),
        function("out_edges(v, g)", "out_edges", [Graph, Assoc(Graph, "vertex_type")]),
        function("out_degree(v, g)", "out_degree",
                 [Graph, Assoc(Graph, "vertex_type")], Exact(int)),
    ],
    doc="Type Graph is a model of Incidence Graph if the above requirements "
        "are satisfied. Object g is of type Graph and object v is of type "
        "Graph::vertex_type. (Fig. 2)",
)

BidirectionalGraph = Concept(
    "Bidirectional Graph",
    params=("Graph",),
    refines=[IncidenceGraph],
    requirements=[
        function("in_edges(v, g)", "in_edges", [Graph, Assoc(Graph, "vertex_type")]),
        function("in_degree(v, g)", "in_degree",
                 [Graph, Assoc(Graph, "vertex_type")], Exact(int)),
    ],
    doc="Incidence graph with efficient access to incoming edges.",
)

AdjacencyGraph = Concept(
    "Adjacency Graph",
    params=("Graph",),
    requirements=[
        AssociatedType("vertex_type", Graph, "Associated vertex type"),
        function("adjacent_vertices(v, g)", "adjacent_vertices",
                 [Graph, Assoc(Graph, "vertex_type")]),
    ],
    doc="Direct access to a vertex's neighbours.",
)

VertexListGraph = Concept(
    "Vertex List Graph",
    params=("Graph",),
    requirements=[
        AssociatedType("vertex_type", Graph, "Associated vertex type"),
        function("vertices(g)", "vertices", [Graph]),
        function("num_vertices(g)", "num_vertices", [Graph], Exact(int)),
        ComplexityGuarantee("num_vertices", constant()),
    ],
    doc="Traversal of the whole vertex set.",
)

EdgeListGraph = Concept(
    "Edge List Graph",
    params=("Graph",),
    requirements=[
        AssociatedType("vertex_type", Graph, "Associated vertex type"),
        AssociatedType("edge_type", Graph, "Associated edge type"),
        ConceptRequirement(GraphEdge, (Assoc(Graph, "edge_type"),)),
        function("edges(g)", "edges", [Graph]),
        function("num_edges(g)", "num_edges", [Graph], Exact(int)),
    ],
    doc="Traversal of the whole edge set.",
)

MutableGraph = Concept(
    "Mutable Graph",
    params=("Graph",),
    requirements=[
        AssociatedType("vertex_type", Graph, "Associated vertex type"),
        method("g.add_vertex()", "add_vertex", [Graph], Assoc(Graph, "vertex_type")),
        method("g.add_edge(u, v)", "add_edge",
               [Graph, Assoc(Graph, "vertex_type"), Assoc(Graph, "vertex_type")]),
    ],
    doc="Graphs that can grow.",
)

VertexAndEdgeListGraph = Concept(
    "Vertex And Edge List Graph",
    params=("Graph",),
    refines=[VertexListGraph, EdgeListGraph],
    doc="Both vertex-set and edge-set traversal.",
)

PMap = Param("PMap")

ReadablePropertyMap = Concept(
    "Readable Property Map",
    params=("PMap",),
    requirements=[
        method("pm.get(k)", "get", [PMap, AnyType()]),
    ],
    doc="Key -> value mapping readable via get.",
)

WritablePropertyMap = Concept(
    "Writable Property Map",
    params=("PMap",),
    requirements=[
        method("pm.put(k, v)", "put", [PMap, AnyType(), AnyType()]),
    ],
    doc="Key -> value mapping writable via put.",
)

ReadWritePropertyMap = Concept(
    "Read Write Property Map",
    params=("PMap",),
    refines=[ReadablePropertyMap, WritablePropertyMap],
    doc="Both readable and writable.",
)

# -- free-function helpers ----------------------------------------------------
#
# The concept tables above use ADL-style free functions.  Python callers use
# these module-level wrappers, which defer to methods on the graph/edge (the
# structural models all provide them as methods).


def source(e):
    """Fig. 1: ``source(e) -> Edge::vertex_type``."""
    return e.source()


def target(e):
    """Fig. 1: ``target(e) -> Edge::vertex_type``."""
    return e.target()


def out_edges(g, v):
    """Fig. 2: ``out_edges(v, g) -> out_edge_iterator`` (range)."""
    return g.out_edges(v)


def out_degree(g, v):
    """Fig. 2: ``out_degree(v, g) -> int``."""
    return g.out_degree(v)


def in_edges(g, v):
    return g.in_edges(v)


def in_degree(g, v):
    return g.in_degree(v)


def vertices(g):
    return g.vertices()


def num_vertices(g):
    return g.num_vertices()


def edges(g):
    return g.edges()


def num_edges(g):
    return g.num_edges()


def adjacent_vertices(g, v):
    return g.adjacent_vertices(v)


def first_neighbor(g, v):
    """The running example of Section 2.3: the first neighbour of ``v``.

    Declared constraint: ``Graph : IncidenceGraph``.  Everything else —
    that the edge type models Graph Edge, that the out-edge iterator is an
    iterator over edges — is *propagated* from the IncidenceGraph concept;
    the implementation may use ``target`` on the edges without restating
    the Graph Edge constraint.
    """
    rng = g.out_edges(v)
    it = rng.begin()
    if it.equals(rng.end()):
        return None
    return target(it.deref())
