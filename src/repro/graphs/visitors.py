"""Visitor concepts for the graph algorithms.

BGL's visitors are the extension mechanism that keeps BFS/DFS generic: user
code observes algorithm events without the algorithm knowing the user's
types.  The visitor *concepts* (checked in the tests) specify which event
methods each algorithm requires; :class:`NullVisitor` is their archetypal
model.
"""

from __future__ import annotations

from typing import Any

from ..concepts import AnyType, Concept, Param, method

V = Param("V")

BFSVisitorConcept = Concept(
    "BFS Visitor",
    params=("V",),
    requirements=[
        method("vis.discover_vertex(u, g)", "discover_vertex", [V, AnyType(), AnyType()]),
        method("vis.examine_edge(e, g)", "examine_edge", [V, AnyType(), AnyType()]),
        method("vis.tree_edge(e, g)", "tree_edge", [V, AnyType(), AnyType()]),
        method("vis.finish_vertex(u, g)", "finish_vertex", [V, AnyType(), AnyType()]),
    ],
    doc="Observer of breadth-first search events.",
)

DFSVisitorConcept = Concept(
    "DFS Visitor",
    params=("V",),
    requirements=[
        method("vis.discover_vertex(u, g)", "discover_vertex", [V, AnyType(), AnyType()]),
        method("vis.tree_edge(e, g)", "tree_edge", [V, AnyType(), AnyType()]),
        method("vis.back_edge(e, g)", "back_edge", [V, AnyType(), AnyType()]),
        method("vis.finish_vertex(u, g)", "finish_vertex", [V, AnyType(), AnyType()]),
    ],
    doc="Observer of depth-first search events.",
)

DijkstraVisitorConcept = Concept(
    "Dijkstra Visitor",
    params=("V",),
    requirements=[
        method("vis.discover_vertex(u, g)", "discover_vertex", [V, AnyType(), AnyType()]),
        method("vis.edge_relaxed(e, g)", "edge_relaxed", [V, AnyType(), AnyType()]),
        method("vis.finish_vertex(u, g)", "finish_vertex", [V, AnyType(), AnyType()]),
    ],
    doc="Observer of Dijkstra relaxation events.",
)


class NullVisitor:
    """Models every visitor concept; does nothing.  The archetypal visitor."""

    def discover_vertex(self, u: Any, g: Any) -> None:
        pass

    def examine_edge(self, e: Any, g: Any) -> None:
        pass

    def tree_edge(self, e: Any, g: Any) -> None:
        pass

    def back_edge(self, e: Any, g: Any) -> None:
        pass

    def edge_relaxed(self, e: Any, g: Any) -> None:
        pass

    def finish_vertex(self, u: Any, g: Any) -> None:
        pass


class RecordingVisitor(NullVisitor):
    """Records every event as ``(event_name, payload)`` — used by tests to
    assert algorithm event orderings."""

    def __init__(self) -> None:
        self.events: list[tuple[str, Any]] = []

    def discover_vertex(self, u: Any, g: Any) -> None:
        self.events.append(("discover", u))

    def examine_edge(self, e: Any, g: Any) -> None:
        self.events.append(("examine", (e.source(), e.target())))

    def tree_edge(self, e: Any, g: Any) -> None:
        self.events.append(("tree", (e.source(), e.target())))

    def back_edge(self, e: Any, g: Any) -> None:
        self.events.append(("back", (e.source(), e.target())))

    def edge_relaxed(self, e: Any, g: Any) -> None:
        self.events.append(("relaxed", (e.source(), e.target())))

    def finish_vertex(self, u: Any, g: Any) -> None:
        self.events.append(("finish", u))

    def of_kind(self, kind: str) -> list[Any]:
        return [payload for name, payload in self.events if name == kind]
