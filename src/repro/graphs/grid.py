"""Implicit grid graph: out-edges are *computed*, never stored.

A second, structurally different model of Fig. 2's Incidence Graph — the
point of concept-generic algorithms is that BFS/DFS/Dijkstra written against
the concept run unchanged on it.  Also the topology generator for the
distributed-simulator benches (mesh networks)."""

from __future__ import annotations

from .adjacency_list import Edge, EdgeView


class GridGraph:
    """A ``rows x cols`` 4-neighbour grid.  Vertices are ``r * cols + c``;
    edges exist in both directions between orthogonal neighbours."""

    vertex_type: type = int
    edge_type: type = Edge
    out_edge_iterator: type = EdgeView.iterator

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols

    def _coords(self, v: int) -> tuple[int, int]:
        return divmod(v, self.cols)

    def vertex_at(self, r: int, c: int) -> int:
        return r * self.cols + c

    # -- Incidence Graph ------------------------------------------------------

    def out_edges(self, v: int) -> EdgeView:
        r, c = self._coords(v)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                out.append(Edge(v, self.vertex_at(nr, nc)))
        return EdgeView(out)

    def out_degree(self, v: int) -> int:
        r, c = self._coords(v)
        return sum(
            1
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1))
            if 0 <= r + dr < self.rows and 0 <= c + dc < self.cols
        )

    # -- Adjacency / Vertex List Graph -------------------------------------------

    def adjacent_vertices(self, v: int) -> list[int]:
        rng = self.out_edges(v)
        return [e.target() for e in rng]

    def vertices(self) -> range:
        return range(self.rows * self.cols)

    def num_vertices(self) -> int:
        return self.rows * self.cols

    def __repr__(self) -> str:
        return f"GridGraph({self.rows}x{self.cols})"
