"""Property maps: the BGL's mechanism for attaching data (weights, colors,
distances) to vertices and edges without intruding on the graph type."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class DictPropertyMap:
    """Read-write property map backed by a dict; ``default`` is returned
    (and not stored) for absent keys."""

    def __init__(self, default: Any = None, data: Optional[dict] = None) -> None:
        self._data: dict = dict(data or {})
        self._default = default

    def get(self, key: Any) -> Any:
        return self._data.get(key, self._default)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def __getitem__(self, key: Any) -> Any:
        return self.get(key)

    def __setitem__(self, key: Any, value: Any) -> None:
        self.put(key, value)

    def items(self):
        return self._data.items()

    def __repr__(self) -> str:
        return f"DictPropertyMap({self._data!r}, default={self._default!r})"


class FunctionPropertyMap:
    """Readable property map computed from a function (e.g. edge weight as a
    function of its endpoints)."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self._fn = fn

    def get(self, key: Any) -> Any:
        return self._fn(key)

    def __getitem__(self, key: Any) -> Any:
        return self._fn(key)


class ConstantPropertyMap:
    """Readable property map returning one value for every key (unit edge
    weights for BFS-as-shortest-paths, etc.)."""

    def __init__(self, value: Any) -> None:
        self._value = value

    def get(self, key: Any) -> Any:
        return self._value

    def __getitem__(self, key: Any) -> Any:
        return self._value


class VectorPropertyMap:
    """Read-write property map over integer keys backed by a list — O(1)
    access for the common vertices-are-ints case."""

    def __init__(self, size: int, default: Any = None) -> None:
        self._data = [default] * size
        self._default = default

    def get(self, key: int) -> Any:
        if 0 <= key < len(self._data):
            return self._data[key]
        return self._default

    def put(self, key: int, value: Any) -> None:
        while key >= len(self._data):
            self._data.append(self._default)
        self._data[key] = value

    def __getitem__(self, key: int) -> Any:
        return self.get(key)

    def __setitem__(self, key: int, value: Any) -> None:
        self.put(key, value)
