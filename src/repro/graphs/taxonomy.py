"""The graph-domain algorithm concept taxonomy (BGL algorithms).

The second of the two sequential taxonomies named in Section 1.  Graph
algorithms are classified by problem, constrained by the Fig. 2 family of
graph concepts, and annotated with bounds over the two size variables
``n`` (vertices) and ``m`` (edges) — precision the single-variable bounds
of sequence algorithms don't need.
"""

from __future__ import annotations

from ..concepts import AlgorithmConcept, Constraint, Param, Taxonomy
from ..concepts.complexity import linear, parse
from . import algorithms as A
from .interfaces import (
    AdjacencyGraph,
    BidirectionalGraph,
    EdgeListGraph,
    GraphEdge,
    IncidenceGraph,
    VertexListGraph,
)

G = Param("G")


def bgl_taxonomy() -> Taxonomy:
    """Build the BGL-domain taxonomy (fresh instance; cheap)."""
    t = Taxonomy("BGL graph algorithms")
    t.add_concepts([
        GraphEdge, IncidenceGraph, BidirectionalGraph, AdjacencyGraph,
        VertexListGraph, EdgeListGraph,
    ])

    bfs = t.add_algorithm(AlgorithmConcept(
        "breadth_first_search", problem="traversal",
        requires=(Constraint(IncidenceGraph, (G,)),),
        guarantees={"time": parse("n + m"), "space": linear("n")},
        implementation=A.breadth_first_search,
        doc="Level-order traversal; also unweighted shortest paths.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "depth_first_search", problem="traversal",
        requires=(Constraint(IncidenceGraph, (G,)),),
        guarantees={"time": parse("n + m"), "space": linear("n")},
        implementation=A.depth_first_search,
    ))

    t.add_algorithm(AlgorithmConcept(
        "bfs shortest paths", problem="shortest paths",
        requires=(Constraint(IncidenceGraph, (G,)),),
        guarantees={"time": parse("n + m")},
        refines=(bfs,),
        implementation=A.breadth_first_distances,
        doc="Unit weights only — the constraint that distinguishes it from "
            "Dijkstra at a better bound.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "dijkstra", problem="shortest paths",
        requires=(Constraint(IncidenceGraph, (G,)),),
        guarantees={"time": parse("n log n + m log n")},
        implementation=A.dijkstra_shortest_paths,
        doc="Nonnegative weights (a semantic precondition enforced at "
            "runtime: NegativeWeightError).",
    ))

    t.add_algorithm(AlgorithmConcept(
        "bellman-ford", problem="shortest paths",
        requires=(Constraint(EdgeListGraph, (G,)),
                  Constraint(VertexListGraph, (G,))),
        guarantees={"time": parse("n m")},
        implementation=A.bellman_ford_shortest_paths,
        doc="Weaker precondition than Dijkstra (negative weights allowed, "
            "no reachable negative cycle) at a worse bound — the precision "
            "vs applicability trade the taxonomy records.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "topological_sort", problem="ordering",
        requires=(Constraint(IncidenceGraph, (G,)),
                  Constraint(VertexListGraph, (G,))),
        guarantees={"time": parse("n + m")},
        implementation=A.topological_sort,
        doc="Precondition: acyclicity (CycleError otherwise).",
    ))

    t.add_algorithm(AlgorithmConcept(
        "connected_components", problem="components",
        requires=(Constraint(AdjacencyGraph, (G,)),
                  Constraint(VertexListGraph, (G,))),
        guarantees={"time": parse("n + m")},
        implementation=A.connected_components,
    ))
    t.add_algorithm(AlgorithmConcept(
        "strongly_connected_components", problem="components",
        requires=(Constraint(IncidenceGraph, (G,)),
                  Constraint(VertexListGraph, (G,))),
        guarantees={"time": parse("n + m")},
        implementation=A.strongly_connected_components,
        doc="Tarjan; needs directed incidence, not just adjacency.",
    ))

    # Gap entries: problems the library doesn't implement yet.
    t.add_algorithm(AlgorithmConcept(
        "all-pairs shortest paths", problem="shortest paths",
        requires=(Constraint(VertexListGraph, (G,)),
                  Constraint(EdgeListGraph, (G,))),
        guarantees={"time": parse("n^3")},
        implementation=None,
        doc="Floyd-Warshall-shaped gap.",
    ))
    t.add_algorithm(AlgorithmConcept(
        "minimum spanning tree", problem="spanning tree",
        requires=(Constraint(EdgeListGraph, (G,)),),
        guarantees={"time": parse("m log n")},
        implementation=None,
        doc="Kruskal-shaped gap.",
    ))
    return t
