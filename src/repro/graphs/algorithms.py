"""Generic graph algorithms over the Fig. 1/Fig. 2 concepts.

Each algorithm names its concept requirements in its docstring and declares
them with the unified :func:`repro.concepts.where` decorator — the checkable
`where` clause Section 2.1 asks for, reporting failures at the call boundary
instead of deep inside the traversal.  The decorator memoizes verdicts per
argument-type tuple keyed on the model-registry generation
(:mod:`repro.runtime`), so the steady-state entry cost is a set lookup.
Conditional requirements (e.g. full-graph DFS needing Vertex List Graph)
stay as inline :func:`repro.concepts.require` calls.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from ..concepts import require, where
from .interfaces import (
    AdjacencyGraph,
    EdgeListGraph,
    IncidenceGraph,
    VertexListGraph,
    source,
    target,
)
from .property_maps import ConstantPropertyMap, DictPropertyMap
from .visitors import NullVisitor

_null = NullVisitor()


class NegativeWeightError(ValueError):
    """Dijkstra's precondition — nonnegative weights — was violated.  (A
    semantic requirement of the ``dijkstra`` algorithm concept, enforced at
    runtime because it cannot be checked structurally.)"""


@where(g=IncidenceGraph)
def breadth_first_search(
    g: Any,
    start: Any,
    visitor: Any = _null,
) -> DictPropertyMap:
    """BFS from ``start``.

    where Graph : Incidence Graph; Visitor : BFS Visitor.
    Returns the predecessor map of the BFS tree.
    O(V + E) with O(1) amortized queue operations.
    """
    pred = DictPropertyMap()
    seen = {start}
    q: deque = deque([start])
    visitor.discover_vertex(start, g)
    while q:
        u = q.popleft()
        rng = g.out_edges(u)
        it = rng.begin()
        while not it.equals(rng.end()):
            e = it.deref()
            visitor.examine_edge(e, g)
            v = target(e)
            if v not in seen:
                seen.add(v)
                pred.put(v, u)
                visitor.tree_edge(e, g)
                visitor.discover_vertex(v, g)
                q.append(v)
            it.increment()
        visitor.finish_vertex(u, g)
    return pred


@where(g=IncidenceGraph)
def breadth_first_distances(g: Any, start: Any) -> DictPropertyMap:
    """Unweighted shortest path lengths from ``start`` (BFS levels).

    where Graph : Incidence Graph.
    """
    dist = DictPropertyMap()
    dist.put(start, 0)
    q: deque = deque([start])
    while q:
        u = q.popleft()
        du = dist.get(u)
        rng = g.out_edges(u)
        it = rng.begin()
        while not it.equals(rng.end()):
            v = target(it.deref())
            if dist.get(v) is None:
                dist.put(v, du + 1)
                q.append(v)
            it.increment()
    return dist


@where(g=IncidenceGraph)
def depth_first_search(
    g: Any,
    start: Optional[Any] = None,
    visitor: Any = _null,
) -> DictPropertyMap:
    """Iterative DFS; covers the whole graph when ``start`` is None
    (requires Vertex List Graph in that case).

    where Graph : Incidence Graph [; Graph : Vertex List Graph].
    Returns the predecessor map of the DFS forest.
    """
    pred = DictPropertyMap()
    color: dict[Any, str] = {}

    def visit(root: Any) -> None:
        # Explicit stack of (vertex, edge-iterator) frames.
        rng0 = g.out_edges(root)
        stack = [(root, rng0.begin(), rng0.end())]
        color[root] = "grey"
        visitor.discover_vertex(root, g)
        while stack:
            u, it, end = stack[-1]
            advanced = False
            while not it.equals(end):
                e = it.deref()
                it.increment()
                v = target(e)
                state = color.get(v, "white")
                if state == "white":
                    visitor.tree_edge(e, g)
                    pred.put(v, u)
                    color[v] = "grey"
                    visitor.discover_vertex(v, g)
                    rng = g.out_edges(v)
                    stack.append((v, rng.begin(), rng.end()))
                    advanced = True
                    break
                elif state == "grey":
                    visitor.back_edge(e, g)
            if not advanced and stack and stack[-1][0] == u and (
                stack[-1][1].equals(stack[-1][2])
            ):
                stack.pop()
                color[u] = "black"
                visitor.finish_vertex(u, g)

    if start is not None:
        visit(start)
    else:
        require(VertexListGraph, type(g), context="depth_first_search (full)")
        for v in g.vertices():
            if color.get(v, "white") == "white":
                visit(v)
    return pred


@where(g=IncidenceGraph)
def dijkstra_shortest_paths(
    g: Any,
    start: Any,
    weight: Any = None,
    visitor: Any = _null,
) -> tuple[DictPropertyMap, DictPropertyMap]:
    """Dijkstra's algorithm.

    where Graph : Incidence Graph; Weight : Readable Property Map over
    edges (defaults to unit weights).  Precondition: weights >= 0.
    Returns (distance map, predecessor map).  O((V + E) log V).
    """
    if weight is None:
        weight = ConstantPropertyMap(1)
    dist = DictPropertyMap()
    pred = DictPropertyMap()
    dist.put(start, 0)
    heap: list[tuple[Any, int, Any]] = [(0, 0, start)]
    counter = 1
    done: set = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        visitor.discover_vertex(u, g)
        rng = g.out_edges(u)
        it = rng.begin()
        while not it.equals(rng.end()):
            e = it.deref()
            w = weight.get(e)
            if w < 0:
                raise NegativeWeightError(
                    f"edge {source(e)}->{target(e)} has negative weight {w}"
                )
            v = target(e)
            nd = d + w
            old = dist.get(v)
            if old is None or nd < old:
                dist.put(v, nd)
                pred.put(v, u)
                visitor.edge_relaxed(e, g)
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
            it.increment()
        visitor.finish_vertex(u, g)
    return dist, pred


class CycleError(ValueError):
    """topological_sort's precondition (acyclicity) was violated."""


@where((IncidenceGraph, "g"), (VertexListGraph, "g"))
def topological_sort(g: Any) -> list[Any]:
    """Kahn's algorithm.

    where Graph : Incidence Graph, Vertex List Graph.
    Precondition: g is a DAG (raises CycleError otherwise).
    """
    indeg: dict[Any, int] = {v: 0 for v in g.vertices()}
    for u in g.vertices():
        rng = g.out_edges(u)
        it = rng.begin()
        while not it.equals(rng.end()):
            indeg[target(it.deref())] += 1
            it.increment()
    ready = deque(v for v, d in indeg.items() if d == 0)
    order: list[Any] = []
    while ready:
        u = ready.popleft()
        order.append(u)
        rng = g.out_edges(u)
        it = rng.begin()
        while not it.equals(rng.end()):
            v = target(it.deref())
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
            it.increment()
    if len(order) != g.num_vertices():
        raise CycleError("graph contains a cycle; topological order undefined")
    return order


@where((AdjacencyGraph, "g"), (VertexListGraph, "g"))
def connected_components(g: Any) -> DictPropertyMap:
    """Component labels for an *undirected* graph (or the weak components
    of a directed one if its adjacency is symmetric).

    where Graph : Adjacency Graph, Vertex List Graph.
    """
    comp = DictPropertyMap()
    label = 0
    for root in g.vertices():
        if comp.get(root) is not None:
            continue
        stack = [root]
        comp.put(root, label)
        while stack:
            u = stack.pop()
            for v in g.adjacent_vertices(u):
                if comp.get(v) is None:
                    comp.put(v, label)
                    stack.append(v)
        label += 1
    return comp


@where((IncidenceGraph, "g"), (VertexListGraph, "g"))
def strongly_connected_components(g: Any) -> DictPropertyMap:
    """Tarjan's SCC algorithm (iterative).

    where Graph : Incidence Graph, Vertex List Graph.
    """
    index: dict[Any, int] = {}
    low: dict[Any, int] = {}
    on_stack: set = set()
    stack: list[Any] = []
    comp = DictPropertyMap()
    counter = 0
    label = 0

    for root in g.vertices():
        if root in index:
            continue
        work = [(root, iter(g.adjacent_vertices(root)))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            u, nbrs = work[-1]
            progressed = False
            for v in nbrs:
                if v not in index:
                    index[v] = low[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack.add(v)
                    work.append((v, iter(g.adjacent_vertices(v))))
                    progressed = True
                    break
                elif v in on_stack:
                    low[u] = min(low[u], index[v])
            if not progressed:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[u])
                if low[u] == index[u]:
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.put(w, label)
                        if w == u:
                            break
                    label += 1
    return comp


def reconstruct_path(pred: DictPropertyMap, start: Any, goal: Any) -> Optional[list]:
    """Walk a predecessor map back from ``goal``; None when unreachable."""
    if goal == start:
        return [start]
    if pred.get(goal) is None:
        return None
    path = [goal]
    u = goal
    while u != start:
        u = pred.get(u)
        if u is None:
            return None
        path.append(u)
    path.reverse()
    return path


@where((EdgeListGraph, "g"), (VertexListGraph, "g"))
def bellman_ford_shortest_paths(
    g: Any,
    start: Any,
    weight: Any = None,
) -> tuple[DictPropertyMap, DictPropertyMap]:
    """Bellman-Ford: shortest paths allowing negative edge weights.

    where Graph : Edge List Graph, Vertex List Graph.  Precondition: no
    negative cycle reachable from ``start`` (raises NegativeWeightError
    naming a witness edge otherwise).  O(V·E) — the taxonomy's price for
    weakening Dijkstra's nonnegativity precondition.
    """
    if weight is None:
        weight = ConstantPropertyMap(1)
    dist = DictPropertyMap()
    pred = DictPropertyMap()
    dist.put(start, 0)
    edges = g.edges()
    for _ in range(max(g.num_vertices() - 1, 0)):
        changed = False
        for e in edges:
            du = dist.get(source(e))
            if du is None:
                continue
            w = weight.get(e)
            v = target(e)
            nd = du + w
            old = dist.get(v)
            if old is None or nd < old:
                dist.put(v, nd)
                pred.put(v, source(e))
                changed = True
        if not changed:
            break
    # Negative-cycle detection: one more relaxation must be a fixpoint.
    for e in edges:
        du = dist.get(source(e))
        if du is None:
            continue
        if du + weight.get(e) < dist.get(target(e)):
            raise NegativeWeightError(
                f"negative cycle reachable through edge "
                f"{source(e)}->{target(e)}"
            )
    return dist, pred
