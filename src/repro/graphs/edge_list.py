"""Edge-list graph: stores only the edge set.

Models Edge List Graph and Vertex List Graph but **not** Incidence Graph —
``out_edges`` would be O(E), violating the concept's intent — making it the
standing example of a type that conforms to one graph concept and not
another (useful for exercising concept-based algorithm selection and for
negative conformance tests of Fig. 2)."""

from __future__ import annotations

from typing import Iterable

from .adjacency_list import Edge


class EdgeListGraphImpl:
    """Minimal edge-set graph over integer vertices."""

    vertex_type: type = int
    edge_type: type = Edge

    def __init__(
        self, num_vertices: int = 0, edges: Iterable[tuple[int, int]] = ()
    ) -> None:
        self._n = num_vertices
        self._edges: list[Edge] = []
        for u, v in edges:
            self.add_edge(u, v)

    def add_edge(self, u: int, v: int) -> Edge:
        self._n = max(self._n, u + 1, v + 1)
        e = Edge(u, v, len(self._edges))
        self._edges.append(e)
        return e

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> range:
        return range(self._n)

    def num_vertices(self) -> int:
        return self._n

    def to_adjacency_list(self, directed: bool = True):
        """Upgrade to an Incidence Graph model when an algorithm needs one."""
        from .adjacency_list import AdjacencyList

        g = AdjacencyList(self._n, directed=directed)
        for e in self._edges:
            g.add_edge(e.source(), e.target())
        return g

    def __repr__(self) -> str:
        return f"EdgeListGraphImpl({self._n} vertices, {len(self._edges)} edges)"
