"""Adjacency-list graph: the BGL workhorse representation.

Models (verified and declared in :mod:`repro.graphs`):
Incidence Graph, Bidirectional Graph (directed only), Adjacency Graph,
Vertex List Graph, Edge List Graph, Mutable Graph.  Its ``Edge`` models
Graph Edge (Fig. 1).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..sequences.views import ListView, view_of


class Edge:
    """An edge descriptor.  Models Fig. 1's Graph Edge concept:
    ``vertex_type`` is the associated vertex type, ``source()``/``target()``
    return endpoints."""

    vertex_type: type = int
    __slots__ = ("_source", "_target", "index")

    def __init__(self, source: int, target: int, index: int = 0) -> None:
        self._source = source
        self._target = target
        self.index = index

    def source(self) -> int:
        return self._source

    def target(self) -> int:
        return self._target

    def reversed(self) -> "Edge":
        return Edge(self._target, self._source, self.index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (self._source, self._target, self.index) == (
            other._source, other._target, other.index
        )

    def __hash__(self) -> int:
        return hash((self._source, self._target, self.index))

    def __repr__(self) -> str:
        return f"Edge({self._source} -> {self._target})"


#: The out-edge range type: a read-only view of Edge values whose iterator's
#: ``value_type`` is ``Edge`` — satisfying Fig. 2's same-type constraint.
EdgeView = view_of(Edge)


class AdjacencyList:
    """Adjacency-list graph over integer vertex descriptors.

    Args:
        num_vertices: Initial vertex count (vertices are ``0..n-1``).
        edges: Iterable of ``(u, v)`` pairs.
        directed: Undirected graphs store each edge in both adjacency rows
            (sharing the edge index).
    """

    vertex_type: type = int
    edge_type: type = Edge
    out_edge_iterator: type = EdgeView.iterator

    def __init__(
        self,
        num_vertices: int = 0,
        edges: Iterable[tuple[int, int]] = (),
        directed: bool = True,
    ) -> None:
        self.directed = directed
        self._out: list[list[Edge]] = [[] for _ in range(num_vertices)]
        self._in: list[list[Edge]] = [[] for _ in range(num_vertices)]
        self._edges: list[Edge] = []
        for u, v in edges:
            self.add_edge(u, v)

    # -- Mutable Graph -----------------------------------------------------------

    def add_vertex(self) -> int:
        self._out.append([])
        self._in.append([])
        return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> Edge:
        hi = max(u, v)
        while hi >= len(self._out):
            self.add_vertex()
        e = Edge(u, v, len(self._edges))
        self._edges.append(e)
        self._out[u].append(e)
        self._in[v].append(e)
        if not self.directed and u != v:
            back = Edge(v, u, e.index)
            self._out[v].append(back)
            self._in[u].append(back)
        return e

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove one ``u -> v`` edge; returns False when absent."""
        for e in self._out[u]:
            if e.target() == v:
                self._out[u].remove(e)
                self._in[v] = [x for x in self._in[v] if x.index != e.index]
                self._edges = [x for x in self._edges if x.index != e.index]
                if not self.directed and u != v:
                    self._out[v] = [x for x in self._out[v] if x.index != e.index]
                    self._in[u] = [x for x in self._in[u] if x.index != e.index]
                return True
        return False

    # -- Incidence Graph --------------------------------------------------------

    def out_edges(self, v: int) -> ListView:
        """Fig. 2: ``out_edges(v, g)`` — a range of Graph Edge values."""
        return EdgeView(self._out[v])

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    # -- Bidirectional Graph ------------------------------------------------------

    def in_edges(self, v: int) -> ListView:
        return EdgeView(self._in[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    # -- Adjacency Graph ------------------------------------------------------------

    def adjacent_vertices(self, v: int) -> list[int]:
        return [e.target() for e in self._out[v]]

    # -- Vertex/Edge List Graph --------------------------------------------------------

    def vertices(self) -> range:
        return range(len(self._out))

    def num_vertices(self) -> int:
        return len(self._out)

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def num_edges(self) -> int:
        return len(self._edges)

    # -- misc ------------------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        return any(e.target() == v for e in self._out[u])

    def reverse(self) -> "AdjacencyList":
        """The transpose graph (directed only)."""
        g = AdjacencyList(self.num_vertices(), directed=True)
        for e in self._edges:
            g.add_edge(e.target(), e.source())
        return g

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"AdjacencyList({self.num_vertices()} vertices, "
            f"{self.num_edges()} edges, {kind})"
        )
