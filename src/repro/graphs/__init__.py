"""BGL-like graph substrate: the concepts of Figs. 1-2, three structurally
different graph models, property maps, visitors, and concept-checked generic
algorithms."""

from __future__ import annotations

from ..concepts import models as _models
from .adjacency_list import AdjacencyList, Edge, EdgeView
from .algorithms import (
    CycleError,
    bellman_ford_shortest_paths,
    NegativeWeightError,
    breadth_first_distances,
    breadth_first_search,
    connected_components,
    depth_first_search,
    dijkstra_shortest_paths,
    reconstruct_path,
    strongly_connected_components,
    topological_sort,
)
from .edge_list import EdgeListGraphImpl
from .grid import GridGraph
from .interfaces import (
    AdjacencyGraph,
    BidirectionalGraph,
    EdgeListGraph,
    GraphEdge,
    IncidenceGraph,
    MutableGraph,
    ReadablePropertyMap,
    ReadWritePropertyMap,
    VertexAndEdgeListGraph,
    VertexListGraph,
    WritablePropertyMap,
    adjacent_vertices,
    edges,
    first_neighbor,
    in_degree,
    in_edges,
    num_edges,
    num_vertices,
    out_degree,
    out_edges,
    source,
    target,
    vertices,
)
from .property_maps import (
    ConstantPropertyMap,
    DictPropertyMap,
    FunctionPropertyMap,
    VectorPropertyMap,
)
from .visitors import (
    BFSVisitorConcept,
    DFSVisitorConcept,
    DijkstraVisitorConcept,
    NullVisitor,
    RecordingVisitor,
)

__all__ = [
    "AdjacencyList", "Edge", "EdgeView", "EdgeListGraphImpl", "GridGraph",
    "GraphEdge", "IncidenceGraph", "BidirectionalGraph", "AdjacencyGraph",
    "VertexListGraph", "EdgeListGraph", "VertexAndEdgeListGraph",
    "MutableGraph",
    "ReadablePropertyMap", "WritablePropertyMap", "ReadWritePropertyMap",
    "DictPropertyMap", "FunctionPropertyMap", "ConstantPropertyMap",
    "VectorPropertyMap",
    "BFSVisitorConcept", "DFSVisitorConcept", "DijkstraVisitorConcept",
    "NullVisitor", "RecordingVisitor",
    "breadth_first_search", "breadth_first_distances", "depth_first_search",
    "dijkstra_shortest_paths", "bellman_ford_shortest_paths",
    "topological_sort", "connected_components",
    "strongly_connected_components", "reconstruct_path",
    "CycleError", "NegativeWeightError",
    "source", "target", "out_edges", "out_degree", "in_edges", "in_degree",
    "vertices", "num_vertices", "edges", "num_edges", "adjacent_vertices",
    "first_neighbor",
]


def _declare_all() -> None:
    _models.declare(GraphEdge, Edge)
    _models.declare(IncidenceGraph, AdjacencyList)
    _models.declare(BidirectionalGraph, AdjacencyList)
    _models.declare(AdjacencyGraph, AdjacencyList)
    _models.declare(VertexListGraph, AdjacencyList)
    _models.declare(EdgeListGraph, AdjacencyList)
    _models.declare(MutableGraph, AdjacencyList)
    _models.declare(IncidenceGraph, GridGraph)
    _models.declare(AdjacencyGraph, GridGraph)
    _models.declare(VertexListGraph, GridGraph)
    _models.declare(EdgeListGraph, EdgeListGraphImpl)
    _models.declare(VertexListGraph, EdgeListGraphImpl)
    _models.declare(ReadWritePropertyMap, DictPropertyMap)
    _models.declare(ReadWritePropertyMap, VectorPropertyMap)
    _models.declare(ReadablePropertyMap, FunctionPropertyMap)
    _models.declare(ReadablePropertyMap, ConstantPropertyMap)
    for vc in (BFSVisitorConcept, DFSVisitorConcept, DijkstraVisitorConcept):
        _models.declare(vc, NullVisitor)


_declare_all()
