"""A miniature MPI: SPMD execution with mpi4py-style point-to-point and
collective operations.

The data-parallel library of Section 4 sits at a high level of abstraction;
below it, "programming directly with low-level concurrency and
communication mechanisms, such as threads, processes, locks, semaphores,
and messages" is the baseline the paper contrasts against.  This module
provides that baseline *faithfully*, with the mpi4py API shape the HPC
guides teach::

    def program(comm):
        rank, size = comm.rank, comm.size
        if rank == 0:
            comm.send({"a": 7}, dest=1)
        elif rank == 1:
            data = comm.recv(source=0)
        total = comm.allreduce(rank, op="+")

    results = run_spmd(program, size=4)

Each rank runs on its own thread with blocking channel semantics; the
collective algorithms are the classic ones (binomial-ish fan via rank 0 for
clarity), and ``allreduce``/``reduce`` consult the algebra registry exactly
like :meth:`ParallelArray.reduce` — a non-associative ``op`` is rejected
because ranks may combine in any bracketing.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..concepts.algebra import AlgebraRegistry, Semigroup, algebra as default_algebra
from .parray import UnsoundReductionError

ANY_SOURCE = -1


class MPIError(RuntimeError):
    pass


class DeadlockError(MPIError):
    """A blocking operation waited past the timeout — the classic
    send/recv ordering bug, reported instead of hanging the tests."""


@dataclass
class _Channels:
    """Per-(source, dest, tag) mailboxes plus a wildcard queue per dest."""

    size: int
    timeout: float
    boxes: dict = field(default_factory=dict)

    def box(self, source: int, dest: int, tag: int) -> "queue.Queue[Any]":
        key = (source, dest, tag)
        if key not in self.boxes:
            self.boxes[key] = queue.Queue()
        return self.boxes[key]


class Comm:
    """The communicator handed to each rank."""

    def __init__(self, rank: int, size: int, channels: _Channels,
                 barrier: threading.Barrier,
                 registry: AlgebraRegistry) -> None:
        self.rank = rank
        self.size = size
        self._ch = channels
        self._barrier = barrier
        self._registry = registry
        self.stats_sent = 0

    # -- point to point ------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise MPIError(f"send to invalid rank {dest}")
        if dest == self.rank:
            raise MPIError("send to self would deadlock a blocking pair")
        self.stats_sent += 1
        self._ch.box(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        try:
            return self._ch.box(source, self.rank, tag).get(
                timeout=self._ch.timeout
            )
        except queue.Empty:
            raise DeadlockError(
                f"rank {self.rank} timed out waiting for a message from "
                f"rank {source} (tag {tag})"
            ) from None

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._ch.timeout)
        except threading.BrokenBarrierError:
            raise DeadlockError(
                f"rank {self.rank}: barrier broken (some rank never arrived)"
            ) from None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag=-2)
            return obj
        return self.recv(root, tag=-2)

    def scatter(self, seq: Optional[list], root: int = 0) -> Any:
        if self.rank == root:
            if seq is None or len(seq) != self.size:
                raise MPIError(
                    f"scatter needs a {self.size}-element sequence at root"
                )
            for r in range(self.size):
                if r != root:
                    self.send(seq[r], r, tag=-3)
            return seq[root]
        return self.recv(root, tag=-3)

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        if self.rank == root:
            out = []
            for r in range(self.size):
                out.append(obj if r == root else self.recv(r, tag=-4))
            return out
        self.send(obj, root, tag=-4)
        return None

    def allgather(self, obj: Any) -> list:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: str = "+", root: int = 0,
               unsafe: bool = False) -> Any:
        """Reduce with the Semigroup guard: ranks may be combined in any
        bracketing, so associativity is a correctness requirement, exactly
        as for :meth:`ParallelArray.reduce`."""
        structure = self._registry.lookup(type(obj), op)
        if structure is None and not unsafe:
            raise UnsoundReductionError(type(obj), op)
        if structure is not None and not unsafe and \
                not structure.concept.refines_concept(Semigroup):
            raise UnsoundReductionError(type(obj), op)
        values = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = values[0]
        combine = structure.apply if structure is not None else (
            lambda a, b: a + b
        )
        for v in values[1:]:
            acc = combine(acc, v)
        return acc

    def allreduce(self, obj: Any, op: str = "+", unsafe: bool = False) -> Any:
        out = self.reduce(obj, op=op, root=0, unsafe=unsafe)
        return self.bcast(out, root=0)


@dataclass
class SpmdResult:
    """Per-rank return values plus aggregate stats."""

    returns: list
    messages_sent: int


def run_spmd(
    fn: Callable[[Comm], Any],
    size: int = 4,
    timeout: float = 10.0,
    registry: Optional[AlgebraRegistry] = None,
) -> SpmdResult:
    """Run ``fn(comm)`` on ``size`` rank-threads; returns every rank's
    return value.  Any rank's exception is re-raised (after joining the
    others), so deadlocks and guard violations surface as test failures,
    not hangs."""
    if size <= 0:
        raise MPIError("size must be positive")
    channels = _Channels(size, timeout)
    barrier = threading.Barrier(size)
    reg = registry if registry is not None else default_algebra
    comms = [Comm(r, size, channels, barrier, reg) for r in range(size)]
    returns: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        try:
            returns[rank] = fn(comms[rank])
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            errors.append((rank, exc))
            barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 1.0)
        if t.is_alive():
            raise DeadlockError("a rank failed to terminate")
    if errors:
        rank, exc = sorted(errors, key=lambda e: e[0])[0]
        raise exc
    return SpmdResult(returns, sum(c.stats_sent for c in comms))
