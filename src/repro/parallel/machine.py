"""A simulated parallel machine with work/span cost accounting.

Section 4's data-parallel library claim is about *abstraction*: "the
programmer still thinks and programs in parallel, but more abstractly".
Since no cluster is attached (repro substitution, see DESIGN.md), parallel
execution is simulated by a PRAM-style cost model: every data-parallel
operation reports its **work** (total operations) and **span** (critical
path), and the simulated running time on ``p`` processors follows Brent's
bound::

    T_p = work / p + span

Numerical results are computed with vectorized numpy (the guides' idiom for
fast array code on one node), so answers are real even though the timing is
modeled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class OpCost:
    """Work/span of one data-parallel operation."""

    name: str
    work: float
    span: float

    def time_on(self, p: int) -> float:
        if p <= 0:
            raise ValueError("processor count must be positive")
        return self.work / p + self.span


@dataclass
class CostLog:
    """Accumulated costs of a data-parallel computation."""

    ops: list[OpCost] = field(default_factory=list)

    def charge(self, name: str, work: float, span: float) -> OpCost:
        op = OpCost(name, work, span)
        self.ops.append(op)
        return op

    @property
    def work(self) -> float:
        return sum(o.work for o in self.ops)

    @property
    def span(self) -> float:
        return sum(o.span for o in self.ops)

    def time_on(self, p: int) -> float:
        """Brent's bound over the whole computation (operations run in
        sequence, so spans add)."""
        return self.work / p + self.span

    def speedup(self, p: int) -> float:
        """T_1 / T_p under the model; saturates at work/span (the
        parallelism of the computation)."""
        return self.time_on(1) / self.time_on(p)

    @property
    def parallelism(self) -> float:
        """work / span: the maximum useful processor count."""
        return self.work / self.span if self.span else math.inf

    def reset(self) -> None:
        self.ops.clear()

    def summary(self) -> str:
        return (
            f"work={self.work:.0f} span={self.span:.1f} "
            f"parallelism={self.parallelism:.1f}"
        )


@dataclass
class Machine:
    """A simulated machine: processor count plus a cost log."""

    processors: int = 8
    log: CostLog = field(default_factory=CostLog)

    def __post_init__(self) -> None:
        if self.processors <= 0:
            raise ValueError("processor count must be positive")

    def time(self) -> float:
        return self.log.time_on(self.processors)

    def speedup_curve(self, ps: Iterable[int]) -> list[tuple[int, float]]:
        return [(p, self.log.speedup(p)) for p in ps]
