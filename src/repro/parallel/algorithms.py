"""Data-parallel algorithms composed from the ParallelArray collectives,
with a sequential baseline for each (the bench compares shapes).

Entry points are constrained with the unified :func:`repro.concepts.where`
decorator against :data:`SizedIterable` — a generator (single-pass, no
``len``) fails at the call boundary with a concept-level diagnostic instead
of an opaque numpy error mid-collective.  The check is generation-cached
(:mod:`repro.runtime`): its steady-state cost is a set lookup.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..concepts import Concept, Param, method, where
from .machine import CostLog, Machine
from .parray import ParallelArray, parray

_S = Param("S")

#: What every data-parallel entry point needs from its input: a finite,
#: re-iterable collection (lists, ranges, numpy arrays all model this
#: structurally; one-shot generators do not).
SizedIterable = Concept(
    "Sized Iterable",
    params=("S",),
    requirements=[
        method("len(s)", "__len__", [_S]),
        method("iter(s)", "__iter__", [_S]),
    ],
    doc="A finite, re-iterable collection — the minimal requirement of the "
        "data-parallel collectives.",
)


@where(data=SizedIterable)
def parallel_sum(data: Sequence[float], machine: Optional[Machine] = None) -> float:
    """Tree-sum: work n, span log n."""
    return parray(np.asarray(data, dtype=float), machine).reduce("+")


def sequential_sum(data: Sequence[float]) -> tuple[float, CostLog]:
    """Baseline: work n, span n (no parallelism)."""
    arr = np.asarray(data, dtype=float)
    log = CostLog()
    log.charge("seq-sum", work=arr.size, span=arr.size)
    return float(arr.sum()), log


@where(a=SizedIterable, b=SizedIterable)
def parallel_dot(a: Sequence[float], b: Sequence[float],
                 machine: Optional[Machine] = None) -> float:
    """zip_with(*) then tree-reduce(+)."""
    m = machine if machine is not None else Machine()
    pa = parray(np.asarray(a, dtype=float), m)
    pb = parray(np.asarray(b, dtype=float), m)
    return pa.zip_with(pb, np.multiply, name="dot-mul").reduce("+")


@where(data=SizedIterable)
def prefix_sums(data: Sequence[float],
                machine: Optional[Machine] = None) -> ParallelArray:
    """Inclusive prefix sums via parallel scan."""
    return parray(np.asarray(data, dtype=float), machine).scan("+")


@where(data=SizedIterable)
def parallel_normalize(data: Sequence[float],
                       machine: Optional[Machine] = None) -> ParallelArray:
    """map/reduce composition: x / sum(x)."""
    m = machine if machine is not None else Machine()
    pa = parray(np.asarray(data, dtype=float), m)
    total = pa.reduce("+")
    if total == 0:
        raise ZeroDivisionError("cannot normalize a zero-sum array")
    return pa.map(lambda x: x / total, name="normalize")


@where(data=SizedIterable)
def jacobi_smooth(data: Sequence[float], iterations: int = 1,
                  machine: Optional[Machine] = None) -> ParallelArray:
    """Iterated 3-point smoothing stencil — the mesh/sensor-network
    workload; span grows with iterations, not with n."""
    pa = parray(np.asarray(data, dtype=float), machine)
    for _ in range(iterations):
        pa = pa.stencil([0.25, 0.5, 0.25], name="jacobi")
    return pa


@where(data=SizedIterable)
def parallel_histogram(data: Sequence[int], buckets: int,
                       machine: Optional[Machine] = None) -> ParallelArray:
    """Map to bucket ids, then a segmented count (modeled as map + sort +
    scan costs)."""
    m = machine if machine is not None else Machine()
    arr = np.asarray(data)
    pa = parray(arr, m)
    ids = pa.map(lambda x: np.clip(x, 0, buckets - 1), name="bucket-ids")
    counts = np.bincount(ids.data.astype(int), minlength=buckets)
    n = arr.size
    lg = max(1, int(np.ceil(np.log2(max(n, 2)))))
    m.log.charge("histogram-count", work=n, span=lg)
    return ParallelArray(counts, m)
