"""Data-parallel generic library over a simulated work/span machine
(Section 4), with Semigroup/Monoid-guarded collectives."""

from .algorithms import (
    jacobi_smooth,
    parallel_dot,
    parallel_histogram,
    parallel_normalize,
    parallel_sum,
    prefix_sums,
    sequential_sum,
)
from .machine import CostLog, Machine, OpCost
from .mpi import Comm, DeadlockError, MPIError, SpmdResult, run_spmd
from .parray import ParallelArray, UnsoundReductionError, parray

__all__ = [
    "CostLog", "Machine", "OpCost",
    "Comm", "run_spmd", "SpmdResult", "MPIError", "DeadlockError",
    "ParallelArray", "parray", "UnsoundReductionError",
    "parallel_sum", "sequential_sum", "parallel_dot", "prefix_sums",
    "parallel_normalize", "jacobi_smooth", "parallel_histogram",
]
