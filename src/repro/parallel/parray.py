"""Data-parallel arrays with concept-guarded collective operations.

The paper's data-parallel library is *concept-based*: a reduction is only
meaningful when the combining operation is associative, i.e. when
``(element type, op)`` models **Semigroup** (and needs an identity —
Monoid — to reduce empty arrays).  ``reduce``/``scan`` here consult the
algebra registry exactly like Simplicissimus does, refusing unsound
combines unless the caller explicitly opts out — the "closer coupling
between compilers and libraries" story applied to a parallel collective.

Costs are charged to a :class:`~repro.parallel.machine.Machine`'s log:

=========  =========  ==============
operation  work       span
=========  =========  ==============
map        n          1
zip_with   n          1
reduce     n          ⌈log2 n⌉
scan       2n         2⌈log2 n⌉
stencil    k·n        1
sort       n log n    log² n
=========  =========  ==============
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..concepts.algebra import (
    AlgebraRegistry,
    Monoid,
    Semigroup,
    algebra as default_algebra,
)
from ..concepts.errors import ConceptError
from .machine import Machine


class UnsoundReductionError(ConceptError):
    """The combining operation is not known to be associative (no Semigroup
    model for ``(type, op)``): a parallel reduction tree would be allowed to
    regroup operands arbitrarily, changing the result."""

    def __init__(self, typ: type, op: str) -> None:
        super().__init__(
            f"({typ.__name__}, '{op}') models no Semigroup: parallel "
            f"reduce/scan may regroup operands and change the result. "
            f"Declare the structure in the algebra registry or pass "
            f"unsafe=True to accept sequential-order-dependence."
        )


_NUMPY_UFUNC: dict[str, Callable] = {
    "+": np.add,
    "*": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
}

#: (python scalar type used for the concept lookup) per dtype kind.
_KIND_TO_TYPE = {"i": int, "u": int, "f": float, "c": complex, "b": bool}


def _log2ceil(n: int) -> int:
    return int(math.ceil(math.log2(n))) if n > 1 else 1


class ParallelArray:
    """An immutable data-parallel array bound to a machine."""

    def __init__(self, data: Union[np.ndarray, Sequence], machine: Machine,
                 registry: Optional[AlgebraRegistry] = None) -> None:
        self.data = np.asarray(data)
        self.machine = machine
        self.registry = registry if registry is not None else default_algebra

    # -- plumbing ------------------------------------------------------------

    def _like(self, data: np.ndarray) -> "ParallelArray":
        return ParallelArray(data, self.machine, self.registry)

    def _element_type(self) -> type:
        return _KIND_TO_TYPE.get(self.data.dtype.kind, object)

    def _check_associative(self, op: str, need_identity: bool,
                           unsafe: bool) -> None:
        if unsafe:
            return
        typ = self._element_type()
        concept = Monoid if need_identity else Semigroup
        # min/max are associative for every ordered type; they have no
        # registry entry (not written as operators), so special-case them.
        if op in ("min", "max"):
            return
        if not self.registry.models(typ, op, concept):
            raise UnsoundReductionError(typ, op)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __len__(self) -> int:
        return self.size

    def to_numpy(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:
        return f"ParallelArray({self.data!r})"

    # -- collectives ----------------------------------------------------------

    def map(self, fn: Callable[[np.ndarray], np.ndarray],
            name: str = "map") -> "ParallelArray":
        """Elementwise map.  ``fn`` receives the whole numpy array and must
        apply elementwise (vectorized); work n, span 1."""
        out = fn(self.data)
        self.machine.log.charge(name, work=self.size, span=1)
        return self._like(np.asarray(out))

    def zip_with(self, other: "ParallelArray",
                 fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                 name: str = "zip_with") -> "ParallelArray":
        if self.size != other.size:
            raise ValueError("zip_with requires equal sizes")
        out = fn(self.data, other.data)
        self.machine.log.charge(name, work=self.size, span=1)
        return self._like(np.asarray(out))

    def reduce(self, op: str = "+", unsafe: bool = False) -> Any:
        """Tree reduction.  Requires ``(element, op) : Semigroup`` (Monoid
        when the array may be empty).  Work n, span ⌈log2 n⌉."""
        self._check_associative(op, need_identity=self.size == 0,
                                unsafe=unsafe)
        if self.size == 0:
            s = self.registry.lookup(self._element_type(), op)
            if s is None:
                raise UnsoundReductionError(self._element_type(), op)
            return s.identity_value
        ufunc = _NUMPY_UFUNC.get(op)
        if ufunc is not None and self.data.dtype.kind != "O":
            result = ufunc.reduce(self.data)
        else:
            # Object arrays fold through the declared structure so the
            # model's own combine (e.g. modular addition) is honoured.
            s = self.registry.lookup(self._element_type(), op)
            if s is None and not unsafe:
                raise UnsoundReductionError(self._element_type(), op)
            result = self.data[0]
            for x in self.data[1:]:
                result = s.apply(result, x) if s else result + x
        self.machine.log.charge(f"reduce[{op}]", work=self.size,
                                span=_log2ceil(self.size))
        return result.item() if hasattr(result, "item") else result

    def scan(self, op: str = "+", unsafe: bool = False) -> "ParallelArray":
        """Inclusive prefix scan (Blelchoch-style cost: work 2n, span
        2⌈log2 n⌉).  Same concept requirement as reduce."""
        self._check_associative(op, need_identity=False, unsafe=unsafe)
        ufunc = _NUMPY_UFUNC.get(op)
        if ufunc is None:
            raise ValueError(f"no vectorized scan for op '{op}'")
        out = ufunc.accumulate(self.data) if self.size else self.data
        self.machine.log.charge(f"scan[{op}]", work=2 * self.size,
                                span=2 * _log2ceil(max(self.size, 1)))
        return self._like(out)

    def stencil(self, weights: Sequence[float],
                name: str = "stencil") -> "ParallelArray":
        """1-D stencil (convolution, same size, zero boundary); work k·n,
        span 1 — the sensor/mesh workload shape."""
        k = len(weights)
        out = np.convolve(self.data, np.asarray(weights, dtype=float),
                          mode="same")
        self.machine.log.charge(name, work=k * self.size, span=1)
        return self._like(out)

    def sort(self) -> "ParallelArray":
        """Parallel sample-sort cost model: work n log n, span log² n."""
        out = np.sort(self.data)
        lg = _log2ceil(max(self.size, 2))
        self.machine.log.charge("sort", work=self.size * lg, span=lg * lg)
        return self._like(out)

    def gather(self, indices: "ParallelArray") -> "ParallelArray":
        out = self.data[indices.data]
        self.machine.log.charge("gather", work=indices.size, span=1)
        return self._like(out)

    def filter(self, predicate: Callable[[np.ndarray], np.ndarray]
               ) -> "ParallelArray":
        """Parallel filter = map + scan + gather; charged accordingly."""
        mask = predicate(self.data)
        out = self.data[mask]
        n = self.size
        self.machine.log.charge("filter", work=3 * n,
                                span=2 * _log2ceil(max(n, 1)) + 2)
        return self._like(out)


def parray(data: Union[np.ndarray, Sequence],
           machine: Optional[Machine] = None) -> ParallelArray:
    """Construct a :class:`ParallelArray` (fresh 8-processor machine by
    default)."""
    return ParallelArray(data, machine if machine is not None else Machine())
