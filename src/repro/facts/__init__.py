"""repro.facts — the semantic-property layer shared by STLlint,
Simplicissimus, and the algorithm taxonomies.

Section 3.2 of the paper has Simplicissimus consume *STLlint-derived flow
facts* ("linear search on a sorted sequence → binary search").  Before this
package existed, the three consumers each kept a private spelling of the
same knowledge: sortedness/heapness lived inside STLlint's entry/exit
handlers, rewrite-rule guards were concept-only, and the sequence taxonomy
hard-coded its complexity notes.  This package is the single vocabulary:

- :mod:`repro.facts.properties` — first-class :class:`Property` objects
  (``sorted``, ``heap``, ``unique`` …) with a small lattice: implication
  closure, ``meet``/``join``, and data-driven invalidation on mutation
  (``invalidate(props, "append")`` knows a heap becomes heap-except-last).
- :mod:`repro.facts.records` — :class:`Fact` / :class:`AlgorithmCallFact`
  records, the :class:`FactRecorder` STLlint writes into, and the
  :class:`FactTable` consumers query (must-hold properties at a call site,
  across all abstract paths).

``collect_facts(source)`` — the public producer API — is implemented by the
STLlint interpreter (:mod:`repro.stllint.facts_collection`) and re-exported
here lazily so this package stays at the bottom of the layering (stdlib
imports only at module scope).
"""

from __future__ import annotations

from .properties import (
    ALL_PROPERTIES,
    DISTINCT,
    HEAP,
    HEAP_TAIL,
    SIZE_BOUNDED,
    SORTED,
    STRICTLY_SORTED,
    FactEnv,
    Property,
    closure,
    get_property,
    invalidate,
    join,
    meet,
)
from .records import (
    AlgorithmCallFact,
    CallSite,
    Fact,
    FactRecorder,
    FactTable,
)

__all__ = [
    "Property", "get_property", "ALL_PROPERTIES",
    "SORTED", "HEAP", "HEAP_TAIL", "DISTINCT", "STRICTLY_SORTED",
    "SIZE_BOUNDED",
    "closure", "meet", "join", "invalidate", "FactEnv",
    "Fact", "AlgorithmCallFact", "CallSite", "FactRecorder", "FactTable",
    "collect_facts",
]


def __getattr__(name: str):
    # collect_facts is produced by the STLlint layer above this one; import
    # it lazily so repro.facts never imports repro.stllint at module scope
    # (stllint.specs imports repro.facts.properties, and an eager import
    # here would be circular).
    if name == "collect_facts":
        from ..stllint.facts_collection import collect_facts

        return collect_facts
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
