"""Fact records: what STLlint's analysis learned, as queryable data.

The interpreter (producer side) writes into a :class:`FactRecorder`; the
optimizer and property-guarded rewrite rules (consumer side) query the
resulting :class:`FactTable`.  Because the symbolic interpreter is a
may-analysis that can visit one source line several times (loop fixpoint
iterations, both arms of a join, inlined callees), a call site's
*must-hold* properties are the **meet** of every recording at that
``(line, algorithm)`` — a property counts only if it held on every
explored path, which is what makes a rewrite decision based on it sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .properties import FactEnv, closure, meet


@dataclass(frozen=True)
class Fact:
    """One property event at one program point.

    ``kind`` is one of:

    - ``"establishes"`` — an exit handler added the property
      (``sort`` establishes ``sorted``);
    - ``"destroys"`` — a mutation or exit handler removed it;
    - ``"requires"`` — an entry handler checked it and it held;
    - ``"requires-missing"`` — an entry handler checked it and it did not
      (the same event that produced a diagnostic);
    - ``"holds"`` — observed to hold at a call site.
    """

    subject: str
    prop: str
    line: int
    kind: str
    source: str = ""        # algorithm or operation responsible
    function: str = ""      # enclosing analyzed function

    def render(self) -> str:
        return (f"L{self.line}: {self.source or '?'} {self.kind} "
                f"{self.prop}({self.subject})")


@dataclass(frozen=True)
class AlgorithmCallFact:
    """One recording of a specified-algorithm call during analysis."""

    algorithm: str
    line: int
    function: str
    subject: str                       # primary (range) container name
    container_kind: str
    properties_before: frozenset[str]
    properties_after: frozenset[str]


@dataclass
class CallSite:
    """All recordings of one ``(line, algorithm)`` site, merged.

    ``properties`` / ``properties_after`` are the meet across recordings:
    must-hold on every explored abstract path.
    """

    algorithm: str
    line: int
    function: str
    subject: str
    container_kind: str
    properties: frozenset[str]
    properties_after: frozenset[str]
    recordings: int = 1

    def merge(self, other: AlgorithmCallFact) -> None:
        self.properties = meet(self.properties, other.properties_before)
        self.properties_after = meet(
            self.properties_after, other.properties_after
        )
        self.recordings += 1

    def must_hold(self, prop: str) -> bool:
        """True when ``prop`` held on every explored path into the call."""
        return str(prop) in closure(self.properties)

    def render(self) -> str:
        props = ",".join(sorted(self.properties)) or "-"
        return (f"L{self.line}: {self.algorithm}({self.subject}) "
                f"[{props}] in {self.function}")


class FactRecorder:
    """Accumulates facts during one analysis run (producer side)."""

    def __init__(self) -> None:
        self.facts: list[Fact] = []
        self.calls: list[AlgorithmCallFact] = []

    def record(self, subject: str, prop: str, line: int, kind: str,
               source: str = "", function: str = "") -> None:
        self.facts.append(Fact(subject, str(prop), line, kind, source,
                               function))

    def record_call(
        self,
        algorithm: str,
        line: int,
        function: str,
        subject: str,
        container_kind: str,
        before: Iterable[str],
        after: Iterable[str],
    ) -> None:
        before = closure(before)
        after = closure(after)
        self.calls.append(AlgorithmCallFact(
            algorithm, line, function, subject, container_kind,
            before, after,
        ))
        for p in sorted(after - before):
            self.record(subject, p, line, "establishes", algorithm, function)
        for p in sorted(before - after):
            self.record(subject, p, line, "destroys", algorithm, function)

    def table(self) -> "FactTable":
        return FactTable(self.facts, self.calls)


class FactTable:
    """Queryable result of fact collection (consumer side)."""

    def __init__(self, facts: Iterable[Fact],
                 calls: Iterable[AlgorithmCallFact]) -> None:
        self.facts: list[Fact] = list(facts)
        self.calls: list[AlgorithmCallFact] = list(calls)
        self._sites: dict[tuple[int, str], CallSite] = {}
        for c in self.calls:
            key = (c.line, c.algorithm)
            site = self._sites.get(key)
            if site is None:
                self._sites[key] = CallSite(
                    c.algorithm, c.line, c.function, c.subject,
                    c.container_kind, c.properties_before,
                    c.properties_after,
                )
            else:
                site.merge(c)

    # -- queries -----------------------------------------------------------

    def call_sites(self, algorithm: Optional[str] = None) -> list[CallSite]:
        sites = sorted(self._sites.values(), key=lambda s: (s.line, s.algorithm))
        if algorithm is None:
            return sites
        return [s for s in sites if s.algorithm == algorithm]

    def site(self, line: int, algorithm: str) -> Optional[CallSite]:
        return self._sites.get((line, algorithm))

    def must_properties(self, line: int, algorithm: str) -> frozenset[str]:
        """Properties that held on every explored path entering the call."""
        site = self._sites.get((line, algorithm))
        return site.properties if site is not None else frozenset()

    def holds(self, prop: str, line: int, algorithm: str) -> bool:
        return str(prop) in self.must_properties(line, algorithm)

    def env_at(self, line: int, algorithm: Optional[str] = None) -> FactEnv:
        """A :class:`FactEnv` (subject → must-hold properties) for the call
        site(s) at ``line`` — the bridge into property-guarded rewrite
        rules."""
        env = FactEnv()
        for site in self._sites.values():
            if site.line != line:
                continue
            if algorithm is not None and site.algorithm != algorithm:
                continue
            have = env.get(site.subject)
            env[site.subject] = (
                site.properties if have is None else meet(have, site.properties)
            )
        return env

    def established(self, prop: Optional[str] = None) -> list[Fact]:
        out = [f for f in self.facts if f.kind == "establishes"]
        if prop is not None:
            out = [f for f in out if f.prop == str(prop)]
        return out

    def render(self) -> str:
        lines = [s.render() for s in self.call_sites()]
        lines += [f.render() for f in self.facts
                  if f.kind in ("establishes", "destroys",
                                "requires-missing")]
        return "\n".join(lines) if lines else "(no facts)"

    def to_dict(self) -> dict:
        return {
            "call_sites": [
                {
                    "line": s.line,
                    "algorithm": s.algorithm,
                    "function": s.function,
                    "subject": s.subject,
                    "container_kind": s.container_kind,
                    "properties": sorted(s.properties),
                    "properties_after": sorted(s.properties_after),
                    "recordings": s.recordings,
                }
                for s in self.call_sites()
            ],
            "facts": [
                {
                    "line": f.line, "kind": f.kind, "prop": f.prop,
                    "subject": f.subject, "source": f.source,
                    "function": f.function,
                }
                for f in self.facts
            ],
        }
