"""First-class semantic properties and their little lattice.

A :class:`Property` is what STLlint's entry/exit handlers establish and
check ("sorting algorithms introduce a sortedness property", Section 3.1),
what Simplicissimus rule guards may require in addition to a concept
(Section 3.2's STLlint-derived flow facts), and what taxonomy entries
declare they require/establish/destroy.

Properties subclass :class:`str` deliberately: every pre-existing consumer
kept properties as raw strings in sets (``"sorted" in c.properties``), and
a ``str`` subclass lets those sets, JSON reports, and suppression codes
keep working unchanged while the objects themselves carry the semantic
payload — what mutations destroy them and what weaker properties they
imply.

The lattice operations work on plain ``Iterable[str]`` and return
``frozenset[str]`` so callers never need to care whether they hold
registered :class:`Property` objects or bare names.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping, Optional

#: Mutation kinds the interpreter reports (one per container operation
#: class).  Invalidation is data-driven from these, not hard-coded at the
#: operation sites.
MUTATIONS = (
    "insert",      # positional insert
    "erase",       # positional erase
    "remove",      # erase-by-value
    "append",      # push_back / push_front
    "pop",         # pop_back / pop_front
    "reverse",     # in-place reordering that flips order
    "make-heap",   # heapify reordering
    "write",       # element overwrite through set_at / iterator set
    "clear",
)

_REGISTRY: dict[str, "Property"] = {}


class Property(str):
    """One named semantic property of a sequence/container.

    Attributes:
        description: one-line human rendering.
        destroyed_by: mutation kinds (from :data:`MUTATIONS`) after which
            the property can no longer be assumed.
        implies: weaker properties that hold whenever this one does
            (``strictly-sorted`` implies ``sorted`` and ``unique``).
        weakens_to: per-mutation downgrade instead of outright loss —
            appending to a ``heap`` leaves ``heap-except-last`` (exactly
            ``push_heap``'s precondition).
    """

    __slots__ = ("description", "destroyed_by", "implies", "weakens_to")

    def __new__(
        cls,
        name: str,
        *,
        description: str = "",
        destroyed_by: Iterable[str] = (),
        implies: Iterable[str] = (),
        weakens_to: Optional[Mapping[str, str]] = None,
    ) -> "Property":
        self = super().__new__(cls, name)
        self.description = description
        self.destroyed_by = frozenset(destroyed_by)
        self.implies = tuple(implies)
        self.weakens_to = dict(weakens_to or {})
        unknown = self.destroyed_by - set(MUTATIONS)
        unknown |= set(self.weakens_to) - set(MUTATIONS)
        if unknown:
            raise ValueError(
                f"property {name!r} names unknown mutation kind(s): "
                f"{sorted(unknown)}"
            )
        _REGISTRY[name] = self
        return self

    def __repr__(self) -> str:
        return f"Property({str.__repr__(self)})"


def get_property(name: str) -> Optional[Property]:
    """The registered :class:`Property` for ``name`` (None for unknown
    names — a bare string used as an ad-hoc property is legal and simply
    survives every mutation)."""
    return _REGISTRY.get(name)


# ---------------------------------------------------------------------------
# The standard properties
# ---------------------------------------------------------------------------

SORTED = Property(
    "sorted",
    description="elements are in nondecreasing order",
    destroyed_by=("insert", "append", "remove", "reverse", "make-heap",
                  "write"),
)

HEAP = Property(
    "heap",
    description="elements satisfy the binary-heap ordering",
    destroyed_by=("insert", "erase", "remove", "reverse", "append", "write"),
    weakens_to={"append": "heap-except-last"},
)

HEAP_TAIL = Property(
    "heap-except-last",
    description="a heap plus one appended element (push_heap's "
                "precondition)",
    destroyed_by=("insert", "erase", "remove", "reverse", "append", "write"),
)

DISTINCT = Property(
    "unique",
    description="no two elements compare equal",
    destroyed_by=("insert", "append", "write"),
)

STRICTLY_SORTED = Property(
    "strictly-sorted",
    description="sorted with no duplicates",
    destroyed_by=("insert", "append", "remove", "reverse", "make-heap",
                  "write"),
    implies=("sorted", "unique"),
)

SIZE_BOUNDED = Property(
    "size-bounded",
    description="the container's size is bounded by a known constant",
    destroyed_by=("insert", "append"),
)

ALL_PROPERTIES: tuple[Property, ...] = (
    SORTED, HEAP, HEAP_TAIL, DISTINCT, STRICTLY_SORTED, SIZE_BOUNDED,
)


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def closure(props: Iterable[str]) -> frozenset[str]:
    """Implication closure: everything that must hold given ``props``."""
    out: set[str] = set(props)
    frontier = list(out)
    while frontier:
        p = _REGISTRY.get(frontier.pop())
        if p is None:
            continue
        for implied in p.implies:
            if implied not in out:
                out.add(implied)
                frontier.append(implied)
    return frozenset(out)


def meet(a: Iterable[str], b: Iterable[str]) -> frozenset[str]:
    """What is known on *both* paths — the join-point operation of a
    may-analysis over must-hold properties."""
    return closure(a) & closure(b)


def join(a: Iterable[str], b: Iterable[str]) -> frozenset[str]:
    """What is known on *either* path (used for reporting, never for
    soundness decisions)."""
    return closure(a) | closure(b)


def invalidate(props: Iterable[str], mutation: str) -> frozenset[str]:
    """The properties surviving one mutation of the given kind.

    Registered properties consult their ``destroyed_by``/``weakens_to``
    tables; unregistered (ad-hoc string) properties survive everything,
    matching the pre-refactor behaviour of unknown entries.
    """
    if mutation == "clear":
        return frozenset()
    out: set[str] = set()
    for name in props:
        p = _REGISTRY.get(name)
        if p is None:
            out.add(name)
            continue
        weakened = p.weakens_to.get(mutation)
        if weakened is not None:
            out.add(weakened)
        elif mutation not in p.destroyed_by:
            out.add(name)
    return frozenset(out)


def holds(prop: str, props: Iterable[str]) -> bool:
    """Does ``prop`` follow from ``props`` under implication closure?"""
    return prop in closure(props)


class FactEnv(dict):
    """Subject → property-set environment handed to property-guarded
    rewrite rules (``{"v": {"sorted"}}``).  Built by hand in tests or from
    a :class:`~repro.facts.records.FactTable` call site."""

    def holds(self, subject: str, prop: str) -> bool:
        return holds(prop, self.get(subject, ()))

    def holds_all(self, subject: str, props: Iterable[str]) -> bool:
        have = closure(self.get(subject, ()))
        return all(p in have for p in props)
