"""OPT-MONO: rewrite proven-monomorphic generic call sites to their
specialized spellings.

The taxonomy passes in :mod:`repro.optimize.pipeline` swap one algorithm
for an asymptotically better one.  This pass removes a different cost:
*dispatch itself*.  When STLlint's facts prove that the container reaching
a generic call site has the same representation kind on every explored
path — ``sort(v)`` where ``v`` is a ``vector`` everywhere — the dynamic
concept-based overload resolution at that site can only ever pick one
overload.  The pass resolves it once, statically, and rewrites the callee
to the matching monomorphized spelling (``sort`` → ``sort__vector``), a
direct-call trampoline from :mod:`repro.runtime.specialize` that skips
the table lookup and generation check entirely.

Soundness is split between static and dynamic guarantees:

- statically, the rewrite only fires when the facts engine derived one
  container kind on every path into the site (a meet, not a sample), and
  the spelling's semantic spec aliases the base algorithm's
  (:data:`repro.stllint.specs.MONO_ALGORITHM_SPELLINGS`), so the verify
  stage's re-lint sees identical container effects;
- dynamically, the trampoline itself falls back to full dispatch for any
  unexpected call shape and is invalidated by registry mutations, so even
  a wrongly-assumed-monomorphic site degrades to correct dispatch, never
  to a wrong overload.

Disabled by default (``monomorphize=False`` / ``--monomorphize``): the
rewrite trades a dispatch per call for a named-spelling dependency, which
is an opt-in, not a default cleanup.
"""

from __future__ import annotations

from typing import Optional

from ..facts.records import FactTable
from ..sequences.algorithms import sort
from ..sequences.deque import Deque
from ..sequences.dlist import DList
from ..sequences.vector import Vector
from ..stllint.specs import MONO_ALGORITHM_SPELLINGS
from .pipeline import PlannedRewrite

#: STLlint container kind -> the concrete container type dispatch would
#: see at runtime for a value of that kind.
KIND_TO_TYPE: dict[str, type] = {
    "vector": Vector,
    "list": DList,
    "deque": Deque,
}

#: Source callee name -> the GenericFunction it denotes (the functions
#: whose dispatch this pass can resolve statically).
GENERIC_CALLS = {
    "sort": sort,
}

OPT_MONO_PREFIX = "OPT-MONO"


def plan_monomorphizations(
    table: FactTable,
    already: Optional[set[tuple[int, str]]] = None,
) -> list[PlannedRewrite]:
    """Plan ``generic call -> specialized spelling`` rewrites for every
    call site whose container kind is the same on all paths.

    ``already`` holds ``(line, callee)`` pairs claimed by earlier passes
    (the taxonomy selection); a site being rewritten to a different
    algorithm must not also be monomorphized.
    """
    claimed = already or set()
    plans: list[PlannedRewrite] = []
    for site in table.call_sites():
        if (site.line, site.algorithm) in claimed:
            continue
        spelling = MONO_ALGORITHM_SPELLINGS.get(
            (site.algorithm, site.container_kind)
        )
        if spelling is None:
            continue
        gf = GENERIC_CALLS.get(site.algorithm)
        arg_type = KIND_TO_TYPE.get(site.container_kind)
        if gf is None or arg_type is None:
            continue
        # Resolve the dispatch the rewrite freezes — and skip the site if
        # resolution fails (no matching/ambiguous overload): OPT-MONO only
        # rewrites calls whose dynamic outcome it can name.
        try:
            overload = gf.resolve((arg_type,))
        except Exception:  # noqa: BLE001 - unresolvable site: leave it
            continue
        plans.append(PlannedRewrite(
            line=site.line,
            function=site.function,
            subject=site.subject,
            call=site.algorithm,
            replacement=spelling,
            concept_from="generic dispatch",
            concept_to=f"monomorphic: {overload.name}",
            bound_from="1 dispatch per call",
            bound_to="0 dispatches per call",
            properties=(
                f"container kind {site.container_kind!r} on every path",
            ),
            savings=0.0,
            code=f"{OPT_MONO_PREFIX}-{site.algorithm}".replace("_", "-"),
        ))
    return plans
