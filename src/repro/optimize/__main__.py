"""``python -m repro.optimize`` entry point."""

import sys

from .cli import main

sys.exit(main())
