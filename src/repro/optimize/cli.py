"""Command-line entry point: ``python -m repro.optimize <paths>``.

Modes:

- default: report the rewrites that would be applied (with diffs via
  ``--diff``), leaving files untouched;
- ``--write``: apply verified rewrites in place;
- ``--check``: CI mode — exit 1 if any file has outstanding rewrites
  (so a tree that should already be optimal gates the build).

Exit status: 0 when nothing needs rewriting (or ``--write`` applied
everything cleanly), 1 when ``--check`` found outstanding rewrites or a
verification failure reverted a file, 2 on usage errors, 3 when the run
completed with *partial* results (an internal error or per-file
``--timeout-s`` deadline converted part of the pipeline into
OPT-INTERNAL / OPT-TIMEOUT findings instead of aborting the run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro import trace

from ..lint.driver import discover_files
from .pipeline import (
    DEFAULT_RESOURCE,
    DEFAULT_SIZE,
    OPT_INTERNAL,
    OPT_TIMEOUT,
    optimize_file,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.optimize",
        description=(
            "Source-to-source optimizer: collects STLlint facts, selects "
            "asymptotically better algorithms from the sequence taxonomy, "
            "rewrites call sites, and verifies the result by re-linting."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to optimize",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="report only; exit 1 if any rewrite is outstanding",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="apply verified rewrites to the files in place",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="print a unified diff for each changed file",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--resource", default=DEFAULT_RESOURCE,
        help="complexity resource driving selection "
             f"(default: {DEFAULT_RESOURCE})",
    )
    parser.add_argument(
        "--size", type=float, default=DEFAULT_SIZE,
        help="size n at which estimated savings are priced "
             f"(default: {DEFAULT_SIZE:g})",
    )
    parser.add_argument(
        "--engine", choices=("fixpoint", "inline"), default="fixpoint",
        help="STLlint engine for the facts and verify stages "
             "(default: fixpoint)",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="OUT.json",
        help="record per-stage pipeline spans and write a Chrome "
             "trace-event JSON (load via chrome://tracing)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=None, metavar="SECONDS",
        help="per-file pipeline deadline; on expiry the file gets an "
             "OPT-TIMEOUT finding, stays untouched, and the run "
             "continues (exit code 3)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.check and args.write:
        parser.print_usage(sys.stderr)
        print("error: --check and --write are mutually exclusive",
              file=sys.stderr)
        return 2
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    tracer = trace.enable() if args.trace is not None else trace.active()

    def run() -> list:
        results = []
        for f in discover_files(args.paths):
            results.append(optimize_file(
                f, write=args.write,
                resource=args.resource, size=args.size,
                timeout_s=args.timeout_s, engine=args.engine,
            ))
        return results

    if tracer is not None:
        with tracer.span("optimize.run", cat="optimize",
                         paths=[str(p) for p in args.paths]):
            results = run()
    else:
        results = run()
    if args.trace is not None:
        trace.export_chrome(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)

    outstanding = sum(
        len(r.plans) for r in results if not (args.write and r.verified)
    )
    reverted = sum(1 for r in results if r.reverted)
    if args.format == "json":
        print(json.dumps({
            "version": 1,
            "files": [r.to_dict() for r in results],
            "summary": {
                "files": len(results),
                "rewrites": sum(len(r.plans) for r in results),
                "reverted": reverted,
                "written": sum(
                    1 for r in results
                    if args.write and r.changed and r.verified
                ),
            },
        }, indent=2))
    else:
        for r in results:
            print(r.render())
            if args.diff and r.changed:
                sys.stdout.write(r.diff())
        total = sum(len(r.plans) for r in results)
        action = "applied" if args.write else "available"
        print(f"{total} rewrite(s) {action} across {len(results)} file(s)"
              + (f", {reverted} reverted" if reverted else ""))

    # 3 = partial results: one or more files hit crash isolation or a
    # deadline; their findings name them, the other files completed.
    partial = any(
        f.check in (OPT_INTERNAL, OPT_TIMEOUT)
        for r in results for f in r.findings
    )
    if partial:
        return 3
    if reverted:
        return 1
    if args.check and outstanding:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
