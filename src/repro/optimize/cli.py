"""Command-line entry point: ``python -m repro.optimize <paths>``.

Modes:

- default: report the rewrites that would be applied (with diffs via
  ``--diff``), leaving files untouched;
- ``--write``: apply verified rewrites in place;
- ``--check``: CI mode — exit 1 if any file has outstanding rewrites
  (so a tree that should already be optimal gates the build).

A thin batch view over :class:`repro.analysis.AnalysisSession`; shares
the common flag set and the 0/1/2/3 exit-code contract with
``repro.lint`` and ``repro.analysis`` (see ``--help``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import trace
from repro.analysis.args import (
    EXIT_CODES_EPILOG,
    EXIT_USAGE,
    common_parser,
    optimize_exit_code,
    session_from_args,
)

from .pipeline import DEFAULT_RESOURCE, DEFAULT_SIZE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.optimize",
        description=(
            "Source-to-source optimizer: collects STLlint facts, selects "
            "asymptotically better algorithms from the sequence taxonomy, "
            "rewrites call sites, and verifies the result by re-linting."
        ),
        epilog=EXIT_CODES_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        parents=[common_parser(cache_default=False)],
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to optimize",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="report only; exit 1 if any rewrite is outstanding",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="apply verified rewrites to the files in place",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="print a unified diff for each changed file",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text; --json is equivalent "
             "to --format json)",
    )
    parser.add_argument(
        "--resource", default=DEFAULT_RESOURCE,
        help="complexity resource driving selection "
             f"(default: {DEFAULT_RESOURCE})",
    )
    parser.add_argument(
        "--size", type=float, default=DEFAULT_SIZE,
        help="size n at which estimated savings are priced "
             f"(default: {DEFAULT_SIZE:g})",
    )
    parser.add_argument(
        "--monomorphize", action="store_true",
        help="also run the OPT-MONO pass: rewrite generic call sites "
             "whose container kind is the same on every path to their "
             "specialized direct-call spellings (e.g. sort -> "
             "sort__vector)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.check and args.write:
        parser.print_usage(sys.stderr)
        print("error: --check and --write are mutually exclusive",
              file=sys.stderr)
        return EXIT_USAGE
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    session = session_from_args(
        args, resource=args.resource, size=args.size,
        monomorphize=args.monomorphize,
    )
    tracer = trace.enable() if args.trace is not None else trace.active()

    if tracer is not None:
        with tracer.span("optimize.run", cat="optimize",
                         paths=[str(p) for p in args.paths]):
            results = session.optimize_paths(args.paths, write=args.write)
    else:
        results = session.optimize_paths(args.paths, write=args.write)
    if args.trace is not None:
        trace.export_chrome(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)

    reverted = sum(1 for r in results if r.reverted)
    if args.json or args.format == "json":
        from repro.analysis.schema import SCHEMA_VERSION

        print(json.dumps({
            "version": 1,               # legacy key, frozen forever
            "schema_version": SCHEMA_VERSION,
            "files": [r.to_dict() for r in results],
            "summary": {
                "files": len(results),
                "rewrites": sum(len(r.plans) for r in results),
                "reverted": reverted,
                "written": sum(
                    1 for r in results
                    if args.write and r.changed and r.verified
                ),
            },
        }, indent=2))
    else:
        for r in results:
            print(r.render())
            if args.diff and r.changed:
                sys.stdout.write(r.diff())
        total = sum(len(r.plans) for r in results)
        action = "applied" if args.write else "available"
        print(f"{total} rewrite(s) {action} across {len(results)} file(s)"
              + (f", {reverted} reverted" if reverted else ""))

    return optimize_exit_code(results, check=args.check, write=args.write)


if __name__ == "__main__":
    sys.exit(main())
