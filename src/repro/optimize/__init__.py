"""repro.optimize — the end-to-end source-to-source optimizer.

The paper's Section 3.2 observes that complete verification "would permit
high-level optimizations that improve the asymptotic performance of
generic algorithms".  This package closes that loop over the repo's own
machinery: STLlint's symbolic interpreter *proves* the flow facts
(:mod:`repro.facts`), the sequence taxonomy's per-algorithm metadata says
which algorithm those facts unlock and at what asymptotic price, and the
pipeline applies the replacement source-to-source — then re-lints its own
output to verify no precondition was broken and nothing further remains
(idempotence).

Use :meth:`repro.analysis.AnalysisSession.optimize_source` /
``optimize_file`` programmatically (the free functions here are
deprecated shims over the session), or ``python -m repro.optimize
<paths>`` (``--check`` for CI, ``--write`` to apply, ``--diff`` to
inspect).
"""

from .pipeline import (
    DEFAULT_RESOURCE,
    DEFAULT_SIZE,
    OptimizeResult,
    PlannedRewrite,
    apply_rewrites,
    optimize_file,
    optimize_source,
    plan_rewrites,
)

__all__ = [
    "DEFAULT_RESOURCE", "DEFAULT_SIZE",
    "OptimizeResult", "PlannedRewrite",
    "apply_rewrites", "optimize_file", "optimize_source", "plan_rewrites",
]
