"""The source-to-source optimization pipeline.

Four stages, each traced as its own span when tracing is active:

1. **facts** — run STLlint's symbolic interpreter over the module and
   collect must-hold properties at every specified-algorithm call site
   (:func:`repro.stllint.facts_collection.collect_facts`).
2. **select** — for each call site, ask the sequence taxonomy for the
   asymptotically cheapest substitutable algorithm whose property
   requirements the facts satisfy
   (:meth:`repro.concepts.taxonomy.Taxonomy.select_for_properties`).
3. **rewrite** — apply the selections source-to-source: locate the call
   by AST position and replace the callee name by column surgery, so
   formatting, comments, and line numbers are preserved.
4. **verify** — re-lint the rewritten module (no new warnings/errors may
   appear) and re-plan it (the pipeline must be idempotent: optimizing
   its own output proposes nothing).  Any failure reverts to the
   original source.

This is the end-to-end loop Section 3.2 sketches: "linear search on a
sorted sequence → binary search", driven by STLlint-derived flow facts
and taxonomy complexity data rather than hard-coded patterns.
"""

from __future__ import annotations

import ast
import difflib
import json
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Optional, Union

from ..concepts.taxonomy import Taxonomy
from ..facts.records import FactTable
from ..lint.driver import LintConfig, LintFinding, _lint_source_impl
from ..resilience import Deadline
from ..sequences.taxonomy import (
    CALL_TO_CONCEPT,
    CONCEPT_TO_CALL,
    KIND_CAPABILITIES,
    kind_weights,
    stl_taxonomy,
)
from ..stllint.facts_collection import collect_facts
from ..stllint.interpreter import DEFAULT_ENGINE
from ..trace import core as _trace

PathLike = Union[str, pathlib.Path]

#: Resource whose guarantee drives selection, and the size the asymptotic
#: win is priced at for reporting.
DEFAULT_RESOURCE = "comparisons"
DEFAULT_SIZE = 1000.0

#: Driver-resilience finding codes (mirroring the linter's LINT-INTERNAL /
#: LINT-TIMEOUT): an internal exception isolated to one file, and a
#: per-file deadline expiring between stages.
OPT_INTERNAL = "OPT-INTERNAL"
OPT_TIMEOUT = "OPT-TIMEOUT"


@dataclass(frozen=True)
class PlannedRewrite:
    """One selected call replacement, before application."""

    line: int
    function: str
    subject: str
    call: str                     # source callee name being replaced
    replacement: str              # new callee name
    concept_from: str             # taxonomy concept of the original call
    concept_to: str
    bound_from: str               # rendered complexity guarantees
    bound_to: str
    properties: tuple[str, ...]   # must-hold facts that justified it
    savings: float                # bound_from.at(n) - bound_to.at(n)
    code: str                     # OPT-* finding code

    def describe(self) -> str:
        props = ", ".join(self.properties) or "-"
        if self.code.startswith("OPT-MONO"):
            return (
                f"{self.call} -> {self.replacement}: [{props}] for "
                f"'{self.subject}', so dispatch resolves statically to "
                f"{self.concept_to} ({self.bound_from} -> {self.bound_to})"
            )
        return (
            f"{self.call} -> {self.replacement}: [{props}] holds for "
            f"'{self.subject}' on every path, so {self.concept_to} "
            f"({self.bound_to}) replaces {self.concept_from} "
            f"({self.bound_from}); est. savings "
            f"~{self.savings:.0f} {DEFAULT_RESOURCE} at n={DEFAULT_SIZE:g}"
        )

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "function": self.function,
            "subject": self.subject,
            "call": self.call,
            "replacement": self.replacement,
            "concept_from": self.concept_from,
            "concept_to": self.concept_to,
            "bound_from": self.bound_from,
            "bound_to": self.bound_to,
            "properties": list(self.properties),
            "savings": self.savings,
            "code": self.code,
        }


@dataclass
class OptimizeResult:
    """Outcome of one pipeline run over one module."""

    path: str
    original: str
    optimized: str
    plans: list[PlannedRewrite] = field(default_factory=list)
    findings: list[LintFinding] = field(default_factory=list)
    verified: bool = True
    reverted: bool = False
    revert_reason: str = ""

    @property
    def changed(self) -> bool:
        return self.optimized != self.original

    def diff(self) -> str:
        return "".join(difflib.unified_diff(
            self.original.splitlines(keepends=True),
            self.optimized.splitlines(keepends=True),
            fromfile=f"{self.path} (original)",
            tofile=f"{self.path} (optimized)",
        ))

    def render(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.render())
        if self.reverted:
            lines.append(
                f"{self.path}: rewrites REVERTED — {self.revert_reason}"
            )
        elif self.plans:
            lines.append(
                f"{self.path}: {len(self.plans)} rewrite(s), "
                f"verified by re-lint"
            )
        else:
            lines.append(f"{self.path}: nothing to optimize")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "changed": self.changed,
            "verified": self.verified,
            "reverted": self.reverted,
            "revert_reason": self.revert_reason,
            "rewrites": [p.to_dict() for p in self.plans],
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


def plan_rewrites(
    table: FactTable,
    taxonomy: Optional[Taxonomy] = None,
    resource: str = DEFAULT_RESOURCE,
    size: float = DEFAULT_SIZE,
) -> list[PlannedRewrite]:
    """Stage 2: data-driven selection.  A site is rewritten only when the
    taxonomy offers a *strictly* better algorithm, with the same result
    kind, whose property requirements are met by the site's must-hold
    facts.  "Better" is asymptotic for RAM-resident container kinds;
    for kinds whose storage charges per round trip (``kind_weights``
    returns io/cpu weights), both selection and the strictness check
    price the io dimension, and the site's kind unlocks
    capability-gated algorithms (``find`` → ``indexed_find``)."""
    taxonomy = taxonomy or stl_taxonomy()
    plans: list[PlannedRewrite] = []
    for site in table.call_sites():
        concept_name = CALL_TO_CONCEPT.get(site.algorithm)
        if concept_name is None:
            continue
        current = taxonomy.algorithms.get(concept_name)
        if current is None:
            continue
        weights = kind_weights(site.container_kind, cpu_resource=resource)
        capabilities: frozenset[str] = frozenset()
        if weights is not None:
            capabilities = KIND_CAPABILITIES[
                site.container_kind].capability_names()
        best = taxonomy.select_for_properties(
            current.problem, site.properties, resource,
            result=current.result or None,
            capabilities=capabilities, weights=weights, size=size,
        )
        if best is None or best.name == current.name:
            continue
        cur_bound = current.all_guarantees().get(resource)
        new_bound = best.all_guarantees().get(resource)
        if cur_bound is None or new_bound is None:
            continue
        if weights is None:
            if not (new_bound < cur_bound):
                continue
            saved = cur_bound.at(n=size) - new_bound.at(n=size)
        else:
            cur_cost = current.weighted_cost(weights, size)
            new_cost = best.weighted_cost(weights, size)
            if not (new_cost < cur_cost):
                continue
            saved = cur_cost - new_cost
        replacement = CONCEPT_TO_CALL.get(best.name)
        if replacement is None or replacement == site.algorithm:
            continue
        plans.append(PlannedRewrite(
            line=site.line,
            function=site.function,
            subject=site.subject,
            call=site.algorithm,
            replacement=replacement,
            concept_from=current.name,
            concept_to=best.name,
            bound_from=str(cur_bound),
            bound_to=str(new_bound),
            properties=tuple(sorted(
                str(p) for p in best.requires_properties
            )),
            savings=saved,
            code=f"OPT-{site.algorithm}-to-{replacement}".replace("_", "-"),
        ))
    return plans


def apply_rewrites(source: str, plans: list[PlannedRewrite]) -> str:
    """Stage 3: column-precise callee renaming.  Only ``name(...)`` call
    nodes whose (line, name) matches a plan are touched; everything else
    — formatting, comments, strings mentioning the name — is preserved."""
    if not plans:
        return source
    wanted = {(p.line, p.call): p.replacement for p in plans}
    lines = source.splitlines(keepends=True)
    # Collect (line, col_start, col_end, replacement), applied
    # right-to-left per line so earlier columns stay valid.
    edits: list[tuple[int, int, int, str]] = []
    for node in ast.walk(ast.parse(source)):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        replacement = wanted.get((node.func.lineno, node.func.id))
        if replacement is None:
            continue
        edits.append((
            node.func.lineno, node.func.col_offset,
            node.func.end_col_offset, replacement,
        ))
    for lineno, start, end, replacement in sorted(edits, reverse=True):
        text = lines[lineno - 1]
        lines[lineno - 1] = text[:start] + replacement + text[end:]
    return "".join(lines)


def _problem_findings(
    source: str, path: str, engine: str = DEFAULT_ENGINE,
) -> set[tuple[int, str]]:
    """(line, check) pairs at warning severity or worse."""
    report = _lint_source_impl(source, path=path,
                               config=LintConfig(engine=engine))
    return {
        (f.line, f.check) for f in report.findings
        if f.severity in ("error", "warning")
    }


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


def _timeout_result(result: OptimizeResult, path: str,
                    budget: float) -> OptimizeResult:
    result.verified = False
    result.optimized = result.original
    result.findings.append(LintFinding(
        path=path, function="<module>", line=0, severity="error",
        check=OPT_TIMEOUT,
        message=(
            f"optimization budget of {budget:g}s exhausted; "
            f"file left untouched, run continues"
        ),
    ))
    return result


def _optimize_source_impl(
    source: str,
    path: str = "<string>",
    taxonomy: Optional[Taxonomy] = None,
    resource: str = DEFAULT_RESOURCE,
    size: float = DEFAULT_SIZE,
    deadline: Optional[Deadline] = None,
    engine: Optional[str] = None,
    monomorphize: bool = False,
) -> OptimizeResult:
    """Run the full facts → select → rewrite → verify pipeline.

    ``deadline`` (usually from ``--timeout-s``) is checked between
    stages; on expiry the file is reported with an OPT-TIMEOUT finding
    and left untouched — cooperative, so a stage in progress finishes.

    ``engine`` selects the STLlint analysis engine used by the facts
    and verify stages (default: the fixpoint engine).

    ``monomorphize`` additionally runs the OPT-MONO pass
    (:func:`repro.optimize.monomorphize.plan_monomorphizations`):
    generic call sites whose container kind is provably the same on
    every path are rewritten to their specialized direct-call spellings.
    """
    tr = _trace.ACTIVE
    taxonomy = taxonomy or stl_taxonomy()
    engine = engine or DEFAULT_ENGINE
    result = OptimizeResult(path=path, original=source, optimized=source)
    if deadline is not None and deadline.expired():
        return _timeout_result(result, path, deadline.budget)

    try:
        if tr is None:
            table = collect_facts(source, engine=engine)
        else:
            with tr.span("optimize.facts", cat="optimize", path=path,
                         engine=engine) as sp:
                table = collect_facts(source, engine=engine)
                sp.set("call_sites", len(table.call_sites()))
    except SyntaxError as exc:
        result.verified = False
        result.findings.append(LintFinding(
            path=path, function="<module>", line=exc.lineno or 0,
            severity="error", check="parse-error",
            message=f"file could not be parsed: {exc.msg}",
        ))
        return result

    def select() -> list[PlannedRewrite]:
        selected = plan_rewrites(table, taxonomy, resource, size)
        if monomorphize:
            from .monomorphize import plan_monomorphizations

            selected += plan_monomorphizations(
                table, {(p.line, p.call) for p in selected}
            )
        return selected

    if deadline is not None and deadline.expired():
        return _timeout_result(result, path, deadline.budget)
    if tr is None:
        plans = select()
    else:
        with tr.span("optimize.select", cat="optimize", path=path) as sp:
            plans = select()
            sp.set("plans", len(plans))
            for p in plans:
                tr.event(
                    "optimize.plan", cat="optimize", line=p.line,
                    call=p.call, replacement=p.replacement,
                    properties=list(p.properties), savings=p.savings,
                )
    if not plans:
        return result

    if deadline is not None and deadline.expired():
        return _timeout_result(result, path, deadline.budget)
    if tr is None:
        optimized = apply_rewrites(source, plans)
    else:
        with tr.span("optimize.rewrite", cat="optimize", path=path) as sp:
            optimized = apply_rewrites(source, plans)
            sp.set("rewrites", len(plans))

    def verify() -> tuple[bool, str]:
        # No new warnings/errors relative to the input...
        before = _problem_findings(source, path, engine)
        after = _problem_findings(optimized, path, engine)
        introduced = after - before
        if introduced:
            rendered = ", ".join(
                f"L{line}:{check}" for line, check in sorted(introduced)
            )
            return False, f"re-lint found new problems ({rendered})"
        # ...and nothing further to do: the pipeline is idempotent (the
        # re-plan runs the same pass set, including OPT-MONO when on).
        retable = collect_facts(optimized, engine=engine)
        again = plan_rewrites(retable, taxonomy, resource, size)
        if monomorphize:
            from .monomorphize import plan_monomorphizations

            again += plan_monomorphizations(
                retable, {(p.line, p.call) for p in again}
            )
        if again:
            return False, (
                f"not idempotent: optimized output still proposes "
                f"{len(again)} rewrite(s)"
            )
        return True, ""

    if deadline is not None and deadline.expired():
        return _timeout_result(result, path, deadline.budget)
    # The verify stage must never leave the rewrite in force: whatever
    # happens in here — a lint regression, a non-idempotent plan, a
    # SyntaxError, or verification *itself* crashing — ``ok`` stays False
    # unless verify() returned cleanly, and the finally-block pins
    # ``result.optimized`` back to the original until ok is proven.
    ok, reason = False, "verification did not complete"
    try:
        if tr is None:
            ok, reason = verify()
        else:
            with tr.span("optimize.verify", cat="optimize", path=path) as sp:
                ok, reason = verify()
                sp.set("ok", ok)
    except SyntaxError as exc:
        ok, reason = False, f"rewritten source does not parse: {exc.msg}"
    except Exception as exc:  # noqa: BLE001 - verification crash == revert
        ok, reason = False, (
            f"verification raised {type(exc).__name__}: {exc}"
        )
    finally:
        if not ok:
            result.optimized = result.original

    src_lines = source.splitlines()
    for p in plans:
        line_text = (
            src_lines[p.line - 1] if 1 <= p.line <= len(src_lines) else ""
        )
        result.findings.append(LintFinding(
            path=path, function=p.function, line=p.line,
            severity="suggestion", check=p.code,
            message=p.describe(), source_line=line_text,
        ))

    if not ok:
        result.verified = False
        result.reverted = True
        result.revert_reason = reason
        return result

    result.plans = plans
    result.optimized = optimized
    return result


def _internal_result(path: str, source: str, exc: Exception) -> OptimizeResult:
    result = OptimizeResult(
        path=path, original=source, optimized=source,
        verified=False, reverted=True,
        revert_reason=f"internal error: {type(exc).__name__}: {exc}",
    )
    result.findings.append(LintFinding(
        path=path, function="<module>", line=0, severity="error",
        check=OPT_INTERNAL,
        message=(
            f"internal error while optimizing this file: "
            f"{type(exc).__name__}: {exc}; file skipped, run continues"
        ),
    ))
    return result


def _write_optimized(p: pathlib.Path, source: str,
                     result: OptimizeResult) -> None:
    """Apply a verified rewrite to disk with torn-write protection."""
    try:
        p.write_text(result.optimized, encoding="utf-8")
    except BaseException:
        # A torn write must not strand a half-rewritten file.
        p.write_text(source, encoding="utf-8")
        raise


def _optimize_file_impl(
    path: PathLike,
    write: bool = False,
    taxonomy: Optional[Taxonomy] = None,
    resource: str = DEFAULT_RESOURCE,
    size: float = DEFAULT_SIZE,
    timeout_s: Optional[float] = None,
    engine: Optional[str] = None,
    monomorphize: bool = False,
) -> OptimizeResult:
    """Optimize one file on disk; with ``write=True`` the rewritten
    source replaces the file (only when verification passed).

    Per-file crash isolation: any internal exception — decode failure,
    pipeline bug, even a failing write — becomes an OPT-INTERNAL finding
    on this file's result and the caller's loop continues.
    """
    p = pathlib.Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return _internal_result(str(p), "", exc)
    deadline = Deadline.after(timeout_s) if timeout_s is not None else None
    try:
        result = _optimize_source_impl(
            source, path=str(p), taxonomy=taxonomy, resource=resource,
            size=size, deadline=deadline, engine=engine,
            monomorphize=monomorphize,
        )
        if write and result.changed and result.verified:
            _write_optimized(p, source, result)
        return result
    except Exception as exc:  # noqa: BLE001 - per-file crash isolation
        return _internal_result(str(p), source, exc)


# ---------------------------------------------------------------------------
# Deprecated public surface (one-release migration window)
# ---------------------------------------------------------------------------


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.optimize.{name}() is deprecated; construct a "
        "repro.analysis.AnalysisSession and call its equivalent method "
        "(this shim is kept for one release)",
        DeprecationWarning, stacklevel=3,
    )


def optimize_source(
    source: str,
    path: str = "<string>",
    taxonomy: Optional[Taxonomy] = None,
    resource: str = DEFAULT_RESOURCE,
    size: float = DEFAULT_SIZE,
    deadline: Optional[Deadline] = None,
    engine: Optional[str] = None,
) -> OptimizeResult:
    """Deprecated: use
    :meth:`repro.analysis.AnalysisSession.optimize_source`."""
    _deprecated("optimize_source")
    from repro.analysis import AnalysisConfig, AnalysisSession

    if taxonomy is not None or deadline is not None:
        # Injected taxonomies/deadlines have no config-level equivalent;
        # serve these calls directly (still deprecated).
        return _optimize_source_impl(
            source, path=path, taxonomy=taxonomy, resource=resource,
            size=size, deadline=deadline, engine=engine,
        )
    session = AnalysisSession(AnalysisConfig(
        engine=engine or DEFAULT_ENGINE, resource=resource, size=size,
    ))
    return session.optimize_source(source, path=path)


def optimize_file(
    path: PathLike,
    write: bool = False,
    taxonomy: Optional[Taxonomy] = None,
    resource: str = DEFAULT_RESOURCE,
    size: float = DEFAULT_SIZE,
    timeout_s: Optional[float] = None,
    engine: Optional[str] = None,
) -> OptimizeResult:
    """Deprecated: use
    :meth:`repro.analysis.AnalysisSession.optimize_file`."""
    _deprecated("optimize_file")
    from repro.analysis import AnalysisConfig, AnalysisSession

    if taxonomy is not None:
        return _optimize_file_impl(
            path, write=write, taxonomy=taxonomy, resource=resource,
            size=size, timeout_s=timeout_s, engine=engine,
        )
    session = AnalysisSession(AnalysisConfig(
        engine=engine or DEFAULT_ENGINE, resource=resource, size=size,
        timeout_s=timeout_s,
    ))
    return session.optimize_file(path, write=write)
