"""Distributed-algorithms substrate (Section 4): a discrete-event
message-passing simulator with topologies, timing models, failure
injection, local-computation accounting, classic algorithms, and the
seven-dimension concept taxonomy."""

from .core import Context, Message, Process
from .failures import (
    FailurePlan,
    FailurePlanError,
    PartitionEvent,
    byzantine_lying_id,
    churn,
    crash,
    heal,
    partition,
)
from .metrics import RunMetrics
from .network import (
    Arbitrary,
    Complete,
    Grid,
    Line,
    Ring,
    Star,
    Topology,
    Tree,
    random_connected,
)
from .reliable import (
    ReliableChannel,
    ReliableProcess,
    ResilientFloodSet,
    run_echo_reliable,
    run_floodset_reliable,
    wrap_reliable,
)
from .algorithms.replog import (
    ReplicatedLog,
    ReplicatedLogRecord,
    record_run,
    run_replicated_log,
)
from .sharded import ShardedSimulator
from .simulator import SimulationError, Simulator, run_algorithm
from .taxonomy import (
    DIMENSIONS,
    Classification,
    DistributedTaxonomy,
    TaxonomyEntry,
    refines,
    standard_taxonomy,
)
from .timing import Asynchronous, PartiallySynchronous, Synchronous, TimingModel
from . import algorithms

__all__ = [
    "Context", "Message", "Process",
    "FailurePlan", "FailurePlanError", "PartitionEvent",
    "crash", "churn", "partition", "heal", "byzantine_lying_id",
    "RunMetrics",
    "Topology", "Ring", "Complete", "Star", "Line", "Tree", "Grid",
    "Arbitrary", "random_connected",
    "Simulator", "ShardedSimulator", "SimulationError", "run_algorithm",
    "ReliableChannel", "ReliableProcess", "ResilientFloodSet",
    "wrap_reliable", "run_echo_reliable", "run_floodset_reliable",
    "ReplicatedLog", "ReplicatedLogRecord", "record_run",
    "run_replicated_log",
    "TimingModel", "Synchronous", "Asynchronous", "PartiallySynchronous",
    "DIMENSIONS", "Classification", "DistributedTaxonomy", "TaxonomyEntry",
    "refines", "standard_taxonomy",
    "algorithms",
]
