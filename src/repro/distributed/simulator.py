"""The discrete-event simulator driving process executions.

A single priority queue of delivery events; the timing model assigns
delays, the failure plan filters crashes/drops/corruption, and every event
updates :class:`~repro.distributed.metrics.RunMetrics`.  Under synchronous
timing, integer time boundaries are rounds and ``on_round`` hooks fire.
"""

from __future__ import annotations

import copy
import heapq
import math
from typing import Any, Callable, Optional, Sequence, Type

from ..trace import core as _trace
from .core import Context, Message, Process
from .failures import FailurePlan
from .metrics import RunMetrics
from .network import Topology
from .timing import Synchronous, TimingModel


class SimulationError(RuntimeError):
    """Raised on misconfiguration and (by default) on limit breaches;
    for breaches, ``metrics`` carries the partial run with
    ``truncated=True`` so post-mortems see how far the run got."""

    def __init__(self, message: str,
                 metrics: Optional[RunMetrics] = None) -> None:
        super().__init__(message)
        self.metrics = metrics


class Simulator:
    """Runs a set of processes over a topology under a timing model and
    failure plan.

    Hitting ``max_time``/``max_messages`` never looks like quiescence:
    the breach is detected in the run loop (not inside a process callback,
    where user ``try``/``except`` could swallow it), ``metrics.truncated``
    is set with the reason, and then either :class:`SimulationError` is
    raised (``on_limit="raise"``, the default) or the partial metrics are
    returned (``on_limit="truncate"``).
    """

    def __init__(
        self,
        topology: Topology,
        processes: Sequence[Process],
        timing: Optional[TimingModel] = None,
        failures: Optional[FailurePlan] = None,
        max_time: float = 1e6,
        max_messages: int = 5_000_000,
        on_limit: str = "raise",
        tracer: Optional[_trace.Tracer] = None,
    ) -> None:
        if on_limit not in ("raise", "truncate"):
            raise SimulationError(
                f"on_limit must be 'raise' or 'truncate', got {on_limit!r}"
            )
        if len(processes) != topology.n:
            raise SimulationError(
                f"{topology.n} processes expected, got {len(processes)}"
            )
        self.topology = topology
        self.processes = list(processes)
        self.timing = timing if timing is not None else Synchronous()
        self.failures = failures if failures is not None else FailurePlan()
        self.max_time = max_time
        self.max_messages = max_messages
        self.on_limit = on_limit
        self.tracer = tracer
        # Effective tracer: refreshed from the global at run() entry so
        # REPRO_TRACE=1 covers simulations constructed before enable().
        self._tracer: Optional[_trace.Tracer] = tracer
        self.metrics = RunMetrics(n=topology.n)
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Message]] = []
        self._seq = 0
        self._halted: set[int] = set()
        self._round_no = 0
        self._pending_spawns: list[tuple[float, Process, list[int]]] = []
        #: First limit breached (set by _send, consumed by the run loop).
        self._breach: Optional[str] = None
        #: rank -> construction-time state snapshot, taken before on_start
        #: for every churned rank (recovery = restore + on_recover).
        self._churn_snapshots: dict[int, dict] = {}

    # -- internal API used by Context ----------------------------------------

    def _send(self, msg: Message) -> None:
        if self.failures.crashed(msg.src, self.now):
            return
        self.metrics.messages_sent += 1
        self.metrics.per_process_sent[msg.src] += 1
        if self.metrics.messages_sent > self.max_messages:
            # Record the breach and let the run loop act on it: raising
            # here, inside the sending process's callback, would let a
            # broad ``except`` in user code eat the budget check.
            if self._breach is None:
                self._breach = (
                    f"message budget exceeded "
                    f"(max_messages={self.max_messages}; "
                    f"runaway algorithm?)"
                )
            return
        # Deterministic blocks (dead link, active partition) are checked
        # before the seeded loss draw, so plans without the new fields
        # consume RNG samples exactly as before.
        if self.failures.link_dead(msg.src, msg.dst):
            self.metrics.messages_dropped += 1
            tr = self._tracer
            if tr is not None:
                tr.event("sim.drop", cat="sim", src=msg.src, dst=msg.dst,
                         tag=msg.tag, t=self.now)
            return
        if self.failures.partitioned(msg.src, msg.dst, self.now):
            self.metrics.messages_dropped += 1
            self.metrics.partition_drops += 1
            tr = self._tracer
            if tr is not None:
                tr.event("sim.drop", cat="sim", src=msg.src, dst=msg.dst,
                         tag=msg.tag, t=self.now, reason="partition")
            return
        if self.failures.drops(msg.src, msg.dst):
            self.metrics.messages_dropped += 1
            tr = self._tracer
            if tr is not None:
                tr.event("sim.drop", cat="sim", src=msg.src, dst=msg.dst,
                         tag=msg.tag, t=self.now)
            return
        msg = self.failures.corrupt(msg)
        delay = self.timing.delay(msg, self.now)
        heapq.heappush(self._queue, (self.now + delay, self._seq, msg))
        self._seq += 1

    def _set_timer(self, rank: int, delay: float, tag: str,
                   payload: Any) -> None:
        if delay <= 0:
            delay = 1e-9
        msg = Message(rank, rank, tag, payload)
        heapq.heappush(self._queue, (self.now + delay, self._seq, msg))
        self._seq += 1

    def schedule_spawn(self, at: float, process: Process,
                       links: list[int]) -> None:
        """Dynamically add ``process`` to the system at time ``at``, wired
        to ``links`` (requires a topology with ``add_node`` — taxonomy
        dimension 7, dynamic process management).  The new process's
        ``on_start`` runs at join time."""
        if not hasattr(self.topology, "add_node"):
            raise SimulationError(
                f"topology {type(self.topology).__name__} does not support "
                f"dynamic joins"
            )
        self._pending_spawns.append((at, process, list(links)))
        self._pending_spawns.sort(key=lambda t: t[0])
        # A sentinel event keeps the queue non-empty until the spawn fires.
        heapq.heappush(self._queue, (at, self._seq, Message(-1, -1, "__spawn__")))
        self._seq += 1

    def _run_due_spawns(self, now: float) -> None:
        while self._pending_spawns and self._pending_spawns[0][0] <= now:
            _, proc, links = self._pending_spawns.pop(0)
            rank = self.topology.add_node(links)
            proc.rank = rank
            if len(self.processes) != rank:
                raise SimulationError("spawn rank out of sync")
            self.processes.append(proc)
            self.metrics.n = self.topology.n
            proc.on_start(self._context(rank))

    # -- execution -------------------------------------------------------------

    def _context(self, rank: int) -> Context:
        return Context(self, rank)

    def _deliver(self, msg: Message) -> None:
        if self.failures.crashed(msg.dst, self.now) or msg.dst in self._halted:
            return
        self.metrics.messages_delivered += 1
        tr = self._tracer
        if tr is not None:
            tr.event("sim.deliver", cat="sim", src=msg.src, dst=msg.dst,
                     tag=msg.tag, t=self.now)
        self.processes[msg.dst].on_message(self._context(msg.dst), msg)

    def _fire_round_hooks(self) -> None:
        self._round_no += 1
        self.metrics.rounds = self._round_no
        tr = self._tracer
        if tr is not None:
            tr.event("sim.round", cat="sim", round=self._round_no,
                     t=self.now)
        for p in self.processes:
            if not self.failures.crashed(p.rank, self.now) and \
                    p.rank not in self._halted:
                p.on_round(self._context(p.rank), self._round_no)

    def _truncate(self, reason: str) -> RunMetrics:
        """Mark the run as cut off by a limit and either raise or return
        the partial metrics, per ``on_limit``."""
        self.metrics.truncated = True
        self.metrics.truncation_reason = reason
        self.metrics.finish_time = self.now
        tr = self._tracer
        if tr is not None:
            tr.event("sim.truncated", cat="sim", reason=reason, t=self.now)
        if self.on_limit == "raise":
            raise SimulationError(reason, metrics=self.metrics)
        return self.metrics

    def run(self) -> RunMetrics:
        self._tracer = (
            self.tracer if self.tracer is not None else _trace.ACTIVE
        )
        tr = self._tracer
        if tr is None:
            return self._run()
        with tr.span("sim.run", cat="sim", n=self.topology.n,
                     timing=type(self.timing).__name__) as sp:
            metrics = self._run()
            sp.set("messages", metrics.messages_sent)
            sp.set("rounds", metrics.rounds)
            sp.set("truncated", metrics.truncated)
        return metrics

    def _recover(self, rank: int) -> None:
        """Revive a churned process: state rolls back to the construction
        snapshot (state loss), then ``on_recover`` replays its boot."""
        snapshot = self._churn_snapshots.get(rank)
        if snapshot is not None:
            proc = self.processes[rank]
            proc.__dict__.clear()
            proc.__dict__.update(copy.deepcopy(snapshot))
        self._halted.discard(rank)
        self.metrics.recoveries += 1
        tr = self._tracer
        if tr is not None:
            tr.event("sim.recover", cat="sim", rank=rank, t=self.now)
        self.processes[rank].on_recover(self._context(rank))

    def _schedule_churn(self) -> None:
        """Snapshot churned processes and queue their recovery events."""
        for rank in self.failures.churn:
            if not 0 <= rank < len(self.processes):
                raise SimulationError(
                    f"churn plan names rank {rank}, but only "
                    f"{len(self.processes)} processes exist"
                )
            self._churn_snapshots[rank] = copy.deepcopy(
                self.processes[rank].__dict__)
        for up, rank in self.failures.recoveries():
            heapq.heappush(
                self._queue, (up, self._seq, Message(-1, rank, "__recover__")))
            self._seq += 1

    def _run(self) -> RunMetrics:
        self._schedule_churn()
        # Start every live process.
        for p in self.processes:
            if not self.failures.crashed(p.rank, 0.0):
                p.on_start(self._context(p.rank))
        synchronous = isinstance(self.timing, Synchronous)
        last_round_boundary = 0
        while self._queue:
            if self._breach is not None:
                return self._truncate(self._breach)
            t, _, msg = heapq.heappop(self._queue)
            if t > self.max_time:
                return self._truncate(f"exceeded max_time={self.max_time}")
            if synchronous:
                boundary = math.floor(t)
                while last_round_boundary < boundary:
                    last_round_boundary += 1
                    self.now = float(last_round_boundary)
                    self._fire_round_hooks()
            self.now = t
            if msg.tag == "__spawn__" and msg.dst == -1:
                self._run_due_spawns(t)
                continue
            if msg.tag == "__recover__" and msg.src == -1:
                self._recover(msg.dst)
                continue
            self._deliver(msg)
        if self._breach is not None:
            return self._truncate(self._breach)
        self.metrics.finish_time = self.now
        if synchronous:
            self.metrics.rounds = max(self.metrics.rounds,
                                      int(math.ceil(self.now)))
        return self.metrics


def run_algorithm(
    process_cls: Type[Process],
    topology: Topology,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
    ids: Optional[Sequence[int]] = None,
    **params: Any,
) -> RunMetrics:
    """Convenience: instantiate ``process_cls`` on every node and run.

    ``ids`` optionally assigns distinct process identifiers (for
    id-based leader election worst/best-case constructions); default is
    the rank itself.
    """
    procs = []
    for rank in range(topology.n):
        pid = ids[rank] if ids is not None else rank
        procs.append(process_cls(rank, pid=pid, **params))
    sim = Simulator(topology, procs, timing, failures)
    return sim.run()
