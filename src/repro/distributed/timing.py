"""Timing models — taxonomy dimension 6.

"Timing properties required from the underlying network.  Further refining
this concept leads to synchronous, asynchronous, and partially-synchronous
networks."

A timing model assigns each message a delivery delay.  Synchronous delivery
takes exactly one round; asynchronous delay is unbounded (here: randomized
up to ``max_delay``, optionally adversarially reordered); partially
synchronous delay is arbitrary but bounded by Δ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .core import Message


class TimingModel:
    name: str = "timing"

    def delay(self, msg: Message, now: float) -> float:
        raise NotImplementedError


@dataclass
class Synchronous(TimingModel):
    """Lock-step rounds: every message sent in round r arrives at r+1.
    'Time' equals the round count."""

    name: str = "synchronous"

    def delay(self, msg: Message, now: float) -> float:
        # Deliver at the next integer round boundary.
        import math

        nxt = math.floor(now) + 1.0
        return nxt - now


@dataclass
class Asynchronous(TimingModel):
    """Unbounded (randomized) delays: delivery order is adversarial up to
    the seed.  No global rounds exist; 'time' is the makespan under the
    sampled delays."""

    max_delay: float = 10.0
    seed: int = 0
    name: str = "asynchronous"

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, msg: Message, now: float) -> float:
        return 0.001 + self._rng.random() * self.max_delay


@dataclass
class PartiallySynchronous(TimingModel):
    """Delays are arbitrary but bounded by ``bound`` (Δ)."""

    bound: float = 2.0
    seed: int = 0
    name: str = "partially-synchronous"

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, msg: Message, now: float) -> float:
        return 0.001 + self._rng.random() * (self.bound - 0.001)
