"""Run metrics: the measurements the taxonomy organizes.

"In most of the literature, the performance of parallel and distributed
algorithms is typically indicated only in terms of asymptotic bounds on
numbers of messages and time complexities, omitting other performance
issues.  For example, local computation at a node is rarely accounted for."

So we account for all three: messages (total and per-process), time
(makespan; equals rounds under synchronous timing), and local computation
(explicitly charged by algorithms via ``ctx.charge``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunMetrics:
    n: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_process_sent: Counter = field(default_factory=Counter)
    local_computation: Counter = field(default_factory=Counter)
    decisions: dict[int, Any] = field(default_factory=dict)
    finish_time: float = 0.0
    rounds: int = 0
    #: Reliable-transport accounting (zero unless processes run over a
    #: :class:`~repro.distributed.reliable.ReliableChannel`): data
    #: retransmissions, duplicate deliveries suppressed at receivers,
    #: acks sent, sends abandoned after the retry budget, and failure-
    #: detector suspicion events.
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    retries_gave_up: int = 0
    fd_suspicions: int = 0
    #: Partition/churn accounting: messages deterministically dropped by
    #: an active partition, retransmissions attempted across an active
    #: partition, processes recovered from churn, and leader-driven log
    #: replays after a follower lost state (next_index rollbacks).
    partition_drops: int = 0
    partition_retx: int = 0
    recoveries: int = 0
    recovery_replays: int = 0
    #: Replicated-log accounting: elections started, term adoptions,
    #: entries newly committed at a leader, every leadership assumption
    #: (term, rank), and the applied-prefix history
    #: (time, rank, applied-commands tuple) the safety axioms check.
    elections_started: int = 0
    term_changes: int = 0
    log_commits: int = 0
    leadership_events: list = field(default_factory=list)
    commit_history: list = field(default_factory=list)
    #: True when the run was cut off by ``max_time``/``max_messages``
    #: rather than reaching quiescence — a truncated run is NOT a
    #: completed one, and every consumer can (and should) tell them apart.
    truncated: bool = False
    truncation_reason: str = ""

    @property
    def total_local_computation(self) -> int:
        return sum(self.local_computation.values())

    @property
    def max_local_computation(self) -> int:
        return max(self.local_computation.values(), default=0)

    def consensus(self) -> Any:
        """The common decision, or None when processes disagree/undecided."""
        values = set(self.decisions.values())
        if len(values) == 1 and len(self.decisions) > 0:
            return next(iter(values))
        return None

    def agreement_among(self, ranks: list[int]) -> Any:
        values = {self.decisions.get(r) for r in ranks}
        if len(values) == 1:
            return next(iter(values))
        return None

    def summary(self) -> str:
        out = (
            f"n={self.n} messages={self.messages_sent} "
            f"(delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}) time={self.finish_time:.2f} "
            f"rounds={self.rounds} local-comp={self.total_local_computation} "
            f"(max/node={self.max_local_computation})"
        )
        if self.retransmissions or self.duplicates_suppressed \
                or self.retries_gave_up:
            out += (
                f" reliable[retx={self.retransmissions} "
                f"dups={self.duplicates_suppressed} acks={self.acks_sent} "
                f"gave-up={self.retries_gave_up}]"
            )
        if self.partition_drops or self.recoveries:
            out += (
                f" faults[part-drops={self.partition_drops} "
                f"part-retx={self.partition_retx} "
                f"recoveries={self.recoveries}]"
            )
        if self.elections_started or self.log_commits:
            out += (
                f" replog[elections={self.elections_started} "
                f"terms={self.term_changes} commits={self.log_commits} "
                f"replays={self.recovery_replays}]"
            )
        if self.truncated:
            out += f" TRUNCATED[{self.truncation_reason}]"
        return out

    def as_comparable(self) -> dict:
        """Every field as plain data — the bit-identity oracle the sharded
        event loop is held to (``sharded.as_comparable() ==
        serial.as_comparable()`` on the same seed)."""
        return {
            "n": self.n,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "per_process_sent": dict(self.per_process_sent),
            "local_computation": dict(self.local_computation),
            "decisions": dict(self.decisions),
            "finish_time": self.finish_time,
            "rounds": self.rounds,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "acks_sent": self.acks_sent,
            "retries_gave_up": self.retries_gave_up,
            "fd_suspicions": self.fd_suspicions,
            "partition_drops": self.partition_drops,
            "partition_retx": self.partition_retx,
            "recoveries": self.recoveries,
            "recovery_replays": self.recovery_replays,
            "elections_started": self.elections_started,
            "term_changes": self.term_changes,
            "log_commits": self.log_commits,
            "leadership_events": list(self.leadership_events),
            "commit_history": list(self.commit_history),
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
        }
