"""Run metrics: the measurements the taxonomy organizes.

"In most of the literature, the performance of parallel and distributed
algorithms is typically indicated only in terms of asymptotic bounds on
numbers of messages and time complexities, omitting other performance
issues.  For example, local computation at a node is rarely accounted for."

So we account for all three: messages (total and per-process), time
(makespan; equals rounds under synchronous timing), and local computation
(explicitly charged by algorithms via ``ctx.charge``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunMetrics:
    n: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_process_sent: Counter = field(default_factory=Counter)
    local_computation: Counter = field(default_factory=Counter)
    decisions: dict[int, Any] = field(default_factory=dict)
    finish_time: float = 0.0
    rounds: int = 0
    #: Reliable-transport accounting (zero unless processes run over a
    #: :class:`~repro.distributed.reliable.ReliableChannel`): data
    #: retransmissions, duplicate deliveries suppressed at receivers,
    #: acks sent, sends abandoned after the retry budget, and failure-
    #: detector suspicion events.
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    retries_gave_up: int = 0
    fd_suspicions: int = 0
    #: True when the run was cut off by ``max_time``/``max_messages``
    #: rather than reaching quiescence — a truncated run is NOT a
    #: completed one, and every consumer can (and should) tell them apart.
    truncated: bool = False
    truncation_reason: str = ""

    @property
    def total_local_computation(self) -> int:
        return sum(self.local_computation.values())

    @property
    def max_local_computation(self) -> int:
        return max(self.local_computation.values(), default=0)

    def consensus(self) -> Any:
        """The common decision, or None when processes disagree/undecided."""
        values = set(self.decisions.values())
        if len(values) == 1 and len(self.decisions) > 0:
            return next(iter(values))
        return None

    def agreement_among(self, ranks: list[int]) -> Any:
        values = {self.decisions.get(r) for r in ranks}
        if len(values) == 1:
            return next(iter(values))
        return None

    def summary(self) -> str:
        out = (
            f"n={self.n} messages={self.messages_sent} "
            f"(delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}) time={self.finish_time:.2f} "
            f"rounds={self.rounds} local-comp={self.total_local_computation} "
            f"(max/node={self.max_local_computation})"
        )
        if self.retransmissions or self.duplicates_suppressed \
                or self.retries_gave_up:
            out += (
                f" reliable[retx={self.retransmissions} "
                f"dups={self.duplicates_suppressed} acks={self.acks_sent} "
                f"gave-up={self.retries_gave_up}]"
            )
        if self.truncated:
            out += f" TRUNCATED[{self.truncation_reason}]"
        return out
