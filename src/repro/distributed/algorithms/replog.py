"""Leader election + replicated log (Raft-style) — the taxonomy's
ambitious corner: consensus that *survives* partitions, healing, and
node churn.

The algorithm is classic Raft restricted to what the simulator models:

- **terms** with at most one leader each (election safety follows from
  majority voting: each process votes once per term);
- **heartbeat-driven election** — followers arm randomized (seeded,
  deterministic) election timeouts and stand for election when the
  leader falls silent; when running over a
  :class:`~repro.distributed.reliable.ReliableChannel` the transport's
  eventually-perfect failure detector feeds in as extra evidence
  (a suspected leader triggers an immediate candidacy);
- **pre-vote** (Raft S9.6) — a would-be candidate first sounds out a
  quorum without touching its own term, and peers refuse the
  endorsement while they hear a live leader (leader stickiness); a
  partitioned replica therefore cannot inflate its term in isolation
  and depose a healthy leader when the partition heals;
- **quorum commit** — the leader replicates entries via AppendEntries
  piggybacked on heartbeats and commits an entry of its own term once a
  majority acks it; committed entries therefore survive any minority of
  crashes/churn, and the up-to-date-log voting rule preserves them
  across leader changes (leader completeness);
- **churn tolerance** — a recovered process comes back with *empty*
  state (the simulator's state-loss model); the consistency check in
  AppendEntries makes the leader roll ``next_index`` back and replay the
  log (counted in ``RunMetrics.recovery_replays``).

Every run is self-terminating: heartbeats and election attempts are
bounded, and a process stops rearming timers once it has applied the
run's ``expected`` command count — so the simulator quiesces instead of
beating forever.

Safety laws (no two leaders per term; committed entries never lost
across partition/heal/churn; applied prefixes pairwise consistent) are
written down as semantic axioms of the ``ReplicatedLogSafety`` concept
in :mod:`repro.resilience.concepts` and checked over seeded runs through
the standard model machinery; :class:`ReplicatedLogRecord` is the value
those axioms quantify over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Complete
from ..simulator import Simulator
from ..timing import Synchronous, TimingModel

PREVOTE_REQ = "prevote-req"
PREVOTE = "prevote"
VOTE_REQ = "vote-req"
VOTE = "vote"
APPEND = "append"
APPEND_OK = "append-ok"
PROPOSE = "propose"
ELECT = "election-timer"
HEARTBEAT = "heartbeat-timer"

NOOP = "__noop__"


def _is_noop(cmd: Any) -> bool:
    return isinstance(cmd, tuple) and len(cmd) > 0 and cmd[0] == NOOP


class ReplicatedLog(Process):
    """One replica of a Raft-style replicated log on a complete topology.

    ``proposals`` are the commands this replica wants committed; they are
    forwarded to whoever currently leads and resubmitted on every leader
    change until applied (the leader deduplicates by command identity).
    """

    def __init__(
        self,
        rank: int,
        n: int,
        proposals: Sequence[Any] = (),
        seed: int = 0,
        election_timeout: tuple[float, float] = (8.0, 16.0),
        heartbeat_every: float = 2.0,
        max_beats: int = 80,
        max_elections: int = 25,
        expected: Optional[int] = None,
        **params: Any,
    ) -> None:
        super().__init__(rank, **params)
        self.n = n
        self.majority = n // 2 + 1
        self.proposals = [("cmd", rank, i, v) for i, v in enumerate(proposals)]
        self.election_timeout = election_timeout
        self.heartbeat_every = heartbeat_every
        self.max_beats = max_beats
        self.max_elections = max_elections
        self.expected = expected
        self._rng = random.Random(1_000_003 * (seed + 1) + rank)
        # Replica state — ALL of it is lost on churn (the simulator's
        # state-loss model); safety rests on quorum intersection, not on
        # per-node durability.
        self.term = 0
        self.voted_for: Optional[int] = None
        self.role = "follower"
        self.leader: Optional[int] = None
        self.log: list[tuple[int, Any]] = []   # (term, command)
        self.commit_index = 0                   # committed entry count
        self.applied: list[Any] = []            # committed non-noop commands
        self.votes: set[int] = set()
        self.prevotes: set[int] = set()
        self.next_index: dict[int, int] = {}
        self.match_index: dict[int, int] = {}
        self._beats = 0
        self._elections = 0
        self._quiet_beats = 0
        self._last_leader_contact = 0.0

    # -- helpers ---------------------------------------------------------------

    def _peers(self) -> list[int]:
        return [p for p in range(self.n) if p != self.rank]

    def _election_delay(self) -> float:
        lo, hi = self.election_timeout
        return lo + self._rng.random() * (hi - lo)

    def _last_log_term(self) -> int:
        return self.log[-1][0] if self.log else 0

    def _done(self) -> bool:
        return self.expected is not None and len(self.applied) >= self.expected

    def _adopt_term(self, term: int, ctx: Context) -> None:
        if term > self.term:
            self.term = term
            self.voted_for = None
            self.role = "follower"
            ctx.metrics.term_changes += 1

    def _apply_to(self, ctx: Context, new_commit: int) -> None:
        """Advance commit_index and apply — the only place entries become
        visible, and the history the safety axioms audit."""
        if new_commit <= self.commit_index:
            return
        ctx.charge(new_commit - self.commit_index)
        for idx in range(self.commit_index, new_commit):
            _term, cmd = self.log[idx]
            if not _is_noop(cmd):
                self.applied.append(cmd)
        self.commit_index = new_commit
        ctx.metrics.commit_history.append(
            (ctx.now, self.rank, tuple(self.applied)))
        ctx.decide(tuple(self.applied))

    def _submit_own(self, ctx: Context) -> None:
        """(Re)submit every not-yet-applied own proposal to the leader."""
        pending = [c for c in self.proposals if c not in self.applied]
        if not pending:
            return
        if self.role == "leader":
            self._leader_append(ctx, pending)
        elif self.leader is not None:
            ctx.send(self.leader, PROPOSE, tuple(pending))

    def _leader_append(self, ctx: Context, cmds: Sequence[Any]) -> None:
        known = {cmd for _t, cmd in self.log}
        for cmd in cmds:
            if cmd not in known:
                self.log.append((self.term, cmd))
                known.add(cmd)

    # -- lifecycle -------------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if self.n == 1:
            self._become_leader(ctx)
            return
        ctx.set_timer(self._election_delay(), ELECT, None)

    def on_message(self, ctx: Context, msg: Message) -> None:
        handler = {
            ELECT: self._on_election_timer,
            HEARTBEAT: self._on_heartbeat_timer,
            PREVOTE_REQ: self._on_prevote_request,
            PREVOTE: self._on_prevote,
            VOTE_REQ: self._on_vote_request,
            VOTE: self._on_vote,
            APPEND: self._on_append,
            APPEND_OK: self._on_append_ok,
            PROPOSE: self._on_propose,
        }.get(msg.tag)
        if handler is not None:
            handler(ctx, msg)

    # -- election --------------------------------------------------------------

    def _leader_suspected(self, ctx: Context) -> bool:
        channel = getattr(ctx, "channel", None)
        return (
            channel is not None
            and self.leader is not None
            and self.leader in channel.suspected
        )

    def _on_election_timer(self, ctx: Context, msg: Message) -> None:
        if self.role == "leader" or self._done():
            return
        lo, _hi = self.election_timeout
        heard_recently = (ctx.now - self._last_leader_contact) < lo
        if heard_recently and not self._leader_suspected(ctx):
            ctx.set_timer(self._election_delay(), ELECT, None)
            return
        if self._elections >= self.max_elections:
            return
        self._elections += 1
        # Pre-vote (Raft S9.6): sound out a quorum WITHOUT bumping our
        # own term.  A replica isolated by a partition would otherwise
        # inflate its term unboundedly and depose a healthy leader the
        # moment the partition heals.
        self.prevotes = {self.rank}
        for p in self._peers():
            ctx.send(p, PREVOTE_REQ,
                     (self.term + 1, len(self.log), self._last_log_term()))
        ctx.set_timer(self._election_delay(), ELECT, None)

    def _on_prevote_request(self, ctx: Context, msg: Message) -> None:
        proposed, cand_len, cand_last_term = msg.payload
        lo, _hi = self.election_timeout
        up_to_date = (cand_last_term, cand_len) >= \
            (self._last_log_term(), len(self.log))
        # Leader stickiness: while we hear a live, unsuspected leader we
        # refuse to endorse elections (changes no local state either way).
        content_with_leader = (
            self.leader is not None
            and self.leader != msg.src
            and (ctx.now - self._last_leader_contact) < lo
            and not self._leader_suspected(ctx)
        )
        grant = proposed > self.term and up_to_date \
            and not content_with_leader
        ctx.send(msg.src, PREVOTE, (proposed, grant))

    def _on_prevote(self, ctx: Context, msg: Message) -> None:
        proposed, granted = msg.payload
        if (
            self.role == "leader"
            or proposed != self.term + 1
            or not granted
        ):
            return
        self.prevotes.add(msg.src)
        if len(self.prevotes) < self.majority:
            return
        # A quorum endorses the election: now bump the term for real.
        self.prevotes = set()
        self.term += 1
        ctx.metrics.term_changes += 1
        ctx.metrics.elections_started += 1
        self.role = "candidate"
        self.voted_for = self.rank
        self.votes = {self.rank}
        self.leader = None
        for p in self._peers():
            ctx.send(p, VOTE_REQ,
                     (self.term, len(self.log), self._last_log_term()))

    def _on_vote_request(self, ctx: Context, msg: Message) -> None:
        term, cand_len, cand_last_term = msg.payload
        self._adopt_term(term, ctx)
        up_to_date = (cand_last_term, cand_len) >= \
            (self._last_log_term(), len(self.log))
        grant = (
            term == self.term
            and self.voted_for in (None, msg.src)
            and up_to_date
        )
        if grant:
            self.voted_for = msg.src
            # Granting a vote is evidence an election is in progress:
            # suppress our own candidacy for one timeout (vote-split
            # avoidance, the standard Raft rule).
            self._last_leader_contact = ctx.now
        ctx.send(msg.src, VOTE, (self.term, grant))

    def _on_vote(self, ctx: Context, msg: Message) -> None:
        term, granted = msg.payload
        self._adopt_term(term, ctx)
        if self.role != "candidate" or term != self.term or not granted:
            return
        self.votes.add(msg.src)
        if len(self.votes) >= self.majority:
            self._become_leader(ctx)

    def _become_leader(self, ctx: Context) -> None:
        self.role = "leader"
        self.leader = self.rank
        self.votes = set()
        self.next_index = {p: len(self.log) for p in self._peers()}
        self.match_index = {p: 0 for p in self._peers()}
        self._quiet_beats = 0
        ctx.metrics.leadership_events.append((self.term, self.rank))
        # A fresh no-op lets this term's quorum commit everything before
        # it (a leader may only count replicas for entries of its own
        # term — the Raft commit rule).
        self.log.append((self.term, (NOOP, self.term, self.rank)))
        self._leader_append(
            ctx, [c for c in self.proposals if c not in self.applied])
        if self.n == 1:
            self._apply_to(ctx, len(self.log))
            return
        self._broadcast_appends(ctx)
        ctx.set_timer(self.heartbeat_every, HEARTBEAT, None)

    # -- replication -----------------------------------------------------------

    def _broadcast_appends(self, ctx: Context) -> None:
        for p in self._peers():
            ni = self.next_index.get(p, len(self.log))
            prev_term = self.log[ni - 1][0] if ni > 0 else 0
            entries = tuple(self.log[ni:])
            ctx.send(p, APPEND,
                     (self.term, ni, prev_term, entries, self.commit_index))

    def _on_heartbeat_timer(self, ctx: Context, msg: Message) -> None:
        if self.role != "leader":
            return
        self._beats += 1
        if self._beats > self.max_beats:
            return
        if self._done() and self.commit_index == len(self.log) and all(
            self.match_index.get(p, 0) >= len(self.log)
            for p in self._peers()
        ):
            # Everyone is fully replicated and caught up on the commit
            # index; a couple of farewell beats propagate it, then the
            # leader goes quiet so the run can quiesce.
            self._quiet_beats += 1
            if self._quiet_beats > 2:
                return
        self._broadcast_appends(ctx)
        ctx.set_timer(self.heartbeat_every, HEARTBEAT, None)

    def _on_append(self, ctx: Context, msg: Message) -> None:
        term, prev_len, prev_term, entries, leader_commit = msg.payload
        self._adopt_term(term, ctx)
        if term < self.term:
            ctx.send(msg.src, APPEND_OK,
                     (self.term, False, len(self.log)))
            return
        if self.role == "candidate":
            self.role = "follower"
        new_leader = self.leader != msg.src
        self.leader = msg.src
        self._last_leader_contact = ctx.now
        if prev_len > len(self.log) or (
            prev_len > 0 and self.log[prev_len - 1][0] != prev_term
        ):
            # Log inconsistency (typically: we lost state to churn, or a
            # stale leader's entries were uncommitted) — reject and let
            # the leader walk next_index back.
            ctx.send(msg.src, APPEND_OK,
                     (self.term, False, min(len(self.log), prev_len)))
        else:
            for offset, entry in enumerate(entries):
                idx = prev_len + offset
                if idx < len(self.log):
                    if self.log[idx] != entry:
                        del self.log[idx:]
                        self.log.append(entry)
                else:
                    self.log.append(entry)
            self._apply_to(ctx, min(leader_commit, len(self.log)))
            ctx.send(msg.src, APPEND_OK,
                     (self.term, True, prev_len + len(entries)))
        if new_leader:
            self._submit_own(ctx)

    def _on_append_ok(self, ctx: Context, msg: Message) -> None:
        term, ok, match = msg.payload
        self._adopt_term(term, ctx)
        if self.role != "leader" or term != self.term:
            return
        if not ok:
            # The follower's log diverged (state loss, stale suffix):
            # roll back and replay from the reported length.
            old = self.next_index.get(msg.src, len(self.log))
            self.next_index[msg.src] = max(0, min(old - 1, match))
            if self.next_index[msg.src] < old:
                ctx.metrics.recovery_replays += 1
            return
        self.match_index[msg.src] = max(
            self.match_index.get(msg.src, 0), match)
        self.next_index[msg.src] = max(
            self.next_index.get(msg.src, 0), match)
        # Quorum commit: the highest index replicated on a majority,
        # restricted to entries of the current term.
        counts = sorted(
            [self.match_index.get(p, 0) for p in self._peers()]
            + [len(self.log)],
            reverse=True,
        )
        candidate = counts[self.majority - 1]
        if candidate > self.commit_index and \
                self.log[candidate - 1][0] == self.term:
            newly = candidate - self.commit_index
            self._apply_to(ctx, candidate)
            ctx.metrics.log_commits += newly

    def _on_propose(self, ctx: Context, msg: Message) -> None:
        if self.role == "leader":
            self._leader_append(ctx, list(msg.payload))
        elif self.leader is not None and self.leader != self.rank:
            ctx.send(self.leader, PROPOSE, msg.payload)

    def __repr__(self) -> str:
        return (f"<ReplicatedLog rank={self.rank} term={self.term} "
                f"role={self.role} log={len(self.log)}>")


# ---------------------------------------------------------------------------
# Runner + safety record
# ---------------------------------------------------------------------------


def run_replicated_log(
    n: int,
    proposals: Optional[Mapping[int, Sequence[Any]]] = None,
    failures: Optional[FailurePlan] = None,
    timing: Optional[TimingModel] = None,
    seed: int = 0,
    heartbeat_interval: Optional[float] = None,
    reliable: bool = True,
    shards: Optional[int] = None,
    max_time: float = 1e6,
    on_limit: str = "raise",
    **params: Any,
) -> RunMetrics:
    """Run the replicated log on a complete topology.

    ``proposals`` maps rank -> commands that replica wants committed
    (default: rank 0 proposes ``["a", "b", "c"]``).  With ``reliable``
    (the default) every replica runs over a
    :class:`~repro.distributed.reliable.ReliableChannel`;
    ``heartbeat_interval`` additionally switches on the transport's
    failure detector, which feeds leader suspicion into elections.
    ``shards`` > 1 runs under the sharded event loop
    (:class:`~repro.distributed.sharded.ShardedSimulator`), bit-identical
    to the serial loop on the same seed.
    """
    from ..reliable import wrap_reliable

    if proposals is None:
        proposals = {0: ["a", "b", "c"]}
    expected = sum(len(v) for v in proposals.values())
    procs: list[Process] = [
        ReplicatedLog(
            r, n=n, proposals=proposals.get(r, ()), seed=seed,
            expected=expected, **params,
        )
        for r in range(n)
    ]
    if reliable:
        procs = wrap_reliable(procs, heartbeat_interval=heartbeat_interval)
    timing = timing if timing is not None else Synchronous()
    if shards is not None and shards > 1:
        from ..sharded import ShardedSimulator

        sim: Simulator = ShardedSimulator(
            Complete(n), procs, timing, failures, shards=shards,
            max_time=max_time, on_limit=on_limit)
    else:
        sim = Simulator(Complete(n), procs, timing, failures,
                        max_time=max_time, on_limit=on_limit)
    metrics = sim.run()
    metrics.expected_commands = tuple(  # type: ignore[attr-defined]
        ("cmd", r, i, v)
        for r in sorted(proposals)
        for i, v in enumerate(proposals[r])
    )
    return metrics


@dataclass(frozen=True)
class ReplicatedLogRecord:
    """What one run exposes to the safety axioms: every leadership
    assumption, every applied-prefix observation, the final applied
    prefix per replica, and the proposed command set."""

    n: int
    leadership: tuple  # ((term, rank), ...)
    history: tuple     # ((time, rank, applied-prefix-tuple), ...)
    finals: tuple      # ((rank, applied-prefix-tuple), ...)
    expected: tuple    # every proposed command

    def quorum(self) -> int:
        return self.n // 2 + 1

    def leaders_by_term(self) -> dict:
        out: dict[int, set[int]] = {}
        for term, rank in self.leadership:
            out.setdefault(term, set()).add(rank)
        return out

    def applied_prefixes(self) -> list[tuple]:
        """Every applied prefix ever observed, historical and final."""
        return [p for _t, _r, p in self.history] + \
            [p for _r, p in self.finals]

    def final_prefixes(self) -> list[tuple]:
        return [p for _r, p in self.finals]

    def expected_commands(self) -> tuple:
        return self.expected


def record_run(metrics: RunMetrics, n: int) -> ReplicatedLogRecord:
    """Distill a run's metrics into the record the axioms quantify over."""
    return ReplicatedLogRecord(
        n=n,
        leadership=tuple(metrics.leadership_events),
        history=tuple(metrics.commit_history),
        finals=tuple(sorted(
            (rank, tuple(prefix))
            for rank, prefix in metrics.decisions.items()
        )),
        expected=tuple(getattr(metrics, "expected_commands", ())),
    )
