"""Dynamic spanning-tree maintenance: taxonomy dimension 7.

"Process management. This classification accounts for static and dynamic
process management capabilities and for algorithms that allow new nodes to
join in dynamically as opposed to those that do not."

The static :mod:`spanning_tree` algorithm builds a tree once; this variant
additionally lets nodes *join a running system*: a newcomer (spawned via
:meth:`Simulator.schedule_spawn`) asks a neighbour for attachment; any
neighbour that already belongs to the tree grants it and adopts the
newcomer as a child.

Taxonomy classification: problem=spanning tree, topology=arbitrary,
failures=none, communication=message passing, strategy=probe echo,
timing=any, process management=**dynamic**.
"""

from __future__ import annotations

from typing import Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Arbitrary
from ..simulator import Simulator
from ..timing import TimingModel

JOIN = "join"              # initial flood (as in the static algorithm)
ATTACH_REQ = "attach?"     # newcomer -> neighbours
ATTACH_ACK = "attach!"     # tree member -> newcomer


class DynamicSpanningTree(Process):
    def __init__(self, rank: int, root: int = 0, joiner: bool = False,
                 **params) -> None:
        super().__init__(rank, **params)
        self.root = root
        self.joiner = joiner
        self.parent: Optional[int] = None
        self.in_tree = False

    def _adopt(self, ctx: Context, parent: int) -> None:
        self.parent = parent
        self.in_tree = True
        ctx.decide(parent)

    def on_start(self, ctx: Context) -> None:
        if self.joiner:
            # A dynamically spawned node: ask every physical neighbour.
            ctx.broadcast_neighbors(ATTACH_REQ)
            return
        if self.rank == self.root:
            self.parent = self.rank
            self.in_tree = True
            ctx.decide(self.rank)
            ctx.broadcast_neighbors(JOIN)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == JOIN:
            if not self.in_tree:
                ctx.charge(1)
                self._adopt(ctx, msg.src)
                ctx.broadcast_neighbors(JOIN, exclude=msg.src)
        elif msg.tag == ATTACH_REQ:
            if self.in_tree:
                ctx.send(msg.src, ATTACH_ACK)
        elif msg.tag == ATTACH_ACK:
            if not self.in_tree:
                ctx.charge(1)
                self._adopt(ctx, msg.src)


def run_dynamic_spanning_tree(
    n: int,
    edges: list[tuple[int, int]],
    joins: list[tuple[float, list[int]]],
    root: int = 0,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    """Build a tree over the initial topology, then admit one joiner per
    ``(time, links)`` entry."""
    topo = Arbitrary(n, edges)
    procs = [DynamicSpanningTree(r, root=root) for r in range(n)]
    sim = Simulator(topo, procs, timing, failures)
    for at, links in joins:
        sim.schedule_spawn(at, DynamicSpanningTree(-1, root=root, joiner=True),
                           links)
    return sim.run()
