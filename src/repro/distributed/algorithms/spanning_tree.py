"""Spanning-tree construction by probe-echo parent selection.

Taxonomy classification:
problem=spanning tree, topology=arbitrary (connected), failures=none,
communication=message passing, strategy=probe echo, timing=any (the tree
shape depends on delivery order under asynchrony — a property the
taxonomy benches demonstrate), process management=static.

Each process decides its parent; :func:`tree_edges` reassembles the tree.
"""

from __future__ import annotations

from typing import Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Topology
from ..simulator import Simulator
from ..timing import TimingModel

JOIN = "join"


class SpanningTree(Process):
    def __init__(self, rank: int, root: int = 0, **params) -> None:
        super().__init__(rank, **params)
        self.root = root
        self.parent: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        if self.rank == self.root:
            self.parent = self.rank
            ctx.decide(self.rank)  # root is its own parent
            ctx.broadcast_neighbors(JOIN)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag != JOIN or self.parent is not None:
            return
        ctx.charge(1)
        self.parent = msg.src
        ctx.decide(msg.src)
        ctx.broadcast_neighbors(JOIN, exclude=msg.src)


def run_spanning_tree(
    topology: Topology,
    root: int = 0,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    procs = [SpanningTree(r, root=root) for r in range(topology.n)]
    return Simulator(topology, procs, timing, failures).run()


def tree_edges(metrics: RunMetrics, root: int = 0) -> list[tuple[int, int]]:
    """(parent, child) edges from the decision map."""
    return [
        (parent, child)
        for child, parent in metrics.decisions.items()
        if child != root and parent is not None
    ]


def is_spanning_tree(metrics: RunMetrics, n: int, root: int = 0) -> bool:
    """Validate: every node decided, edges form a tree rooted at root."""
    if set(metrics.decisions) != set(range(n)):
        return False
    edges = tree_edges(metrics, root)
    if len(edges) != n - 1:
        return False
    # every child reaches the root through parents, acyclically
    parent = dict(metrics.decisions)
    for v in range(n):
        seen = set()
        u = v
        while u != root:
            if u in seen or u not in parent:
                return False
            seen.add(u)
            u = parent[u]
    return True
