"""FloodSet consensus: filling a taxonomy gap.

The taxonomy's gap query showed "no known algorithms" for the consensus
problem (bench T-distributed) — precisely the situation the paper says
"helps in the design of new ones".  FloodSet is the classic answer for the
synchronous/crash cell: to tolerate f crashes, run f+1 rounds; each round
every process broadcasts its set of known values; after f+1 rounds all live
processes hold the same set (at least one round must be crash-free, and a
crash-free round synchronizes everyone) and decide deterministically (the
minimum).

Taxonomy classification:
problem=consensus, topology=complete, failures=crash (up to f),
communication=message passing, strategy=distributed control,
timing=synchronous (fundamentally — the round structure IS the algorithm),
process management=static.

Guarantees: (f+1)·n² messages, f+1 rounds.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Complete
from ..simulator import Simulator
from ..timing import Synchronous

VALUES = "values"
TICK = "round-tick"


class FloodSet(Process):
    """Synchronous crash-tolerant consensus on the minimum initial value.

    Round k's broadcasts are sent at time k (+0.5 for k >= 1) and delivered
    at time k+1; a local timer at k+1.5 marks the round boundary *after*
    the deliveries, sidestepping the deliver-vs-hook ordering at integer
    times.
    """

    def __init__(self, rank: int, initial: Any = None, f: int = 1,
                 **params) -> None:
        super().__init__(rank, **params)
        self.known: set = {initial if initial is not None else rank}
        self.f = f
        self.decided = False
        self.decision: Any = None

    def on_start(self, ctx: Context) -> None:
        # Broadcast round 1; tick fires after its deliveries.
        ctx.broadcast_neighbors(VALUES, tuple(sorted(self.known)))
        ctx.set_timer(1.5, TICK, 1)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == VALUES:
            before = len(self.known)
            self.known.update(msg.payload)
            ctx.charge(max(1, len(self.known) - before))
        elif msg.tag == TICK:
            completed_round = msg.payload
            if completed_round < self.f + 1:
                ctx.broadcast_neighbors(VALUES, tuple(sorted(self.known)))
                ctx.set_timer(1.0, TICK, completed_round + 1)
            elif not self.decided:
                self.decided = True
                ctx.charge(len(self.known))
                self.decision = min(self.known)
                ctx.decide(self.decision)


def run_floodset(
    n: int,
    f: int = 1,
    values: Optional[list] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    """Run FloodSet tolerating up to ``f`` crashes (f+1 rounds)."""
    procs = []
    for r in range(n):
        v = values[r] if values is not None else r
        procs.append(FloodSet(r, initial=v, f=f))
    sim = Simulator(Complete(n), procs, timing=Synchronous(),
                    failures=failures)
    return sim.run()
