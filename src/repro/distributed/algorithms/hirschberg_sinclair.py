"""Hirschberg–Sinclair leader election on a bidirectional ring.

Taxonomy classification:
problem=leader election, topology=ring (bidirectional), failures=none,
communication=message passing, strategy=distributed control (doubling
probes), timing=any, process management=static.

Guarantee: O(n log n) messages *worst case* — each of the O(log n) phases
costs O(n) total because at most ⌈n/2^k⌉ candidates survive phase k.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Ring
from ..simulator import Simulator
from ..timing import TimingModel

PROBE = "probe"
REPLY = "reply"
LEADER = "leader"

LEFT, RIGHT = 0, 1


class HirschbergSinclair(Process):
    """Phased candidate probing: in phase k a candidate probes 2^k hops in
    both directions; probes are swallowed by larger ids; a candidate whose
    probe laps the whole ring is the leader."""

    def __init__(self, rank: int, pid: int = None, **params) -> None:  # type: ignore[assignment]
        super().__init__(rank, **params)
        self.pid = rank if pid is None else pid
        self.phase = 0
        self.replies = 0
        self.candidate = True
        self.leader: Optional[int] = None

    # Ring direction helpers (bidirectional ring: neighbors = [pred, succ]).
    def _out(self, ctx: Context, direction: int) -> int:
        nbrs = ctx.neighbors()
        if len(nbrs) == 1:  # n == 2: both directions are the same node
            return nbrs[0]
        return nbrs[0] if direction == LEFT else nbrs[1]

    def on_start(self, ctx: Context) -> None:
        if not ctx.neighbors():  # n == 1: trivially the leader
            self.leader = self.pid
            ctx.decide(self.pid)
            return
        self._launch_probes(ctx)

    def _launch_probes(self, ctx: Context) -> None:
        hops = 2 ** self.phase
        for direction in (LEFT, RIGHT):
            ctx.send(self._out(ctx, direction), PROBE,
                     (self.pid, self.phase, hops, direction))

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == PROBE:
            pid, phase, hops_left, direction = msg.payload
            ctx.charge(1)  # id comparison
            if pid == self.pid:
                # My own probe came all the way around: leader.
                if self.leader is None:
                    self.leader = self.pid
                    ctx.decide(self.pid)
                    ctx.send(self._out(ctx, RIGHT), LEADER, self.pid)
                return
            if pid < self.pid:
                return  # swallow
            if hops_left > 1:
                ctx.send(self._out(ctx, direction), PROBE,
                         (pid, phase, hops_left - 1, direction))
            else:
                # Turn around: reply travels back the opposite way.
                back = LEFT if direction == RIGHT else RIGHT
                ctx.send(self._out(ctx, back), REPLY, (pid, phase, back))
        elif msg.tag == REPLY:
            pid, phase, direction = msg.payload
            if pid != self.pid:
                ctx.send(self._out(ctx, direction), REPLY, msg.payload)
                return
            self.replies += 1
            if self.replies == 2:
                self.replies = 0
                self.phase += 1
                self._launch_probes(ctx)
        elif msg.tag == LEADER:
            if self.leader is None:
                self.leader = msg.payload
                ctx.decide(msg.payload)
                ctx.send(self._out(ctx, RIGHT), LEADER, msg.payload)


def run_hirschberg_sinclair(
    n: int,
    ids: Optional[Sequence[int]] = None,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    ring = Ring(n, directed=False)
    ids = list(ids) if ids is not None else list(range(n))
    procs = [HirschbergSinclair(r, pid=ids[r]) for r in range(n)]
    sim = Simulator(ring, procs, timing, failures)
    return sim.run()
