"""Classic distributed algorithms, each registered in the seven-dimension
taxonomy of :mod:`repro.distributed.taxonomy`."""

from .chang_roberts import (
    ChangRoberts,
    best_case_ids,
    run_chang_roberts,
    worst_case_ids,
)
from .hirschberg_sinclair import HirschbergSinclair, run_hirschberg_sinclair
from .flooding import Flooding, run_flooding
from .echo import Echo, run_echo
from .spanning_tree import SpanningTree, run_spanning_tree, tree_edges
from .bully import Bully, run_bully
from .floodset import FloodSet, run_floodset
from .itai_rodeh import ItaiRodeh, run_itai_rodeh
from .dynamic_tree import DynamicSpanningTree, run_dynamic_spanning_tree
from .token_ring import TokenRing, run_token_ring
from .replog import (
    ReplicatedLog,
    ReplicatedLogRecord,
    record_run,
    run_replicated_log,
)

__all__ = [
    "ChangRoberts", "run_chang_roberts", "worst_case_ids", "best_case_ids",
    "HirschbergSinclair", "run_hirschberg_sinclair",
    "Flooding", "run_flooding",
    "Echo", "run_echo",
    "SpanningTree", "run_spanning_tree", "tree_edges",
    "Bully", "run_bully",
    "FloodSet", "run_floodset",
    "ItaiRodeh", "run_itai_rodeh",
    "DynamicSpanningTree", "run_dynamic_spanning_tree",
    "TokenRing", "run_token_ring",
    "ReplicatedLog", "ReplicatedLogRecord", "record_run",
    "run_replicated_log",
]
