"""The echo (probe-echo) algorithm: broadcast + convergecast aggregation.

Taxonomy classification:
problem=broadcast+aggregation, topology=arbitrary (connected),
failures=none, communication=message passing, strategy=probe echo (one of
the paper's named strategy refinements: "centralized control, distributed
control, randomized, compositional, heart beat, probe echo"),
timing=any, process management=static.

Guarantee: exactly 2E messages; builds a spanning tree as a side effect and
folds every node's local value back to the initiator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Topology
from ..simulator import Simulator
from ..timing import TimingModel

PROBE = "probe"
ECHO = "echo"


class Echo(Process):
    """Chang's echo: probes flow outward establishing parents; echoes flow
    back carrying partial aggregates."""

    def __init__(self, rank: int, initiator: int = 0,
                 local_value: int = 1,
                 combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
                 **params) -> None:
        super().__init__(rank, **params)
        self.initiator = initiator
        self.local_value = local_value
        self.combine = combine
        self.parent: Optional[int] = None
        self.pending = 0
        self.acc = local_value
        self.started = False

    def on_start(self, ctx: Context) -> None:
        if self.rank == self.initiator:
            self.started = True
            nbrs = ctx.neighbors()
            self.pending = len(nbrs)
            if self.pending == 0:
                ctx.decide(self.acc)
                return
            ctx.broadcast_neighbors(PROBE)

    def _complete(self, ctx: Context) -> None:
        if self.pending == 0:
            if self.rank == self.initiator:
                ctx.decide(self.acc)
            else:
                ctx.send(self.parent, ECHO, self.acc)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == PROBE:
            if self.parent is None and self.rank != self.initiator:
                self.parent = msg.src
                self.pending = len(ctx.neighbors()) - 1
                if self.pending == 0:
                    ctx.send(self.parent, ECHO, self.acc)
                else:
                    ctx.broadcast_neighbors(PROBE, exclude=msg.src)
            else:
                # A probe over a non-tree edge *counts as* that edge's echo
                # (the classic bookkeeping that keeps the total at exactly
                # 2E messages).
                self.pending -= 1
                self._complete(ctx)
        elif msg.tag == ECHO:
            ctx.charge(1)
            if msg.payload is not None:
                self.acc = self.combine(self.acc, msg.payload)
            self.pending -= 1
            self._complete(ctx)


def run_echo(
    topology: Topology,
    initiator: int = 0,
    values: Optional[list] = None,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    """Aggregate (sum by default) every node's value at the initiator."""
    procs = []
    for r in range(topology.n):
        val = values[r] if values is not None else 1
        procs.append(Echo(r, initiator=initiator, local_value=val))
    return Simulator(topology, procs, timing, failures).run()
