"""The bully algorithm: leader election on a completely connected network
with crash failures.

Taxonomy classification:
problem=leader election, topology=completely connected graph,
failures=crash (non-Byzantine) — the point of bully over the ring
elections, which tolerate none, communication=message passing,
strategy=centralized takeover, timing=partially synchronous (needs
timeouts), process management=static.

Guarantee: O(n²) messages worst case; elects the highest-id *live* process.
"""

from __future__ import annotations

from typing import Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Complete
from ..simulator import Simulator
from ..timing import PartiallySynchronous, TimingModel

ELECTION = "election"
OK = "ok"
COORDINATOR = "coordinator"
TIMEOUT = "timeout"

#: Timeout must exceed a round trip under the timing bound Δ.
def _timeout_for(timing: TimingModel) -> float:
    bound = getattr(timing, "bound", None) or getattr(timing, "max_delay", 1.0)
    return 2.5 * float(bound)


class Bully(Process):
    def __init__(self, rank: int, pid: int = None, timeout: float = 5.0,
                 **params) -> None:  # type: ignore[assignment]
        super().__init__(rank, **params)
        self.pid = rank if pid is None else pid
        self.timeout = timeout
        self.leader: Optional[int] = None
        self.got_ok = False
        self.announced = False
        self.epoch = 0  # invalidates stale timers

    def _higher(self, ctx: Context) -> list[int]:
        return [r for r in ctx.neighbors() if r > self.rank]

    def on_start(self, ctx: Context) -> None:
        self._start_election(ctx)

    def _start_election(self, ctx: Context) -> None:
        self.got_ok = False
        self.epoch += 1
        higher = self._higher(ctx)
        if not higher:
            self._become_leader(ctx)
            return
        for r in higher:
            ctx.send(r, ELECTION, self.pid)
        ctx.set_timer(self.timeout, TIMEOUT, self.epoch)

    def _become_leader(self, ctx: Context) -> None:
        if self.announced:
            return
        self.announced = True
        self.leader = self.rank
        ctx.decide(self.rank)
        for r in ctx.neighbors():
            ctx.send(r, COORDINATOR, self.rank)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == ELECTION:
            ctx.charge(1)
            # A lower process is electing: suppress it and take over.
            ctx.send(msg.src, OK, self.pid)
            if self.leader is None and not self.announced and not self.got_ok:
                self._start_election(ctx)
        elif msg.tag == OK:
            self.got_ok = True
            self.epoch += 1  # cancel the pending timeout
        elif msg.tag == COORDINATOR:
            self.leader = msg.payload
            ctx.decide(msg.payload)
            self.epoch += 1
        elif msg.tag == TIMEOUT:
            if msg.payload == self.epoch and not self.got_ok \
                    and self.leader is None:
                # No higher process answered: they are dead; I win.
                self._become_leader(ctx)


def run_bully(
    n: int,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    timing = timing if timing is not None else PartiallySynchronous(bound=1.0)
    timeout = _timeout_for(timing)
    procs = [Bully(r, timeout=timeout) for r in range(n)]
    return Simulator(Complete(n), procs, timing, failures).run()
