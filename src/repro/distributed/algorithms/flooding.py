"""Flooding broadcast on an arbitrary topology.

Taxonomy classification:
problem=broadcast, topology=arbitrary (connected), failures=tolerates
message loss on redundant links, communication=message passing,
strategy=distributed control, timing=any, process management=static.

Guarantee: O(E) messages (each undirected link carries at most two copies),
time = eccentricity of the initiator (network diameter bound).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Topology
from ..simulator import Simulator
from ..timing import TimingModel

FLOOD = "flood"


class Flooding(Process):
    def __init__(self, rank: int, initiator: int = 0, value: Any = "v",
                 **params) -> None:
        super().__init__(rank, **params)
        self.initiator = initiator
        self.value = value
        self.received = False

    def on_start(self, ctx: Context) -> None:
        if self.rank == self.initiator:
            self.received = True
            ctx.decide(self.value)
            ctx.broadcast_neighbors(FLOOD, self.value)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag != FLOOD or self.received:
            return
        self.received = True
        ctx.charge(1)
        ctx.decide(msg.payload)
        ctx.broadcast_neighbors(FLOOD, msg.payload, exclude=msg.src)


def run_flooding(
    topology: Topology,
    initiator: int = 0,
    value: Any = "v",
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    procs = [Flooding(r, initiator=initiator, value=value)
             for r in range(topology.n)]
    return Simulator(topology, procs, timing, failures).run()
