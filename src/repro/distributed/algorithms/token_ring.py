"""Token-ring mutual exclusion.

Taxonomy classification:
problem=mutual exclusion, topology=ring, failures=none (token loss is
fatal — the classic limitation), communication=message passing,
strategy=circulating token (heart beat family), timing=any,
process management=static.

Guarantee: exactly one process holds the token at any time (safety);
every requesting process eventually enters (liveness, no failures);
1 message per critical-section entry plus idle circulation.
"""

from __future__ import annotations

from typing import Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Ring
from ..simulator import Simulator
from ..timing import TimingModel

TOKEN = "token"


class TokenRing(Process):
    """Each process wants the critical section ``requests`` times; the
    token carries a countdown of outstanding requests so it can stop
    circulating when everyone is done."""

    def __init__(self, rank: int, requests: int = 1, **params) -> None:
        super().__init__(rank, **params)
        self.requests_left = requests
        self.entries: list[float] = []

    def _enter_cs(self, ctx: Context) -> None:
        # The critical section itself: charge some local work.
        ctx.charge(5)
        self.entries.append(ctx.now)
        self.requests_left -= 1

    def on_start(self, ctx: Context) -> None:
        if self.rank == 0:
            total = ctx._sim.params_total_requests  # set by run_token_ring
            if self.requests_left > 0:
                self._enter_cs(ctx)
                total -= 1
            if total > 0:
                ctx.send(ctx.neighbors()[0], TOKEN, total)
            else:
                ctx.decide(len(self.entries))

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag != TOKEN:
            return
        outstanding = msg.payload
        if self.requests_left > 0:
            self._enter_cs(ctx)
            outstanding -= 1
        if outstanding > 0:
            ctx.send(ctx.neighbors()[0], TOKEN, outstanding)
        else:
            ctx.decide(len(self.entries))


def run_token_ring(
    n: int,
    requests_per_process: int = 1,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    ring = Ring(n, directed=True)
    procs = [TokenRing(r, requests=requests_per_process) for r in range(n)]
    sim = Simulator(ring, procs, timing, failures)
    sim.params_total_requests = n * requests_per_process  # type: ignore[attr-defined]
    metrics = sim.run()
    metrics.cs_entries = [  # type: ignore[attr-defined]
        (t, p.rank) for p in procs for t in p.entries
    ]
    return metrics
