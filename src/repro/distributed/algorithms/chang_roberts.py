"""Chang–Roberts leader election on a unidirectional ring.

Taxonomy classification:
problem=leader election, topology=ring (unidirectional), failures=none,
communication=message passing, strategy=distributed control (id chasing),
timing=any, process management=static.

Guarantees: O(n log n) messages on average over id arrangements, Θ(n²)
worst case — the canonical contrast with Hirschberg–Sinclair's O(n log n)
worst case that the taxonomy benches quantify.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Ring
from ..simulator import Simulator
from ..timing import TimingModel

ELECT = "elect"
LEADER = "leader"


class ChangRoberts(Process):
    """Each process launches its id clockwise; ids are swallowed by larger
    ones; the id that survives a full lap wins."""

    def __init__(self, rank: int, pid: int = None, **params) -> None:  # type: ignore[assignment]
        super().__init__(rank, **params)
        self.pid = rank if pid is None else pid
        self.leader: Optional[int] = None

    def _succ(self, ctx: Context) -> int:
        return ctx.neighbors()[0]  # unidirectional ring: single successor

    def on_start(self, ctx: Context) -> None:
        if not ctx.neighbors():  # n == 1: trivially the leader
            self.leader = self.pid
            ctx.decide(self.pid)
            return
        ctx.send(self._succ(ctx), ELECT, self.pid)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag == ELECT:
            ctx.charge(1)  # one id comparison
            incoming = msg.payload
            if incoming > self.pid:
                ctx.send(self._succ(ctx), ELECT, incoming)
            elif incoming == self.pid:
                # My id survived the full lap: I am the leader.
                self.leader = self.pid
                ctx.decide(self.pid)
                ctx.send(self._succ(ctx), LEADER, self.pid)
            # incoming < self.pid: swallow.
        elif msg.tag == LEADER:
            if self.leader is None:
                self.leader = msg.payload
                ctx.decide(msg.payload)
                ctx.send(self._succ(ctx), LEADER, msg.payload)
            # Announcement already seen: stop forwarding (lap complete).


def worst_case_ids(n: int) -> list[int]:
    """Ids decreasing along the travel direction: node k gets id n-k, so
    the id launched at node k survives k+1 hops before being swallowed at
    node 0 — total Θ(n²) messages."""
    return [n - k for k in range(n)]


def best_case_ids(n: int) -> list[int]:
    """Ids increasing along the travel direction: every non-maximal id is
    swallowed after one hop — Θ(n) election messages."""
    return list(range(1, n + 1))


def run_chang_roberts(
    n: int,
    ids: Optional[Sequence[int]] = None,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    ring = Ring(n, directed=True)
    ids = list(ids) if ids is not None else list(range(n))
    procs = [ChangRoberts(r, pid=ids[r]) for r in range(n)]
    sim = Simulator(ring, procs, timing, failures)
    return sim.run()
