"""Itai–Rodeh randomized leader election on an *anonymous* ring.

Fills the taxonomy's "randomized" strategy refinement (Section 4 names
"randomized" among the strategy dimension's values).  On an anonymous ring
(no built-in ids), deterministic election is impossible by symmetry; the
Itai–Rodeh algorithm breaks symmetry with coin flips: each phase, every
active candidate draws a random id and circulates it with a hop counter and
a uniqueness bit; a candidate whose id returns unique and maximal wins,
ties re-draw among the tied.

Taxonomy classification:
problem=leader election, topology=unidirectional ring, failures=none,
communication=message passing, strategy=randomized, timing=any
(implemented for both; ring size n must be known), process management=
static.

Guarantees: O(n log n) messages in expectation; terminates with
probability 1 (Las Vegas: the winner is always unique and legitimate).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core import Context, Message, Process
from ..failures import FailurePlan
from ..metrics import RunMetrics
from ..network import Ring
from ..simulator import Simulator
from ..timing import TimingModel

TOKEN = "ir-token"      # (phase, candidate_id, hops, unique_bit)
ELECTED = "ir-elected"


class ItaiRodeh(Process):
    """Anonymous-ring candidate.  ``id_space`` controls the per-phase draw
    range (larger = fewer collision rounds)."""

    def __init__(self, rank: int, n: int = 0, seed: int = 0,
                 id_space: int = 8, **params) -> None:
        super().__init__(rank, **params)
        self.n = n
        self.id_space = id_space
        # Derive an independent stream per process from the run seed; the
        # *algorithm* never sees self.rank (anonymity) — it is only used to
        # decorrelate the random streams, as physical noise would.
        self._rng = random.Random(seed * 1_000_003 + rank)
        self.active = True
        self.phase = 0
        self.my_id: Optional[int] = None
        self.leader = False
        self.done = False

    def _draw_and_send(self, ctx: Context) -> None:
        self.phase += 1
        self.my_id = self._rng.randint(1, self.id_space)
        ctx.send(ctx.neighbors()[0], TOKEN, (self.phase, self.my_id, 1, True))

    def on_start(self, ctx: Context) -> None:
        if self.n <= 1:
            self.leader = True
            ctx.decide("leader")
            return
        self._draw_and_send(ctx)

    def on_message(self, ctx: Context, msg: Message) -> None:
        if self.done:
            return
        if msg.tag == ELECTED:
            self.done = True
            if not self.leader:
                ctx.decide("non-leader")
                ctx.send(ctx.neighbors()[0], ELECTED, None)
            return
        phase, cid, hops, unique = msg.payload
        ctx.charge(1)
        succ = ctx.neighbors()[0]
        if not self.active:
            ctx.send(succ, TOKEN, (phase, cid, hops + 1, unique))
            return
        if hops == self.n:
            # The candidate's own token is back (anonymity: recognized by
            # hop count, not by identity).
            if unique:
                self.leader = True
                self.done = True
                ctx.decide("leader")
                ctx.send(succ, ELECTED, None)
            else:
                self._draw_and_send(ctx)  # tie among maxima: re-draw
            return
        # An active node compares (phase, id) lexicographically — under
        # asynchrony a fresh-phase token may pass nodes still holding an
        # older phase, and the later phase must dominate.
        theirs = (phase, cid)
        mine = (self.phase, self.my_id or 0)
        if theirs > mine:
            self.active = False
            ctx.send(succ, TOKEN, (phase, cid, hops + 1, unique))
        elif theirs == mine:
            ctx.send(succ, TOKEN, (phase, cid, hops + 1, False))
        # theirs < mine: swallow.


def run_itai_rodeh(
    n: int,
    seed: int = 0,
    id_space: int = 8,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
) -> RunMetrics:
    ring = Ring(n, directed=True)
    procs = [ItaiRodeh(r, n=n, seed=seed, id_space=id_space)
             for r in range(n)]
    sim = Simulator(ring, procs, timing, failures)
    metrics = sim.run()
    metrics.leaders = [p.rank for p in procs if p.leader]  # type: ignore[attr-defined]
    return metrics
