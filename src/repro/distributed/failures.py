"""Failure injection — taxonomy dimension 3.

"Tolerance to component failures.  Some algorithms do not tolerate any
failures while some can tolerate particular kinds of failures.  Further
refining this concept leads to Byzantine and non-Byzantine failures of
nodes and links."

A :class:`FailurePlan` is a schedulable fault DSL the simulator consults:

- **crashes** — permanent crash-stop times per rank;
- **churn** — crash-*recovery* intervals per rank (the process is down for
  ``[down, up)`` and comes back with **state loss**: the simulator restores
  its construction-time state and replays ``on_recover``);
- **partitions** — timed :class:`PartitionEvent`\\ s splitting the ranks
  into groups; cross-group traffic is dropped *deterministically* (no RNG
  sample is consumed, so adding a partition never perturbs the loss
  stream of an existing seed).  A ``heal`` is the event with no groups;
- **byzantine** payload corruption, **dead links**, scalar and per-link
  **loss** — as before, bit-identical for plans that use no new fields.

Plans *validate* (:meth:`FailurePlan.validate`) and *compose*
(:meth:`FailurePlan.compose`), so a loss plan, a partition schedule, and
a churn schedule written separately combine into one run's fault model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from .core import Message


class FailurePlanError(ValueError):
    """An ill-formed failure plan (overlapping churn intervals,
    non-disjoint partition groups, unordered events, ...)."""


@dataclass(frozen=True)
class PartitionEvent:
    """At time ``at`` the network splits into ``groups`` (a heal when
    ``groups`` is None): each group is a frozenset of ranks, ranks listed
    in no group form one implicit remainder group."""

    at: float
    groups: Optional[tuple[frozenset, ...]] = None

    @property
    def is_heal(self) -> bool:
        return self.groups is None


def _normalize_groups(
    groups: Optional[Iterable[Iterable[int]]],
) -> Optional[tuple[frozenset, ...]]:
    if groups is None:
        return None
    out = tuple(frozenset(g) for g in groups)
    seen: set[int] = set()
    for g in out:
        if not g:
            raise FailurePlanError("empty partition group")
        if seen & g:
            raise FailurePlanError(
                f"partition groups are not disjoint: rank(s) "
                f"{sorted(seen & g)} appear twice"
            )
        seen |= g
    return out


@dataclass
class FailurePlan:
    """Declarative failure schedule applied by the simulator."""

    #: rank -> crash time (no sends/receives at or after that time).
    crashes: dict[int, float] = field(default_factory=dict)
    #: rank -> payload corruption function applied to every outgoing message.
    byzantine: dict[int, Callable[[Any], Any]] = field(default_factory=dict)
    #: undirected links that silently drop every message.
    dead_links: set[tuple[int, int]] = field(default_factory=set)
    #: probability that any given message is lost (lossy network).
    loss_probability: float = 0.0
    #: per-link loss probabilities, keyed like ``dead_links`` (undirected,
    #: ``(min, max)`` normalized); a link's entry overrides the scalar
    #: ``loss_probability`` for traffic on that link only.
    link_loss: dict[tuple[int, int], float] = field(default_factory=dict)
    #: timed partition/heal schedule, consulted deterministically.
    partitions: list[PartitionEvent] = field(default_factory=list)
    #: rank -> sorted, non-overlapping ``(down, up)`` downtime intervals;
    #: at ``up`` the process recovers with state loss.
    churn: dict[int, list[tuple[float, float]]] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.link_loss = {
            (min(u, v), max(u, v)): p for (u, v), p in self.link_loss.items()
        }
        self.partitions = [
            e if isinstance(e, PartitionEvent)
            else PartitionEvent(e[0], _normalize_groups(e[1]))
            for e in self.partitions
        ]
        self.validate()

    # -- validation / composition ---------------------------------------------

    def validate(self) -> "FailurePlan":
        """Raise :class:`FailurePlanError` on an ill-formed schedule;
        returns self so construction pipelines can chain."""
        for e in self.partitions:
            _normalize_groups(e.groups)  # disjointness / non-emptiness
        at = None
        for e in sorted(self.partitions, key=lambda e: e.at):
            if at is not None and e.at == at:
                raise FailurePlanError(
                    f"two partition events at the same time {e.at}"
                )
            at = e.at
        self.partitions.sort(key=lambda e: e.at)
        for rank, intervals in self.churn.items():
            intervals.sort()
            prev_up = None
            for down, up in intervals:
                if not down < up:
                    raise FailurePlanError(
                        f"churn interval for rank {rank} must have "
                        f"down < up, got [{down}, {up})"
                    )
                if prev_up is not None and down < prev_up:
                    raise FailurePlanError(
                        f"overlapping churn intervals for rank {rank}"
                    )
                prev_up = up
            t = self.crashes.get(rank)
            if t is not None and intervals and intervals[-1][1] > t:
                raise FailurePlanError(
                    f"rank {rank} recovers at {intervals[-1][1]} after its "
                    f"permanent crash at {t}"
                )
        for p in list(self.link_loss.values()) + [self.loss_probability]:
            if not 0.0 <= p <= 1.0:
                raise FailurePlanError(f"loss probability {p} outside [0, 1]")
        return self

    def compose(self, other: "FailurePlan") -> "FailurePlan":
        """Merge two plans into a new one (the RNG seed is taken from
        ``self``).  Crashes take the earlier time, loss takes the max
        (scalar and per-link), dead links and churn union, partition
        schedules concatenate; a byzantine rank in both plans is an error.
        """
        overlap = set(self.byzantine) & set(other.byzantine)
        if overlap:
            raise FailurePlanError(
                f"both plans corrupt rank(s) {sorted(overlap)}; compose "
                f"cannot pick one"
            )
        crashes = dict(self.crashes)
        for r, t in other.crashes.items():
            crashes[r] = min(t, crashes[r]) if r in crashes else t
        link_loss = dict(self.link_loss)
        for k, p in other.link_loss.items():
            link_loss[k] = max(p, link_loss.get(k, 0.0))
        churn: dict[int, list[tuple[float, float]]] = {
            r: list(iv) for r, iv in self.churn.items()
        }
        for r, iv in other.churn.items():
            churn.setdefault(r, []).extend(iv)
        return FailurePlan(
            crashes=crashes,
            byzantine={**self.byzantine, **other.byzantine},
            dead_links=self.dead_links | other.dead_links,
            loss_probability=max(self.loss_probability,
                                 other.loss_probability),
            link_loss=link_loss,
            partitions=list(self.partitions) + list(other.partitions),
            churn=churn,
            seed=self.seed,
        )

    # -- queries used by the simulator ---------------------------------------

    def crashed(self, rank: int, now: float) -> bool:
        """Is ``rank`` down at ``now``?  True from a permanent crash time
        onward and inside every churn ``[down, up)`` interval."""
        t = self.crashes.get(rank)
        if t is not None and now >= t:
            return True
        for down, up in self.churn.get(rank, ()):
            if down <= now < up:
                return True
        return False

    def recoveries(self) -> list[tuple[float, int]]:
        """Every ``(up_time, rank)`` at which a churned process comes back
        (sorted) — the simulator schedules a recovery event for each."""
        out = [
            (up, rank)
            for rank, intervals in self.churn.items()
            for _down, up in intervals
        ]
        out.sort()
        return out

    def partition_groups(
        self, now: float
    ) -> Optional[tuple[frozenset, ...]]:
        """The partition in force at ``now`` (None when fully connected)."""
        active: Optional[tuple[frozenset, ...]] = None
        for e in self.partitions:
            if e.at > now:
                break
            active = e.groups
        return active

    def partitioned(self, u: int, v: int, now: float) -> bool:
        """Does the active partition separate ``u`` and ``v``?  Purely
        deterministic — consumes no RNG sample."""
        groups = self.partition_groups(now)
        if groups is None or u == v:
            return False
        gu = gv = None
        for i, g in enumerate(groups):
            if u in g:
                gu = i
            if v in g:
                gv = i
        # Unlisted ranks share the implicit remainder group (None == None).
        return gu != gv

    def link_dead(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self.dead_links

    def blocked(self, u: int, v: int, now: float) -> bool:
        """Deterministically unreachable right now: dead link or active
        partition between the endpoints."""
        return self.link_dead(u, v) or self.partitioned(u, v, now)

    def drops(self, src: Optional[int] = None,
              dst: Optional[int] = None) -> bool:
        """Decide (by seeded RNG) whether this message is lost.

        The per-link table is consulted only when it is non-empty and the
        endpoints are known, so plans without ``link_loss`` consume RNG
        samples exactly as before — same seed, same dropped indices.  A
        caller that holds a per-link plan but cannot name the link would
        silently fall back to the scalar rate and desynchronize the RNG
        stream from endpoint-aware callers; that is an error, not a
        default.
        """
        p = self.loss_probability
        if self.link_loss:
            if src is None or dst is None:
                raise FailurePlanError(
                    "plan has per-link loss but the caller did not "
                    "identify the link (src/dst required)"
                )
            p = self.link_loss.get(
                (min(src, dst), max(src, dst)), p
            )
        return p > 0 and self._rng.random() < p

    def corrupt(self, msg: Message) -> Message:
        fn = self.byzantine.get(msg.src)
        if fn is None:
            return msg
        return Message(msg.src, msg.dst, msg.tag, fn(msg.payload))

    @property
    def is_failure_free(self) -> bool:
        return (
            not self.crashes
            and not self.byzantine
            and not self.dead_links
            and not self.link_loss
            and not self.partitions
            and not self.churn
            and self.loss_probability == 0
        )


def crash(rank: int, at: float = 0.0, plan: Optional[FailurePlan] = None) -> FailurePlan:
    """Convenience: a plan crashing one process."""
    plan = plan or FailurePlan()
    plan.crashes[rank] = at
    return plan


def churn(rank: int, down_at: float, up_at: float,
          plan: Optional[FailurePlan] = None) -> FailurePlan:
    """Convenience: ``rank`` crashes at ``down_at`` and recovers (with
    state loss) at ``up_at``."""
    plan = plan or FailurePlan()
    plan.churn.setdefault(rank, []).append((down_at, up_at))
    return plan.validate()


def partition(at: float, groups: Sequence[Iterable[int]],
              plan: Optional[FailurePlan] = None) -> FailurePlan:
    """Convenience: split the network into ``groups`` at time ``at``."""
    plan = plan or FailurePlan()
    plan.partitions.append(PartitionEvent(at, _normalize_groups(groups)))
    return plan.validate()


def heal(at: float, plan: Optional[FailurePlan] = None) -> FailurePlan:
    """Convenience: dissolve any partition at time ``at``."""
    plan = plan or FailurePlan()
    plan.partitions.append(PartitionEvent(at, None))
    return plan.validate()


def byzantine_lying_id(rank: int, fake_id: int,
                       plan: Optional[FailurePlan] = None) -> FailurePlan:
    """A Byzantine process that replaces any integer payload with a fake id
    — the classic attack on id-based leader election."""
    plan = plan or FailurePlan()
    plan.byzantine[rank] = lambda p: fake_id if isinstance(p, int) else p
    return plan
