"""Failure injection — taxonomy dimension 3.

"Tolerance to component failures.  Some algorithms do not tolerate any
failures while some can tolerate particular kinds of failures.  Further
refining this concept leads to Byzantine and non-Byzantine failures of
nodes and links."

A :class:`FailurePlan` tells the simulator which processes crash (and
when), which behave Byzantine (how their outgoing payloads are corrupted),
and which links drop messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .core import Message


@dataclass
class FailurePlan:
    """Declarative failure schedule applied by the simulator."""

    #: rank -> crash time (no sends/receives at or after that time).
    crashes: dict[int, float] = field(default_factory=dict)
    #: rank -> payload corruption function applied to every outgoing message.
    byzantine: dict[int, Callable[[Any], Any]] = field(default_factory=dict)
    #: undirected links that silently drop every message.
    dead_links: set[tuple[int, int]] = field(default_factory=set)
    #: probability that any given message is lost (lossy network).
    loss_probability: float = 0.0
    #: per-link loss probabilities, keyed like ``dead_links`` (undirected,
    #: ``(min, max)`` normalized); a link's entry overrides the scalar
    #: ``loss_probability`` for traffic on that link only.
    link_loss: dict[tuple[int, int], float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.link_loss = {
            (min(u, v), max(u, v)): p for (u, v), p in self.link_loss.items()
        }

    # -- queries used by the simulator ---------------------------------------

    def crashed(self, rank: int, now: float) -> bool:
        t = self.crashes.get(rank)
        return t is not None and now >= t

    def link_dead(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self.dead_links

    def drops(self, src: Optional[int] = None,
              dst: Optional[int] = None) -> bool:
        """Decide (by seeded RNG) whether this message is lost.

        The per-link table is consulted only when it is non-empty and the
        endpoints are known, so plans without ``link_loss`` consume RNG
        samples exactly as before — same seed, same dropped indices.
        """
        p = self.loss_probability
        if self.link_loss and src is not None and dst is not None:
            p = self.link_loss.get(
                (min(src, dst), max(src, dst)), p
            )
        return p > 0 and self._rng.random() < p

    def corrupt(self, msg: Message) -> Message:
        fn = self.byzantine.get(msg.src)
        if fn is None:
            return msg
        return Message(msg.src, msg.dst, msg.tag, fn(msg.payload))

    @property
    def is_failure_free(self) -> bool:
        return (
            not self.crashes
            and not self.byzantine
            and not self.dead_links
            and not self.link_loss
            and self.loss_probability == 0
        )


def crash(rank: int, at: float = 0.0, plan: Optional[FailurePlan] = None) -> FailurePlan:
    """Convenience: a plan crashing one process."""
    plan = plan or FailurePlan()
    plan.crashes[rank] = at
    return plan


def byzantine_lying_id(rank: int, fake_id: int,
                       plan: Optional[FailurePlan] = None) -> FailurePlan:
    """A Byzantine process that replaces any integer payload with a fake id
    — the classic attack on id-based leader election."""
    plan = plan or FailurePlan()
    plan.byzantine[rank] = lambda p: fake_id if isinstance(p, int) else p
    return plan
