"""Reliable transport over the lossy simulator network.

The failure taxonomy injects loss (:class:`FailurePlan.loss_probability`,
per-link ``link_loss``) but until now nothing *recovered*: every
algorithm in :mod:`repro.distributed.algorithms` silently breaks under
``loss_probability > 0``.  This module adds the classic remedy as a
composable layer:

- :class:`ReliableChannel` — per-process sequence numbers, cumulative
  acks, retransmission on a :class:`~repro.resilience.RetryPolicy`
  schedule (virtual-time timers, never wall clock), duplicate
  suppression at the receiver, and an optional heartbeat-based
  *eventually-perfect* failure detector (suspect on silence, trust again
  and lengthen the timeout on evidence of life).
- :class:`ReliableProcess` — wraps any unmodified
  :class:`~repro.distributed.core.Process` so its sends/receives go
  through a channel; the wrapped algorithm sees exactly-once delivery.
- :class:`ResilientFloodSet` — FloodSet re-synchronized for a lossy
  network: an α-synchronizer (advance a round only after hearing every
  peer's round-``k`` broadcast) replaces the fixed round timers, which
  is what makes its f+1-round argument sound under retransmission
  delays.

Per-channel counters fold into :class:`RunMetrics`
(``retransmissions``, ``duplicates_suppressed``, ``acks_sent``,
``retries_gave_up``, ``fd_suspicions``) and tracing emits
``resilience.retry`` / ``resilience.give_up`` / ``fd.suspect`` events.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..resilience import ExponentialBackoff, RetryPolicy
from ..trace import core as _trace
from .algorithms.echo import Echo
from .algorithms.floodset import FloodSet
from .core import Context, Message, Process
from .failures import FailurePlan
from .metrics import RunMetrics
from .network import Complete, Topology
from .simulator import Simulator
from .timing import Synchronous, TimingModel

#: Wire tags of the transport (never seen by wrapped algorithms).
DATA = "__rel_data__"
ACK = "__rel_ack__"
RETRY = "__rel_retry__"        # self-timer: retransmission check
HB = "__rel_hb__"              # heartbeat payload
HB_TICK = "__rel_hb_tick__"    # self-timer: heartbeat round
_TRANSPORT_TIMERS = (RETRY, HB_TICK)


def default_policy() -> RetryPolicy:
    """Retransmission schedule tuned to the simulator's timing models:
    the first retry waits ~2.5 virtual seconds (beyond one synchronous
    round trip), then backs off exponentially.  25 attempts make loss of
    a message at p=0.5 a ~3e-8 event — 'eventual delivery' in practice."""
    return RetryPolicy(
        max_attempts=25,
        backoff=ExponentialBackoff(base=2.5, multiplier=1.3, cap=20.0,
                                   jitter=0.4, seed=0),
    )


class ReliableChannel:
    """Stop-and-retransmit reliability for one process's traffic.

    The channel owns sequence numbering, the unacked-send table, and the
    receiver-side duplicate filter.  It is driven entirely by the
    simulator's virtual-time timers: ``send`` arms a :data:`RETRY` timer
    whose handler retransmits (and re-arms, per the policy's backoff)
    until the ack arrives or the retry budget is exhausted.
    """

    def __init__(
        self,
        rank: int,
        policy: Optional[RetryPolicy] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: float = 10.0,
        max_beats: int = 64,
    ) -> None:
        self.rank = rank
        self.policy = policy or default_policy()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_beats = max_beats
        self._next_seq = 0
        #: (dst, seq) -> [attempt, tag, payload, spent_delay]
        self._pending: dict[tuple[int, int], list] = {}
        #: src -> delivered sequence numbers (duplicate filter).
        self._delivered: dict[int, set[int]] = {}
        self._last_heard: dict[int, float] = {}
        self._beats = 0
        self.suspected: set[int] = set()
        self.gave_up: list[tuple[int, int]] = []

    # -- sending ---------------------------------------------------------------

    def send(self, ctx: Context, dst: int, tag: str, payload: Any) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._pending[(dst, seq)] = [0, tag, payload, 0.0]
        ctx.send(dst, DATA, (seq, tag, payload))
        ctx.set_timer(self.policy.backoff.delay(0), RETRY, (dst, seq))

    def outstanding(self) -> int:
        """Sends not yet acknowledged (the ack barrier synchronizers use)."""
        return len(self._pending)

    # -- event routing ---------------------------------------------------------

    def is_transport_timer(self, msg: Message) -> bool:
        return msg.tag in _TRANSPORT_TIMERS and msg.src == msg.dst

    def handle_timer(self, ctx: Context, msg: Message) -> None:
        if msg.tag == RETRY:
            self._handle_retry(ctx, msg.payload)
        elif msg.tag == HB_TICK:
            self._handle_heartbeat_tick(ctx)

    def _handle_retry(self, ctx: Context, key: tuple[int, int]) -> None:
        entry = self._pending.get(tuple(key))
        if entry is None:
            return                         # acked in the meantime
        dst, seq = key
        attempt, tag, payload, spent = entry
        attempt += 1
        delay = self.policy.backoff.delay(min(
            attempt, self.policy.max_attempts - 1))
        if not self.policy.allows(attempt, spent + delay):
            self._pending.pop(tuple(key), None)
            self.gave_up.append((dst, seq))
            ctx.metrics.retries_gave_up += 1
            tr = _trace.ACTIVE
            if tr is not None:
                tr.event("resilience.give_up", cat="resilience",
                         src=self.rank, dst=dst, seq=seq,
                         attempts=attempt, t=ctx.now)
            return
        entry[0] = attempt
        entry[3] = spent + delay
        ctx.metrics.retransmissions += 1
        if ctx._sim.failures.partitioned(self.rank, dst, ctx.now):
            # A retransmission burned on traffic the active partition is
            # going to drop — the cost of healing visible as a counter.
            ctx.metrics.partition_retx += 1
        tr = _trace.ACTIVE
        if tr is not None:
            tr.event("resilience.retry", cat="resilience", src=self.rank,
                     dst=dst, seq=seq, attempt=attempt, delay=delay,
                     t=ctx.now)
        ctx.send(dst, DATA, (seq, tag, payload))
        ctx.set_timer(delay, RETRY, (dst, seq))

    # -- receiving -------------------------------------------------------------

    def handle_message(self, ctx: Context, msg: Message) -> Optional[Message]:
        """Process one raw delivery.  Returns the decapsulated message to
        hand to the wrapped algorithm, or None when the transport consumed
        it (ack, duplicate, heartbeat)."""
        if msg.tag == DATA:
            seq, tag, payload = msg.payload
            ctx.send(msg.src, ACK, seq)
            ctx.metrics.acks_sent += 1
            self._note_alive(msg.src, ctx.now)
            seen = self._delivered.setdefault(msg.src, set())
            if seq in seen:
                ctx.metrics.duplicates_suppressed += 1
                return None
            seen.add(seq)
            return Message(msg.src, msg.dst, tag, payload)
        if msg.tag == ACK:
            self._pending.pop((msg.src, msg.payload), None)
            self._note_alive(msg.src, ctx.now)
            return None
        if msg.tag == HB:
            self._note_alive(msg.src, ctx.now)
            return None
        return msg                         # not transport traffic

    # -- failure detection -----------------------------------------------------

    def start(self, ctx: Context) -> None:
        if self.heartbeat_interval is not None:
            for nbr in ctx.neighbors():
                self._last_heard.setdefault(nbr, ctx.now)
            ctx.set_timer(self.heartbeat_interval, HB_TICK, None)

    def _note_alive(self, rank: int, now: float) -> None:
        self._last_heard[rank] = now
        if rank in self.suspected:
            # Eventually perfect: a false suspicion is withdrawn and the
            # timeout stretched so the same mistake is not repeated.
            self.suspected.discard(rank)
            self.heartbeat_timeout *= 1.5

    def _handle_heartbeat_tick(self, ctx: Context) -> None:
        self._beats += 1
        for nbr in ctx.neighbors():
            ctx.send(nbr, HB, None)
            last = self._last_heard.setdefault(nbr, ctx.now)
            if nbr not in self.suspected and \
                    ctx.now - last > self.heartbeat_timeout:
                self.suspected.add(nbr)
                ctx.metrics.fd_suspicions += 1
                tr = _trace.ACTIVE
                if tr is not None:
                    tr.event("fd.suspect", cat="resilience", by=self.rank,
                             suspect=nbr, silent_for=ctx.now - last,
                             t=ctx.now)
        # A bounded beat count lets loss-only simulations quiesce; real
        # deployments would beat forever.
        if self._beats < self.max_beats:
            ctx.set_timer(self.heartbeat_interval, HB_TICK, None)


class ReliableContext(Context):
    """The wrapped algorithm's view: ``send`` goes through the channel;
    everything else (timers, topology, accounting, decide/halt) passes
    straight through to the underlying simulator context."""

    def __init__(self, raw: Context, channel: ReliableChannel) -> None:
        super().__init__(raw._sim, raw.rank)
        self._raw = raw
        self.channel = channel

    def send(self, dst: int, tag: str, payload: Any = None) -> None:
        self.channel.send(self._raw, dst, tag, payload)


class ReliableProcess(Process):
    """Wrap an unmodified process so its traffic is exactly-once.

    The wrapper intercepts transport frames and timers; the inner
    algorithm receives decapsulated messages through a
    :class:`ReliableContext` and cannot tell it is running over a lossy
    network (apart from delivery timing).
    """

    def __init__(self, inner: Process,
                 policy: Optional[RetryPolicy] = None,
                 heartbeat_interval: Optional[float] = None,
                 heartbeat_timeout: float = 10.0,
                 **params: Any) -> None:
        super().__init__(inner.rank, **params)
        self.inner = inner
        self.channel = ReliableChannel(
            inner.rank, policy=policy,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
        )

    def _ctx(self, raw: Context) -> ReliableContext:
        return ReliableContext(raw, self.channel)

    def on_start(self, ctx: Context) -> None:
        self.channel.start(ctx)
        self.inner.on_start(self._ctx(ctx))

    def on_message(self, ctx: Context, msg: Message) -> None:
        if self.channel.is_transport_timer(msg):
            self.channel.handle_timer(ctx, msg)
            return
        if msg.src == msg.dst and msg.tag not in (DATA, ACK, HB):
            # The inner algorithm's own timer: pass through undecorated.
            self.inner.on_message(self._ctx(ctx), msg)
            return
        inner_msg = self.channel.handle_message(ctx, msg)
        if inner_msg is not None:
            self.inner.on_message(self._ctx(ctx), inner_msg)

    def on_round(self, ctx: Context, round_no: int) -> None:
        self.inner.on_round(self._ctx(ctx), round_no)

    def __repr__(self) -> str:
        return f"<Reliable {self.inner!r}>"


def wrap_reliable(
    processes: Sequence[Process],
    policy: Optional[RetryPolicy] = None,
    heartbeat_interval: Optional[float] = None,
    heartbeat_timeout: float = 10.0,
) -> list[ReliableProcess]:
    """Wrap every process in the sequence for exactly-once delivery."""
    return [
        ReliableProcess(p, policy=policy,
                        heartbeat_interval=heartbeat_interval,
                        heartbeat_timeout=heartbeat_timeout)
        for p in processes
    ]


class ResilientFloodSet(FloodSet):
    """FloodSet driven by an α-synchronizer instead of round timers.

    Under loss + retransmission the synchronous-delivery assumption
    behind the fixed 1.0-time round ticks is gone; what survives is
    FloodSet's monotone state (the ``known`` set only grows).  Advancing
    round ``k`` only after receiving every peer's round-``k`` broadcast
    restores the per-round all-to-all exchange, so after f+1 rounds the
    crash-free argument applies verbatim — reliable delivery makes each
    'round' loss-free, just slower.
    """

    def __init__(self, rank: int, initial: Any = None, f: int = 1,
                 **params: Any) -> None:
        super().__init__(rank, initial=initial, f=f, **params)
        self.round = 1
        self._received: dict[int, int] = {}

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast_neighbors(
            "values", (self.round, tuple(sorted(self.known))))

    def _peers(self, ctx: Context) -> int:
        return len(ctx.neighbors())

    def on_message(self, ctx: Context, msg: Message) -> None:
        if msg.tag != "values" or self.decided:
            return
        k, values = msg.payload
        before = len(self.known)
        self.known.update(values)
        ctx.charge(max(1, len(self.known) - before))
        self._received[k] = self._received.get(k, 0) + 1
        while not self.decided and \
                self._received.get(self.round, 0) >= self._peers(ctx):
            self.round += 1
            if self.round <= self.f + 1:
                ctx.broadcast_neighbors(
                    "values", (self.round, tuple(sorted(self.known))))
            else:
                self.decided = True
                ctx.charge(len(self.known))
                self.decision = min(self.known)
                ctx.decide(self.decision)


# ---------------------------------------------------------------------------
# Convenience runners (the acceptance experiments)
# ---------------------------------------------------------------------------


def run_echo_reliable(
    topology: Topology,
    initiator: int = 0,
    values: Optional[list] = None,
    timing: Optional[TimingModel] = None,
    failures: Optional[FailurePlan] = None,
    policy: Optional[RetryPolicy] = None,
) -> RunMetrics:
    """Echo with every process wrapped in a :class:`ReliableChannel` —
    completes with the correct aggregate even under heavy loss."""
    procs: list[Process] = []
    for r in range(topology.n):
        val = values[r] if values is not None else 1
        procs.append(Echo(r, initiator=initiator, local_value=val))
    sim = Simulator(topology, wrap_reliable(procs, policy=policy),
                    timing, failures)
    return sim.run()


def run_floodset_reliable(
    n: int,
    f: int = 1,
    values: Optional[list] = None,
    failures: Optional[FailurePlan] = None,
    policy: Optional[RetryPolicy] = None,
) -> RunMetrics:
    """Synchronizer-driven FloodSet over reliable channels on a complete
    topology — consensus on the minimum survives message loss."""
    procs: list[Process] = []
    for r in range(n):
        v = values[r] if values is not None else r
        procs.append(ResilientFloodSet(r, initial=v, f=f))
    sim = Simulator(Complete(n), wrap_reliable(procs, policy=policy),
                    timing=Synchronous(), failures=failures)
    return sim.run()
