"""Network topologies — taxonomy dimension 2.

"Some algorithms are designed for specialized topologies, while others are
for arbitrary topologies.  Further refining this concept leads to some of
the well known topologies like ring, completely connected graph, etc."

Every topology answers ``neighbors(v)`` (and directed rings distinguish a
successor direction).  Arbitrary topologies wrap a
:class:`repro.graphs.AdjacencyList`.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..graphs.adjacency_list import AdjacencyList


class Topology:
    """Base topology: n processes, neighbor relation."""

    name: str = "arbitrary"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("topology needs at least one process")
        self.n = n

    def neighbors(self, v: int) -> list[int]:
        raise NotImplementedError

    def edges(self) -> set[tuple[int, int]]:
        """Undirected edge set (u < v normalized)."""
        out: set[tuple[int, int]] = set()
        for u in range(self.n):
            for v in self.neighbors(u):
                out.add((min(u, v), max(u, v)))
        return out

    def num_links(self) -> int:
        return len(self.edges())

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class Ring(Topology):
    """Ring; ``directed=True`` exposes only the successor (Chang–Roberts
    needs a unidirectional ring, Hirschberg–Sinclair a bidirectional one)."""

    name = "ring"

    def __init__(self, n: int, directed: bool = False) -> None:
        super().__init__(n)
        self.directed = directed

    def successor(self, v: int) -> int:
        return (v + 1) % self.n

    def predecessor(self, v: int) -> int:
        return (v - 1) % self.n

    def neighbors(self, v: int) -> list[int]:
        if self.directed:
            return [self.successor(v)]
        if self.n == 1:
            return []
        if self.n == 2:
            return [self.successor(v)]
        return [self.predecessor(v), self.successor(v)]


class Complete(Topology):
    """Completely connected graph."""

    name = "complete"

    def neighbors(self, v: int) -> list[int]:
        return [u for u in range(self.n) if u != v]


class Star(Topology):
    """Hub-and-spoke; process 0 is the hub."""

    name = "star"

    def neighbors(self, v: int) -> list[int]:
        if v == 0:
            return list(range(1, self.n))
        return [0]


class Line(Topology):
    name = "line"

    def neighbors(self, v: int) -> list[int]:
        out = []
        if v > 0:
            out.append(v - 1)
        if v < self.n - 1:
            out.append(v + 1)
        return out


class Tree(Topology):
    """Complete binary tree rooted at 0."""

    name = "tree"

    def neighbors(self, v: int) -> list[int]:
        out = []
        if v > 0:
            out.append((v - 1) // 2)
        for c in (2 * v + 1, 2 * v + 2):
            if c < self.n:
                out.append(c)
        return out


class Grid(Topology):
    """rows x cols mesh (sensor-network style)."""

    name = "grid"

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def neighbors(self, v: int) -> list[int]:
        r, c = divmod(v, self.cols)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                out.append(nr * self.cols + nc)
        return out


class Arbitrary(Topology):
    """An arbitrary topology from an explicit undirected edge list or an
    AdjacencyList graph."""

    name = "arbitrary"

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]) -> None:
        super().__init__(n)
        self._adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            if v not in self._adj[u]:
                self._adj[u].append(v)
            if u not in self._adj[v]:
                self._adj[v].append(u)

    @classmethod
    def from_graph(cls, g: AdjacencyList) -> "Arbitrary":
        return cls(g.num_vertices(),
                   [(e.source(), e.target()) for e in g.edges()])

    def neighbors(self, v: int) -> list[int]:
        return list(self._adj[v])

    def add_node(self, links: Iterable[int]) -> int:
        """Grow the topology by one node wired to ``links`` — the substrate
        for taxonomy dimension 7's dynamic process management ('algorithms
        that allow new nodes to join in dynamically')."""
        new = self.n
        self.n += 1
        self._adj.append([])
        for u in links:
            if u < 0 or u >= new:
                raise ValueError(f"cannot link new node to unknown node {u}")
            self._adj[new].append(u)
            self._adj[u].append(new)
        return new


def random_connected(n: int, extra_edge_prob: float = 0.1,
                     seed: int = 0) -> Arbitrary:
    """A random connected topology: a random spanning tree plus extra
    edges with probability ``extra_edge_prob``."""
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        edges.append((order[i], order[rng.randrange(i)]))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < extra_edge_prob:
                edges.append((u, v))
    return Arbitrary(n, edges)
